//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each function reproduces one table or one pair of figures from the
//! evaluation section of the DSN 2010 paper. The functions return structured
//! data (rows or named series) so that the benchmark harness, the
//! `wt-experiments` binary and the integration tests can all share them; the
//! [`format_table1`]-style helpers render the same data as plain-text tables
//! comparable to the paper.

use arcade_core::{
    Analysis, ArcadeError, CompiledModel, ComposerOptions, ExecOptions, FacilityAnalysis,
    JointAvailability, LumpingMode, Series,
};
use ctmc::exec;
use serde::{Deserialize, Serialize};

use crate::facility::{
    self, Line, DISASTER_ALL_PUMPS, DISASTER_LINE2_MIXED, FACILITY_DISASTER_ALL_PUMPS,
};
use crate::registry::ModelSpec;
use crate::strategies;
use crate::StrategySpec;

/// One row of Table 1 (state-space sizes per repair strategy and line),
/// extended with the post-lumping quotient sizes of this reproduction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The process line.
    pub line: Line,
    /// Strategy label (`DED`, `FRF-1`, ...).
    pub strategy: String,
    /// Number of reachable states.
    pub states: usize,
    /// Number of transitions.
    pub transitions: usize,
    /// Number of blocks after exact lumping (`None` in the paper reference,
    /// which reports flat sizes only).
    pub lumped_states: Option<usize>,
    /// Number of quotient transitions after exact lumping.
    pub lumped_transitions: Option<usize>,
}

/// One row of Table 2 (steady-state availability per repair strategy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Strategy label (`DED`, `FRF-1`, ...).
    pub strategy: String,
    /// Availability of Line 1.
    pub line1: f64,
    /// Availability of Line 2.
    pub line2: f64,
    /// Availability of the overall facility (`A1 + A2 - A1*A2`).
    pub combined: f64,
}

/// One row of the two-line facility table: the combined-availability formula
/// `A = A1 + A2 − A1·A2` validated against the genuine Line 1 × Line 2 joint
/// chain for one pair of repair strategies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableFacilityRow {
    /// Strategy-pair label, e.g. `FRF-1×FRF-1`.
    pub pair: String,
    /// Availability of Line 1 (solved on its quotient).
    pub line1: f64,
    /// Availability of Line 2 (solved on its quotient).
    pub line2: f64,
    /// Combined availability via the product form `A1 + A2 − A1·A2`.
    pub combined: f64,
    /// Combined availability solved on the materialised joint chain.
    pub joint: f64,
    /// `|combined − joint|`, the validation gap (≤ 1e-9 expected).
    pub difference: f64,
    /// Number of joint product blocks (`449 × 257` for FRF-1 × FRF-1).
    pub joint_blocks: usize,
    /// Number of states the joint solve actually ran on: the sorted-tuple
    /// orbit quotient when the two lines' chains are interchangeable, the
    /// full product otherwise (always the latter for the paper's asymmetric
    /// Line 1 × Line 2 pairs).
    #[serde(default)]
    pub solved_blocks: usize,
    /// Matrix-free balance residual certifying the joint stationary vector.
    pub residual: f64,
    /// The solver engine that produced the joint column: `krylov-operator` /
    /// `jacobi-operator` (matrix-free, the default) or `gs-materialised`
    /// (`ARCADE_JOINT_SOLVER=materialise`).
    #[serde(default)]
    pub solver_tier: String,
    /// Iterations of the joint solve (operator applies for the matrix-free
    /// engines, sweeps for Gauss–Seidel).
    #[serde(default)]
    pub iterations: usize,
}

/// One row of the symmetry-reduction report (`wt-experiments facility
/// --symmetric-only`): the reduction ladder of a facility's joint chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymmetryReductionRow {
    /// Facility label (`DED×DED` or `twin(line2, DED)`).
    pub facility: String,
    /// Raw product states.
    pub product_blocks: usize,
    /// Sorted-tuple orbit representatives (`None` without factor symmetry).
    pub orbit_blocks: Option<usize>,
    /// States the joint measures solve on.
    pub solver_blocks: usize,
    /// Blocks of the exact facility-label quotient of the solver chain —
    /// the minimality certificate (`== solver_blocks` means no further
    /// sound reduction exists).
    pub exact_blocks: usize,
}

impl SymmetryReductionRow {
    /// The orbit-reduction factor `product / solver` (1.0 without symmetry).
    pub fn reduction_factor(&self) -> f64 {
        self.product_blocks as f64 / self.solver_blocks as f64
    }
}

/// One row of the **k-line reduction ladder** (`wt-experiments facility
/// --k ...` / `--lines ...`): for one facility spec, the three rungs of the
/// state-space ladder — flat product, per-line quotient product, sorted-tuple
/// orbit fold — together with the availability and the evaluation tier that
/// produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KLineReductionRow {
    /// Number of process lines.
    pub k: usize,
    /// Canonical registry spec (`facility/ded^4`).
    pub facility: String,
    /// Flat rung: the product of the per-line *unlumped* state spaces
    /// (512 per DED twin line), saturating.
    pub flat_states: usize,
    /// Product rung: the product of the per-line quotient sizes (96 per DED
    /// twin line), saturating.
    pub product_blocks: usize,
    /// Orbit rung: sorted-tuple orbit representatives under factor symmetry
    /// (`C(n + k − 1, k)` for k identical lines of n blocks), `None` when no
    /// two lines are interchangeable.
    pub orbit_blocks: Option<usize>,
    /// States the joint availability was actually computed on: the
    /// materialised solver chain (joint-solve tier) or the enumerated orbit
    /// representatives (orbit-enumeration tier); `None` in the counts-only
    /// product-form tier.
    pub solved_blocks: Option<usize>,
    /// Facility availability via the product form `1 − Π P(line down)` —
    /// always computed, never materialises anything.
    pub availability: f64,
    /// Availability from the joint chain or the orbit enumeration, `None` in
    /// the product-form tier.
    pub joint_availability: Option<f64>,
    /// The tier's certificate: the Kronecker-sum balance residual
    /// (joint-solve) or `|total mass − 1|` (orbit-enumeration).
    pub certificate: Option<f64>,
    /// Which tier evaluated the row: `joint-solve`, `orbit-enumeration` or
    /// `product-form`.
    pub tier: String,
    /// The solver engine the joint-solve tier actually ran:
    /// `krylov-operator` / `jacobi-operator` (matrix-free, the default) or
    /// `gs-materialised` (`ARCADE_JOINT_SOLVER=materialise`); `None` outside
    /// the joint-solve tier.
    #[serde(default)]
    pub solver: Option<String>,
    /// Iterations the joint solve spent — operator applies for the
    /// matrix-free engines, sweeps for Gauss–Seidel; `None` outside the
    /// joint-solve tier.
    #[serde(default)]
    pub iterations: Option<usize>,
}

/// Largest orbit bound the enumeration tier of the k-sweep walks
/// (`facility/ded^4` needs 3,764,376 visits and fits; `ded^8` at
/// `C(103, 8) ≈ 3.2 × 10¹¹` falls back to the counts-only product form).
pub const ORBIT_ENUMERATION_CAP: usize = 8_000_000;

/// Largest per-line quotient product the **matrix-free** joint-solve tier
/// accepts. The operator solver holds a handful of product-length vectors
/// instead of the product's transition matrix, so its ceiling sits well above
/// [`ModelSpec::MAX_MATERIALISED_PRODUCT`] (1.5M): everything up to 8M joint
/// states is solved exactly on the Kronecker-sum operator without
/// materialising a single joint transition.
pub const MAX_OPERATOR_PRODUCT: usize = 8_000_000;

/// Which engine the joint-solve tier runs (`ARCADE_JOINT_SOLVER`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JointSolverMode {
    /// Matrix-free: hand the Kronecker-sum operator to the Krylov solver
    /// (damped-Jacobi fallback), never materialising the joint chain. The
    /// default; the tier cutoff is [`MAX_OPERATOR_PRODUCT`].
    #[default]
    Operator,
    /// Legacy path: materialise the joint chain (the orbit fold under factor
    /// symmetry) and Gauss–Seidel it; cutoff
    /// [`ModelSpec::MAX_MATERIALISED_PRODUCT`].
    Materialise,
}

impl JointSolverMode {
    /// Reads `ARCADE_JOINT_SOLVER`: `materialise` (or `materialize` / `gs`)
    /// forces the legacy materialised path, anything else — including unset —
    /// selects the matrix-free operator path.
    pub fn from_env() -> Self {
        match std::env::var("ARCADE_JOINT_SOLVER").as_deref() {
            Ok("materialise") | Ok("materialize") | Ok("gs") => Self::Materialise,
            _ => Self::Operator,
        }
    }

    /// The largest joint product this mode's joint-solve tier accepts.
    pub fn joint_cutoff(self) -> usize {
        match self {
            Self::Operator => MAX_OPERATOR_PRODUCT,
            Self::Materialise => ModelSpec::MAX_MATERIALISED_PRODUCT,
        }
    }

    /// Solves the joint availability of one analysis with this mode's engine.
    fn solve_joint(self, analysis: &FacilityAnalysis) -> Result<JointAvailability, ArcadeError> {
        match self {
            Self::Operator => analysis.matrix_free_steady_state_availability(),
            Self::Materialise => analysis.joint_steady_state_availability(),
        }
    }
}

/// A reproduced figure: a set of named `(time, value)` series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier matching the paper (`fig3`, `fig4`, ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series, one per repair strategy (or per line for Fig. 3).
    pub series: Vec<Series>,
}

/// The service level thresholds of the paper's service intervals.
pub mod service_levels {
    /// Line 1, interval X1 = [1/3, 2/3).
    pub const LINE1_X1: f64 = 1.0 / 3.0;
    /// Line 1, interval X2 = [2/3, 1).
    pub const LINE1_X2: f64 = 2.0 / 3.0;
    /// Line 1, interval X3 = [1, 1].
    pub const LINE1_X3: f64 = 1.0;
    /// Line 2, interval X1 = [1/3, 1/2).
    pub const LINE2_X1: f64 = 1.0 / 3.0;
    /// Line 2, interval X2 = [1/2, 2/3).
    pub const LINE2_X2: f64 = 0.5;
    /// Line 2, interval X3 = [2/3, 1).
    pub const LINE2_X3: f64 = 2.0 / 3.0;
    /// Line 2, interval X4 = [1, 1].
    pub const LINE2_X4: f64 = 1.0;
}

/// Default time grids matching the x-ranges of the paper's figures.
pub mod grids {
    /// Fig. 3: reliability over `[0, 1000]` hours.
    pub fn fig3() -> Vec<f64> {
        step_grid(0.0, 1000.0, 25.0)
    }

    /// Figs. 4–6: survivability / instantaneous cost over `[0, 4.5]` hours.
    pub fn fig4_to_6() -> Vec<f64> {
        step_grid(0.0, 4.5, 0.15)
    }

    /// Fig. 7: accumulated cost over `[0, 10]` hours.
    pub fn fig7() -> Vec<f64> {
        step_grid(0.0, 10.0, 0.25)
    }

    /// Figs. 8–9: survivability over `[0, 100]` hours.
    pub fn fig8_9() -> Vec<f64> {
        step_grid(0.0, 100.0, 2.5)
    }

    /// Figs. 10–11: costs over `[0, 50]` hours.
    pub fn fig10_11() -> Vec<f64> {
        step_grid(0.0, 50.0, 1.25)
    }

    /// An inclusive arithmetic grid `start, start+step, ..., end`.
    pub fn step_grid(start: f64, end: f64, step: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = start;
        while t <= end + 1e-9 {
            out.push(t.min(end));
            t += step;
        }
        out
    }
}

/// Composer options carrying an explicit worker pool (everything else at its
/// default).
fn composer_options(exec: ExecOptions) -> ComposerOptions {
    ComposerOptions {
        exec,
        ..ComposerOptions::default()
    }
}

fn compiled_analysis<'m>(
    model: &'m arcade_core::ArcadeModel,
    exec: ExecOptions,
) -> Result<Analysis<'m>, ArcadeError> {
    let compiled = CompiledModel::compile_with(model, composer_options(exec))?;
    Ok(Analysis::from_compiled(model, compiled))
}

/// Runs one independent experiment task per strategy spec on the worker pool
/// and returns the outcomes in spec order (kept deterministic by in-order
/// reassembly). The per-task `exec` budget is forwarded so large *flat*
/// compositions inside a task shard too; the small canonical chains stay
/// serial via the work thresholds.
fn sweep_strategies<R: Send>(
    specs: &[StrategySpec],
    exec: ExecOptions,
    task: impl Fn(&StrategySpec) -> Result<R, ArcadeError> + Sync,
) -> Result<Vec<R>, ArcadeError> {
    exec::map_ordered(specs, exec, |spec| task(spec))
        .into_iter()
        .collect()
}

/// Reproduces **Table 1**: state-space sizes for every strategy and both lines.
///
/// The flat product sizes are what the paper's Table 1 reports, so this
/// experiment explicitly materialises the flat chain with
/// [`LumpingMode::Exact`]; the default analysis pipeline composes the
/// per-family sub-chain quotients instead and never visits these state counts
/// (see [`table1_compositional`]).
///
/// The absolute numbers depend on the queue encoding (ours canonicalises the
/// order of waiting components with different priorities, the paper's PRISM
/// translation does not), but the qualitative claims of the paper hold: the
/// dedicated strategy yields exactly `2^n` states, FRF and FFF blow the state
/// space up, their state counts coincide and do not depend on the crew count,
/// while transition counts grow with the crew count.
///
/// # Errors
///
/// Propagates composition errors.
pub fn table1() -> Result<Vec<Table1Row>, ArcadeError> {
    table1_with(ExecOptions::default())
}

/// [`table1`] on an explicit worker pool: one flat composition per
/// (line, strategy) cell, swept across workers; the large flat frontiers
/// additionally shard internally.
///
/// # Errors
///
/// Propagates composition errors.
pub fn table1_with(exec: ExecOptions) -> Result<Vec<Table1Row>, ArcadeError> {
    table1_rows(exec, LumpingMode::Exact)
}

/// Table 1 under the default compositional pipeline: the states column counts
/// the canonical representatives actually explored (the composed per-family
/// quotients), the lumped column the blocks after the final exact pass.
///
/// # Errors
///
/// Propagates composition errors.
pub fn table1_compositional() -> Result<Vec<Table1Row>, ArcadeError> {
    table1_rows(ExecOptions::default(), LumpingMode::Compositional)
}

/// [`table1`] restricted to a selection of lines (the CLI `--line` flag).
///
/// # Errors
///
/// Propagates composition errors.
pub fn table1_lines_with(lines: &[Line], exec: ExecOptions) -> Result<Vec<Table1Row>, ArcadeError> {
    table1_rows_for(lines, exec, LumpingMode::Exact)
}

/// Shared Table 1 runner: one composition per (line, strategy) cell under the
/// given lumping mode, cells swept across the worker pool per line.
fn table1_rows(exec: ExecOptions, lumping: LumpingMode) -> Result<Vec<Table1Row>, ArcadeError> {
    table1_rows_for(&Line::both(), exec, lumping)
}

/// [`table1_rows`] over an explicit line selection.
fn table1_rows_for(
    lines: &[Line],
    exec: ExecOptions,
    lumping: LumpingMode,
) -> Result<Vec<Table1Row>, ArcadeError> {
    let mut rows = Vec::new();
    for &line in lines {
        let line_rows = sweep_strategies(&strategies::paper_strategies(), exec, |spec| {
            let model = facility::line_model(line, spec)?;
            let compiled = CompiledModel::compile_with(
                &model,
                ComposerOptions {
                    lumping,
                    ..composer_options(exec)
                },
            )?;
            let stats = compiled.stats();
            Ok(Table1Row {
                line,
                strategy: spec.label.clone(),
                states: stats.num_states,
                transitions: stats.num_transitions,
                lumped_states: stats.lumped_states,
                lumped_transitions: stats.lumped_transitions,
            })
        })?;
        rows.extend(line_rows);
    }
    Ok(rows)
}

/// The numbers reported in the paper's Table 1, for comparison in
/// `EXPERIMENTS.md`.
pub fn table1_paper_reference() -> Vec<Table1Row> {
    let data = [
        (Line::Line1, "DED", 2048, 22528),
        (Line::Line1, "FRF-1", 111_809, 388_478),
        (Line::Line1, "FRF-2", 111_809, 500_275),
        (Line::Line1, "FFF-1", 111_809, 367_106),
        (Line::Line1, "FFF-2", 111_809, 478_903),
        (Line::Line2, "DED", 512, 4606),
        (Line::Line2, "FRF-1", 8129, 25_838),
        (Line::Line2, "FRF-2", 8129, 33_957),
        (Line::Line2, "FFF-1", 8129, 23_354),
        (Line::Line2, "FFF-2", 8129, 31_473),
    ];
    data.iter()
        .map(|&(line, strategy, states, transitions)| Table1Row {
            line,
            strategy: strategy.to_string(),
            states,
            transitions,
            lumped_states: None,
            lumped_transitions: None,
        })
        .collect()
}

/// Reproduces **Table 2**: steady-state availability per repair strategy for
/// both lines and the combined facility.
///
/// # Errors
///
/// Propagates composition and steady-state solver errors.
pub fn table2() -> Result<Vec<Table2Row>, ArcadeError> {
    table2_with(ExecOptions::default())
}

/// [`table2`] on an explicit worker pool (one availability task per strategy).
///
/// # Errors
///
/// Propagates composition and steady-state solver errors.
pub fn table2_with(exec: ExecOptions) -> Result<Vec<Table2Row>, ArcadeError> {
    table2_lines_with(&Line::both(), exec)
}

/// [`table2`] restricted to a selection of lines (the CLI `--line` flag):
/// unselected line columns and — unless both lines are selected — the
/// combined column are reported as NaN and rendered as `-`.
///
/// # Errors
///
/// Propagates composition and steady-state solver errors.
pub fn table2_lines_with(lines: &[Line], exec: ExecOptions) -> Result<Vec<Table2Row>, ArcadeError> {
    sweep_strategies(&strategies::paper_strategies(), exec, |spec| {
        let mut availability = [f64::NAN; 2];
        for (i, line) in Line::both().into_iter().enumerate() {
            if !lines.contains(&line) {
                continue;
            }
            let model = facility::line_model(line, spec)?;
            let analysis = compiled_analysis(&model, exec)?;
            availability[i] = analysis.steady_state_availability()?;
        }
        let combined = if availability.iter().all(|a| a.is_finite()) {
            crate::combined_availability(availability[0], availability[1])
        } else {
            f64::NAN
        };
        Ok(Table2Row {
            strategy: spec.label.clone(),
            line1: availability[0],
            line2: availability[1],
            combined,
        })
    })
}

/// The numbers reported in the paper's Table 2.
pub fn table2_paper_reference() -> Vec<Table2Row> {
    let data = [
        ("DED", 0.7442018, 0.8186317, 0.9536063),
        ("FRF-1", 0.7225597, 0.8101931, 0.9473399),
        ("FRF-2", 0.7439214, 0.8186312, 0.9535554),
        ("FFF-1", 0.7273540, 0.8120302, 0.9487508),
        ("FFF-2", 0.7440022, 0.8186662, 0.9535790),
    ];
    data.iter()
        .map(|&(strategy, line1, line2, combined)| Table2Row {
            strategy: strategy.to_string(),
            line1,
            line2,
            combined,
        })
        .collect()
}

/// Reproduces **Fig. 3**: reliability of both lines over the mission time.
///
/// Reliability ignores repairs, so the dedicated model (smallest state space)
/// is used for both lines.
///
/// # Errors
///
/// Propagates composition and transient solver errors.
pub fn fig3_reliability(times: &[f64]) -> Result<Figure, ArcadeError> {
    fig3_reliability_with(times, ExecOptions::default())
}

/// [`fig3_reliability`] on an explicit worker pool (one curve per line).
///
/// # Errors
///
/// Propagates composition and transient solver errors.
pub fn fig3_reliability_with(times: &[f64], exec: ExecOptions) -> Result<Figure, ArcadeError> {
    fig3_reliability_lines_with(&Line::both(), times, exec)
}

/// [`fig3_reliability`] restricted to a selection of lines (the CLI `--line`
/// flag): one reliability curve per selected line.
///
/// # Errors
///
/// Propagates composition and transient solver errors.
pub fn fig3_reliability_lines_with(
    lines: &[Line],
    times: &[f64],
    exec: ExecOptions,
) -> Result<Figure, ArcadeError> {
    let series = exec::map_ordered(lines, exec, |&line| {
        let model = facility::line_model(line, &strategies::dedicated())?;
        let analysis = compiled_analysis(&model, exec)?;
        let points = analysis.reliability_curve(times)?;
        Ok::<Series, ArcadeError>(Series {
            label: format!(
                "Reliability {}",
                if line == Line::Line1 {
                    "line 1"
                } else {
                    "line 2"
                }
            ),
            points,
        })
    })
    .into_iter()
    .collect::<Result<Vec<Series>, ArcadeError>>()?;
    Ok(Figure {
        id: "fig3".to_string(),
        title: "Reliability over time".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Probability (S)".to_string(),
        series,
    })
}

/// Reproduces **Figs. 4 and 5**: survivability of Line 1 after Disaster 1
/// (all pumps failed), for recovery to service intervals X1 and X2.
///
/// # Errors
///
/// Propagates composition and transient solver errors.
pub fn fig4_5_survivability_line1(times: &[f64]) -> Result<(Figure, Figure), ArcadeError> {
    fig4_5_survivability_line1_with(times, ExecOptions::default())
}

/// [`fig4_5_survivability_line1`] on an explicit worker pool (one task per
/// strategy, each computing both service-level curves off one compilation).
///
/// # Errors
///
/// Propagates composition and transient solver errors.
pub fn fig4_5_survivability_line1_with(
    times: &[f64],
    exec: ExecOptions,
) -> Result<(Figure, Figure), ArcadeError> {
    let pairs = sweep_strategies(&strategies::disaster1_strategies(), exec, |spec| {
        let model = facility::line_model(Line::Line1, spec)?;
        let analysis = compiled_analysis(&model, exec)?;
        let disaster = model
            .disaster(DISASTER_ALL_PUMPS)
            .expect("disaster 1 is always defined");
        Ok((
            Series {
                label: spec.label.clone(),
                points: analysis.survivability_curve(disaster, service_levels::LINE1_X1, times)?,
            },
            Series {
                label: spec.label.clone(),
                points: analysis.survivability_curve(disaster, service_levels::LINE1_X2, times)?,
            },
        ))
    })?;
    let (x1_series, x2_series): (Vec<Series>, Vec<Series>) = pairs.into_iter().unzip();
    let fig4 = Figure {
        id: "fig4".to_string(),
        title: "Survivability Line 1, Disaster 1, X1".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Probability (S)".to_string(),
        series: x1_series,
    };
    let fig5 = Figure {
        id: "fig5".to_string(),
        title: "Survivability Line 1, Disaster 1, X2".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Probability (S)".to_string(),
        series: x2_series,
    };
    Ok((fig4, fig5))
}

/// Reproduces **Figs. 6 and 7**: instantaneous and accumulated repair cost of
/// Line 1 after Disaster 1.
///
/// # Errors
///
/// Propagates composition and reward solver errors.
pub fn fig6_7_cost_line1(
    instantaneous_times: &[f64],
    accumulated_times: &[f64],
) -> Result<(Figure, Figure), ArcadeError> {
    fig6_7_cost_line1_with(
        instantaneous_times,
        accumulated_times,
        ExecOptions::default(),
    )
}

/// [`fig6_7_cost_line1`] on an explicit worker pool (one task per strategy).
///
/// # Errors
///
/// Propagates composition and reward solver errors.
pub fn fig6_7_cost_line1_with(
    instantaneous_times: &[f64],
    accumulated_times: &[f64],
    exec: ExecOptions,
) -> Result<(Figure, Figure), ArcadeError> {
    let pairs = sweep_strategies(&strategies::disaster1_strategies(), exec, |spec| {
        let model = facility::line_model(Line::Line1, spec)?;
        let analysis = compiled_analysis(&model, exec)?;
        let disaster = model
            .disaster(DISASTER_ALL_PUMPS)
            .expect("disaster 1 is always defined");
        Ok((
            Series {
                label: spec.label.clone(),
                points: analysis.instantaneous_cost_curve(Some(disaster), instantaneous_times)?,
            },
            Series {
                label: spec.label.clone(),
                points: analysis.accumulated_cost_curve(Some(disaster), accumulated_times)?,
            },
        ))
    })?;
    let (inst_series, acc_series): (Vec<Series>, Vec<Series>) = pairs.into_iter().unzip();
    let fig6 = Figure {
        id: "fig6".to_string(),
        title: "Instantaneous cost Line 1, Disaster 1".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Impuls Costs (I)".to_string(),
        series: inst_series,
    };
    let fig7 = Figure {
        id: "fig7".to_string(),
        title: "Accumulated cost Line 1, Disaster 1".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Cumulative costs (I)".to_string(),
        series: acc_series,
    };
    Ok((fig6, fig7))
}

/// Reproduces **Figs. 8 and 9**: survivability of Line 2 after Disaster 2
/// (two pumps, one softener, one sand filter and the reservoir failed), for
/// recovery to service intervals X1 and X3.
///
/// # Errors
///
/// Propagates composition and transient solver errors.
pub fn fig8_9_survivability_line2(times: &[f64]) -> Result<(Figure, Figure), ArcadeError> {
    fig8_9_survivability_line2_with(times, ExecOptions::default())
}

/// [`fig8_9_survivability_line2`] on an explicit worker pool: the five
/// strategies are independent (compile + two survivability curves each), so
/// they sweep across workers while every curve is additionally batched over
/// a single Fox–Glynn pass. This is the multi-time-point survivability sweep
/// tracked by the `compositional_parallel` benchmark.
///
/// # Errors
///
/// Propagates composition and transient solver errors.
pub fn fig8_9_survivability_line2_with(
    times: &[f64],
    exec: ExecOptions,
) -> Result<(Figure, Figure), ArcadeError> {
    let pairs = sweep_strategies(&strategies::paper_strategies(), exec, |spec| {
        let model = facility::line_model(Line::Line2, spec)?;
        let analysis = compiled_analysis(&model, exec)?;
        let disaster = model
            .disaster(DISASTER_LINE2_MIXED)
            .expect("disaster 2 is defined for line 2");
        Ok((
            Series {
                label: spec.label.clone(),
                points: analysis.survivability_curve(disaster, service_levels::LINE2_X1, times)?,
            },
            Series {
                label: spec.label.clone(),
                points: analysis.survivability_curve(disaster, service_levels::LINE2_X3, times)?,
            },
        ))
    })?;
    let (x1_series, x3_series): (Vec<Series>, Vec<Series>) = pairs.into_iter().unzip();
    let fig8 = Figure {
        id: "fig8".to_string(),
        title: "Survivability Line 2, Disaster 2, X1".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Probability (S)".to_string(),
        series: x1_series,
    };
    let fig9 = Figure {
        id: "fig9".to_string(),
        title: "Survivability Line 2, Disaster 2, X3".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Probability (S)".to_string(),
        series: x3_series,
    };
    Ok((fig8, fig9))
}

/// Reproduces **Figs. 10 and 11**: instantaneous and accumulated repair cost of
/// Line 2 after Disaster 2 (the paper plots the four queueing strategies; the
/// dedicated strategy is included here as the reference it is described as).
///
/// # Errors
///
/// Propagates composition and reward solver errors.
pub fn fig10_11_cost_line2(times: &[f64]) -> Result<(Figure, Figure), ArcadeError> {
    fig10_11_cost_line2_with(times, ExecOptions::default())
}

/// [`fig10_11_cost_line2`] on an explicit worker pool (one task per strategy).
///
/// # Errors
///
/// Propagates composition and reward solver errors.
pub fn fig10_11_cost_line2_with(
    times: &[f64],
    exec: ExecOptions,
) -> Result<(Figure, Figure), ArcadeError> {
    let specs = [
        strategies::fff(1),
        strategies::fff(2),
        strategies::frf(1),
        strategies::frf(2),
    ];
    let pairs = sweep_strategies(&specs, exec, |spec| {
        let model = facility::line_model(Line::Line2, spec)?;
        let analysis = compiled_analysis(&model, exec)?;
        let disaster = model
            .disaster(DISASTER_LINE2_MIXED)
            .expect("disaster 2 is defined for line 2");
        Ok((
            Series {
                label: spec.label.clone(),
                points: analysis.instantaneous_cost_curve(Some(disaster), times)?,
            },
            Series {
                label: spec.label.clone(),
                points: analysis.accumulated_cost_curve(Some(disaster), times)?,
            },
        ))
    })?;
    let (inst_series, acc_series): (Vec<Series>, Vec<Series>) = pairs.into_iter().unzip();
    let fig10 = Figure {
        id: "fig10".to_string(),
        title: "Instantaneous cost Line 2, Disaster 2".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Impuls costs (I)".to_string(),
        series: inst_series,
    };
    let fig11 = Figure {
        id: "fig11".to_string(),
        title: "Accumulated cost Line 2, Disaster 2".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Cumulative costs (I)".to_string(),
        series: acc_series,
    };
    Ok((fig10, fig11))
}

/// The strategy pairs evaluated by the facility experiments: each paper
/// strategy paired with itself (Line 1 and Line 2 running the same repair
/// policy), matching the paper's per-strategy facility rows.
pub fn paired_strategies() -> Vec<(StrategySpec, StrategySpec)> {
    strategies::paper_strategies()
        .into_iter()
        .map(|spec| (spec.clone(), spec))
        .collect()
}

/// Label of a strategy pair (`DED×DED`, `FRF-1×FRF-1`, ...).
pub fn pair_label(pair: &(StrategySpec, StrategySpec)) -> String {
    format!("{}×{}", pair.0.label, pair.1.label)
}

/// Reproduces the **two-line facility table**: for every strategy pair, the
/// per-line availabilities, the combined availability via the paper's
/// `A = A1 + A2 − A1·A2`, and the same quantity solved on the **genuine
/// joint chain** — the materialised Line 1 × Line 2 product of the per-line
/// quotients (449 × 257 blocks for FRF-1 × FRF-1). The `difference` column
/// is the validation gap; the `residual` column is the matrix-free
/// Kronecker-sum balance certificate of the joint stationary vector.
///
/// # Errors
///
/// Propagates composition and solver errors.
pub fn table_facility() -> Result<Vec<TableFacilityRow>, ArcadeError> {
    table_facility_with(&paired_strategies(), ExecOptions::default())
}

/// [`table_facility`] for explicit strategy pairs on an explicit worker pool
/// (pairs swept across workers; each joint materialisation additionally
/// shards internally).
///
/// # Errors
///
/// Propagates composition and solver errors.
pub fn table_facility_with(
    pairs: &[(StrategySpec, StrategySpec)],
    exec: ExecOptions,
) -> Result<Vec<TableFacilityRow>, ArcadeError> {
    let mode = JointSolverMode::from_env();
    exec::map_ordered(pairs, exec, |pair| {
        let model = facility::facility_model(&pair.0, &pair.1)?;
        let analysis = FacilityAnalysis::with_options(&model, composer_options(exec))?;
        facility_table_row(pair_label(pair), &analysis, mode)
    })
    .into_iter()
    .collect()
}

/// The facility table row of one already-compiled analysis. The joint column
/// comes from the engine `mode` selects: the matrix-free operator solve (the
/// default — the `449 × 257` FRF-1 × FRF-1 product is never materialised) or
/// the legacy materialised Gauss–Seidel path.
fn facility_table_row(
    label: String,
    analysis: &FacilityAnalysis,
    mode: JointSolverMode,
) -> Result<TableFacilityRow, ArcadeError> {
    let line1 = analysis.line_availability(0)?;
    let line2 = analysis.line_availability(1)?;
    let combined = analysis.steady_state_availability()?;
    let joint = mode.solve_joint(analysis)?;
    Ok(TableFacilityRow {
        pair: label,
        line1,
        line2,
        combined,
        joint: joint.availability,
        difference: (combined - joint.availability).abs(),
        joint_blocks: joint.joint_states,
        solved_blocks: joint.solved_states,
        residual: joint.residual,
        solver_tier: joint.solver_tier,
        iterations: joint.iterations,
    })
}

/// Every figure and table of the facility evaluation, computed from **one
/// [`FacilityAnalysis`] per strategy pair**: the availability validation
/// table, both recovery figures and both cost figures share the compiled
/// per-line chains, the cached materialised joint chain and the group
/// stationary solves instead of rebuilding them per experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FacilitySuite {
    /// The combined-availability validation table.
    pub table: Vec<TableFacilityRow>,
    /// Recovery to full service after the all-pumps disaster.
    pub recovery_full: Figure,
    /// Recovery to basic service (X1) after the all-pumps disaster.
    pub recovery_basic: Figure,
    /// Instantaneous facility cost rate after the all-pumps disaster.
    pub cost_instantaneous: Figure,
    /// Accumulated facility cost after the all-pumps disaster.
    pub cost_accumulated: Figure,
}

/// Runs the whole facility evaluation on an explicit worker pool, one shared
/// [`FacilityAnalysis`] per strategy pair (see [`FacilitySuite`]).
///
/// # Errors
///
/// Propagates composition and solver errors.
pub fn facility_suite_with(
    pairs: &[(StrategySpec, StrategySpec)],
    recovery_times: &[f64],
    instantaneous_times: &[f64],
    accumulated_times: &[f64],
    exec: ExecOptions,
) -> Result<FacilitySuite, ArcadeError> {
    type PairOutput = (TableFacilityRow, (Series, Series), (Series, Series));
    let mode = JointSolverMode::from_env();
    let outputs: Vec<PairOutput> = exec::map_ordered(pairs, exec, |pair| {
        let model = facility::facility_model(&pair.0, &pair.1)?;
        let analysis = FacilityAnalysis::with_options(&model, composer_options(exec))?;
        let label = pair_label(pair);
        let row = facility_table_row(label.clone(), &analysis, mode)?;
        let recovery = (
            Series {
                label: label.clone(),
                points: analysis.survivability_curve(
                    FACILITY_DISASTER_ALL_PUMPS,
                    1.0,
                    recovery_times,
                )?,
            },
            Series {
                label: label.clone(),
                points: analysis.survivability_curve(
                    FACILITY_DISASTER_ALL_PUMPS,
                    service_levels::LINE1_X1,
                    recovery_times,
                )?,
            },
        );
        let cost = (
            Series {
                label: label.clone(),
                points: analysis.instantaneous_cost_curve(
                    Some(FACILITY_DISASTER_ALL_PUMPS),
                    instantaneous_times,
                )?,
            },
            Series {
                label,
                points: analysis
                    .accumulated_cost_curve(Some(FACILITY_DISASTER_ALL_PUMPS), accumulated_times)?,
            },
        );
        Ok::<PairOutput, ArcadeError>((row, recovery, cost))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    let mut table = Vec::new();
    let (mut full, mut basic, mut inst, mut acc) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (row, (recovery_full, recovery_basic), (cost_inst, cost_acc)) in outputs {
        table.push(row);
        full.push(recovery_full);
        basic.push(recovery_basic);
        inst.push(cost_inst);
        acc.push(cost_acc);
    }
    Ok(FacilitySuite {
        table,
        recovery_full: Figure {
            id: "fig-facility-full".to_string(),
            title: "Facility recovery to full service, all pumps failed".to_string(),
            x_label: "t in hours".to_string(),
            y_label: "Probability (S)".to_string(),
            series: full,
        },
        recovery_basic: Figure {
            id: "fig-facility-basic".to_string(),
            title: "Facility recovery to basic service (X1), all pumps failed".to_string(),
            x_label: "t in hours".to_string(),
            y_label: "Probability (S)".to_string(),
            series: basic,
        },
        cost_instantaneous: Figure {
            id: "fig-facility-inst-cost".to_string(),
            title: "Instantaneous facility cost, all pumps failed".to_string(),
            x_label: "t in hours".to_string(),
            y_label: "Impuls Costs (I)".to_string(),
            series: inst,
        },
        cost_accumulated: Figure {
            id: "fig-facility-acc-cost".to_string(),
            title: "Accumulated facility cost, all pumps failed".to_string(),
            x_label: "t in hours".to_string(),
            y_label: "Cumulative costs (I)".to_string(),
            series: acc,
        },
    })
}

/// The symmetry-reduction report of the `--symmetric-only` sweep: for every
/// symmetric strategy pair, the reduction ladder of the paper's Line 1 ×
/// Line 2 facility (no cross-line symmetry — the certificate proves the
/// product minimal) followed by the twin-Line-2 facility, whose identical
/// line chains the orbit engine folds to `n(n+1)/2` sorted pairs.
///
/// # Errors
///
/// Propagates composition and lumping errors.
pub fn symmetry_reduction_table(
    exec: ExecOptions,
) -> Result<Vec<SymmetryReductionRow>, ArcadeError> {
    let specs = strategies::paper_strategies();
    let rows = exec::map_ordered(&specs, exec, |spec| {
        let reduction_of = |model: &arcade_core::FacilityModel,
                            label: String|
         -> Result<SymmetryReductionRow, ArcadeError> {
            let analysis = FacilityAnalysis::with_options(model, composer_options(exec))?;
            let reduction = analysis.joint_reduction()?;
            Ok(SymmetryReductionRow {
                facility: label,
                product_blocks: reduction.product_blocks,
                orbit_blocks: reduction.orbit_blocks,
                solver_blocks: reduction.solver_blocks,
                exact_blocks: reduction.exact_blocks,
            })
        };
        let paper = facility::facility_model(spec, spec)?;
        let twin = facility::twin_facility(Line::Line2, spec)?;
        Ok::<_, ArcadeError>(vec![
            reduction_of(&paper, format!("{}×{}", spec.label, spec.label))?,
            reduction_of(&twin, format!("twin(line2, {})", spec.label))?,
        ])
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(rows.into_iter().flatten().collect())
}

/// Renders symmetry-reduction rows as a plain-text table.
pub fn format_symmetry_reduction(rows: &[SymmetryReductionRow]) -> String {
    let mut out = String::from(
        "Facility             Product     Orbit       Solved      Exact-min   Reduction\n",
    );
    let or_dash = |value: Option<usize>| match value {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    };
    for row in rows {
        out.push_str(&format!(
            "{:<20} {:<11} {:<11} {:<11} {:<11} {:.2}x\n",
            row.facility,
            row.product_blocks,
            or_dash(row.orbit_blocks),
            row.solver_blocks,
            row.exact_blocks,
            row.reduction_factor(),
        ));
    }
    out
}

/// One row of the k-line reduction ladder: builds the facility the spec
/// names, reads the three rungs off the per-line quotients (no
/// materialisation), then evaluates the availability on the cheapest exact
/// tier that fits:
///
/// 1. **joint-solve** — the per-line quotient product is at most the
///    [`JointSolverMode`]'s cutoff: solve the genuine joint chain. The
///    default engine is the matrix-free operator solver (cutoff
///    [`MAX_OPERATOR_PRODUCT`], nothing materialised);
///    `ARCADE_JOINT_SOLVER=materialise` restores the legacy materialised
///    Gauss–Seidel path (cutoff [`ModelSpec::MAX_MATERIALISED_PRODUCT`]).
///    Either engine is certified by the Kronecker-sum balance residual;
/// 2. **orbit-enumeration** — the product is too large but the orbit bound is
///    at most [`ORBIT_ENUMERATION_CAP`]: walk the canonical multisets lazily
///    under the stationary product measure
///    ([`FacilityAnalysis::orbit_availability`]), certified by the
///    accumulated total mass — the flat k-product is **never** materialised;
/// 3. **product-form** — counts only, availability from
///    `1 − Π P(line down)`.
///
/// # Errors
///
/// Rejects single-line specs; propagates composition and solver errors.
pub fn kline_reduction_row(
    spec: &ModelSpec,
    exec: ExecOptions,
) -> Result<KLineReductionRow, ArcadeError> {
    kline_reduction_row_with(spec, exec, JointSolverMode::from_env())
}

/// [`kline_reduction_row`] with an explicit joint-solve engine instead of the
/// `ARCADE_JOINT_SOLVER` environment selection.
///
/// # Errors
///
/// Rejects single-line specs; propagates composition and solver errors.
pub fn kline_reduction_row_with(
    spec: &ModelSpec,
    exec: ExecOptions,
    mode: JointSolverMode,
) -> Result<KLineReductionRow, ArcadeError> {
    let model = spec
        .facility_model()?
        .ok_or_else(|| ArcadeError::InvalidParameter {
            reason: format!("`{spec}` is a single line, not a facility — the ladder needs k ≥ 2"),
        })?;
    let analysis = FacilityAnalysis::with_options(&model, composer_options(exec))?;
    let stats = analysis.stats();

    // Flat rung: what exploring every line without lumping would cost.
    let mut flat_states = 1usize;
    for line in model.lines() {
        let compiled = CompiledModel::compile_with(
            line.model(),
            ComposerOptions {
                lumping: LumpingMode::Exact,
                ..composer_options(exec)
            },
        )?;
        flat_states = flat_states.saturating_mul(compiled.stats().num_states);
    }

    let availability = analysis.steady_state_availability()?;
    let (tier, solved_blocks, joint_availability, certificate, solver, iterations) =
        if stats.joint_blocks <= mode.joint_cutoff() {
            let joint = mode.solve_joint(&analysis)?;
            (
                "joint-solve",
                Some(joint.solved_states),
                Some(joint.availability),
                Some(joint.residual),
                Some(joint.solver_tier),
                Some(joint.iterations),
            )
        } else if stats
            .orbit_blocks
            .is_some_and(|bound| bound <= ORBIT_ENUMERATION_CAP)
        {
            let orbit = analysis.orbit_availability(ORBIT_ENUMERATION_CAP)?;
            (
                "orbit-enumeration",
                Some(orbit.orbits_explored),
                Some(orbit.availability),
                Some((orbit.total_mass - 1.0).abs()),
                None,
                None,
            )
        } else {
            ("product-form", None, None, None, None, None)
        };
    Ok(KLineReductionRow {
        k: model.lines().len(),
        facility: spec.canonical(),
        flat_states,
        product_blocks: stats.joint_blocks,
        orbit_blocks: stats.orbit_blocks,
        solved_blocks,
        availability,
        joint_availability,
        certificate,
        tier: tier.to_string(),
        solver,
        iterations,
    })
}

/// The k-line reduction ladder for a list of facility specs, one row per
/// spec, swept across the worker pool in spec order.
///
/// # Errors
///
/// Propagates per-row errors (see [`kline_reduction_row`]).
pub fn kline_reduction_table(
    specs: &[ModelSpec],
    exec: ExecOptions,
) -> Result<Vec<KLineReductionRow>, ArcadeError> {
    let mode = JointSolverMode::from_env();
    exec::map_ordered(specs, exec, |spec| {
        kline_reduction_row_with(spec, exec, mode)
    })
    .into_iter()
    .collect()
}

/// Renders k-line reduction rows as a plain-text table.
pub fn format_kline_reduction(rows: &[KLineReductionRow]) -> String {
    let count = |value: usize| {
        if value == usize::MAX {
            ">1.8e19".to_string()
        } else {
            value.to_string()
        }
    };
    let opt_count = |value: Option<usize>| value.map_or("-".to_string(), count);
    let opt_avail = |value: Option<f64>| value.map_or("-".to_string(), |v| format!("{v:.7}"));
    let opt_cert = |value: Option<f64>| value.map_or("-".to_string(), |v| format!("{v:.2e}"));
    let opt_text =
        |value: Option<&str>| value.map_or("-".to_string(), std::string::ToString::to_string);
    let mut out = String::from(
        "k  Facility              Flat            Product         Orbit        \
         Solved       A(product)  A(joint)    Certificate  Tier              \
         Solver           Iters\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<2} {:<21} {:<15} {:<15} {:<12} {:<12} {:<11.7} {:<11} {:<12} {:<17} {:<16} {}\n",
            row.k,
            row.facility,
            count(row.flat_states),
            count(row.product_blocks),
            opt_count(row.orbit_blocks),
            opt_count(row.solved_blocks),
            row.availability,
            opt_avail(row.joint_availability),
            opt_cert(row.certificate),
            row.tier,
            opt_text(row.solver.as_deref()),
            opt_count(row.iterations),
        ));
    }
    out
}

/// Joint facility recovery after the cross-line all-pumps disaster: for each
/// strategy pair, the probability that the facility again delivers **full
/// service on at least one line** (and, in the second figure, **basic
/// service**, X1 = 1/3) within the deadline. Evaluated on the materialised
/// Line 1 × Line 2 product — the construction that stays exact although the
/// disaster couples the lines' start state.
///
/// # Errors
///
/// Propagates composition and solver errors.
pub fn facility_recovery(times: &[f64]) -> Result<(Figure, Figure), ArcadeError> {
    facility_recovery_with(times, &paired_strategies(), ExecOptions::default())
}

/// [`facility_recovery`] for explicit pairs on an explicit worker pool.
///
/// # Errors
///
/// Propagates composition and solver errors.
pub fn facility_recovery_with(
    times: &[f64],
    pairs: &[(StrategySpec, StrategySpec)],
    exec: ExecOptions,
) -> Result<(Figure, Figure), ArcadeError> {
    let series = exec::map_ordered(pairs, exec, |pair| {
        let model = facility::facility_model(&pair.0, &pair.1)?;
        let analysis = FacilityAnalysis::with_options(&model, composer_options(exec))?;
        Ok::<_, ArcadeError>((
            Series {
                label: pair_label(pair),
                points: analysis.survivability_curve(FACILITY_DISASTER_ALL_PUMPS, 1.0, times)?,
            },
            Series {
                label: pair_label(pair),
                points: analysis.survivability_curve(
                    FACILITY_DISASTER_ALL_PUMPS,
                    service_levels::LINE1_X1,
                    times,
                )?,
            },
        ))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let (full, basic): (Vec<Series>, Vec<Series>) = series.into_iter().unzip();
    let fig_full = Figure {
        id: "fig-facility-full".to_string(),
        title: "Facility recovery to full service, all pumps failed".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Probability (S)".to_string(),
        series: full,
    };
    let fig_basic = Figure {
        id: "fig-facility-basic".to_string(),
        title: "Facility recovery to basic service (X1), all pumps failed".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Probability (S)".to_string(),
        series: basic,
    };
    Ok((fig_full, fig_basic))
}

/// Joint facility repair cost after the cross-line all-pumps disaster:
/// instantaneous cost rate and accumulated cost on the materialised product,
/// with the per-line cost rewards summed (costs of independent subsystems
/// add).
///
/// # Errors
///
/// Propagates composition and solver errors.
pub fn facility_cost(
    instantaneous_times: &[f64],
    accumulated_times: &[f64],
) -> Result<(Figure, Figure), ArcadeError> {
    facility_cost_with(
        instantaneous_times,
        accumulated_times,
        &paired_strategies(),
        ExecOptions::default(),
    )
}

/// [`facility_cost`] for explicit pairs on an explicit worker pool.
///
/// # Errors
///
/// Propagates composition and solver errors.
pub fn facility_cost_with(
    instantaneous_times: &[f64],
    accumulated_times: &[f64],
    pairs: &[(StrategySpec, StrategySpec)],
    exec: ExecOptions,
) -> Result<(Figure, Figure), ArcadeError> {
    let series = exec::map_ordered(pairs, exec, |pair| {
        let model = facility::facility_model(&pair.0, &pair.1)?;
        let analysis = FacilityAnalysis::with_options(&model, composer_options(exec))?;
        Ok::<_, ArcadeError>((
            Series {
                label: pair_label(pair),
                points: analysis.instantaneous_cost_curve(
                    Some(FACILITY_DISASTER_ALL_PUMPS),
                    instantaneous_times,
                )?,
            },
            Series {
                label: pair_label(pair),
                points: analysis
                    .accumulated_cost_curve(Some(FACILITY_DISASTER_ALL_PUMPS), accumulated_times)?,
            },
        ))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let (inst, acc): (Vec<Series>, Vec<Series>) = series.into_iter().unzip();
    let fig_inst = Figure {
        id: "fig-facility-inst-cost".to_string(),
        title: "Instantaneous facility cost, all pumps failed".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Impuls Costs (I)".to_string(),
        series: inst,
    };
    let fig_acc = Figure {
        id: "fig-facility-acc-cost".to_string(),
        title: "Accumulated facility cost, all pumps failed".to_string(),
        x_label: "t in hours".to_string(),
        y_label: "Cumulative costs (I)".to_string(),
        series: acc,
    };
    Ok((fig_inst, fig_acc))
}

/// Renders facility table rows as a plain-text table.
pub fn format_table_facility(rows: &[TableFacilityRow]) -> String {
    let mut out = String::from(
        "Pair           Line 1      Line 2      A1+A2-A1A2  Joint chain  |diff|     \
         Blocks      Solved      Residual  Solver           Iters\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:<11.7} {:<11.7} {:<11.7} {:<12.7} {:<10.2e} {:<11} {:<11} {:<9.2e} {:<16} {}\n",
            row.pair,
            row.line1,
            row.line2,
            row.combined,
            row.joint,
            row.difference,
            row.joint_blocks,
            row.solved_blocks,
            row.residual,
            row.solver_tier,
            row.iterations,
        ));
    }
    out
}

/// Renders Table 1 rows as a plain-text table. The lumped columns show the
/// quotient sizes after exact lumping (`-` where not computed, e.g. in the
/// paper-reference rows).
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out =
        String::from("Line    Strategy  States      Transitions  Lumped      Lumped-Trans\n");
    let or_dash = |value: Option<usize>| match value {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    };
    for row in rows {
        out.push_str(&format!(
            "{:<7} {:<9} {:<11} {:<12} {:<11} {}\n",
            row.line.id(),
            row.strategy,
            row.states,
            row.transitions,
            or_dash(row.lumped_states),
            or_dash(row.lumped_transitions),
        ));
    }
    out
}

/// Renders Table 2 rows as a plain-text table. Columns of lines excluded by
/// the `--line` selection (NaN) are rendered as `-`.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let or_dash = |value: f64| {
        if value.is_finite() {
            format!("{value:<11.7}")
        } else {
            format!("{:<11}", "-")
        }
    };
    let mut out = String::from("Strategy  Line 1      Line 2      Combined\n");
    for row in rows {
        out.push_str(&format!(
            "{:<9} {} {} {}\n",
            row.strategy,
            or_dash(row.line1),
            or_dash(row.line2),
            or_dash(row.combined).trim_end()
        ));
    }
    out
}

/// Renders a figure as a plain-text data table (one column per series), the
/// same numbers the paper plots.
pub fn format_figure(figure: &Figure) -> String {
    let mut out = format!("# {} — {}\n", figure.id, figure.title);
    out.push_str(&format!("# x: {}, y: {}\n", figure.x_label, figure.y_label));
    out.push('t');
    for series in &figure.series {
        out.push_str(&format!("\t{}", series.label));
    }
    out.push('\n');
    if let Some(first) = figure.series.first() {
        for (i, (t, _)) in first.points.iter().enumerate() {
            out.push_str(&format!("{t:.3}"));
            for series in &figure.series {
                out.push_str(&format!("\t{:.6}", series.points[i].1));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_the_paper_ranges() {
        let g = grids::fig3();
        assert_eq!(g.first().copied(), Some(0.0));
        assert!((g.last().copied().unwrap() - 1000.0).abs() < 1e-9);
        let g = grids::fig4_to_6();
        assert!((g.last().copied().unwrap() - 4.5).abs() < 1e-9);
        let g = grids::fig7();
        assert!((g.last().copied().unwrap() - 10.0).abs() < 1e-9);
        let g = grids::fig8_9();
        assert!((g.last().copied().unwrap() - 100.0).abs() < 1e-9);
        let g = grids::fig10_11();
        assert!((g.last().copied().unwrap() - 50.0).abs() < 1e-9);
        assert_eq!(grids::step_grid(0.0, 1.0, 0.5), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn paper_reference_tables_are_complete() {
        assert_eq!(table1_paper_reference().len(), 10);
        assert_eq!(table2_paper_reference().len(), 5);
        let ded = &table2_paper_reference()[0];
        assert_eq!(ded.strategy, "DED");
        assert!((ded.combined - 0.9536063).abs() < 1e-7);
    }

    #[test]
    fn formatting_contains_all_rows_and_series() {
        let rows = table1_paper_reference();
        let text = format_table1(&rows);
        assert!(text.contains("FRF-2"));
        assert!(text.contains("111809"));
        let rows = table2_paper_reference();
        let text = format_table2(&rows);
        assert!(text.contains("0.7442018"));
        let figure = Figure {
            id: "figX".into(),
            title: "demo".into(),
            x_label: "t".into(),
            y_label: "p".into(),
            series: vec![Series {
                label: "DED".into(),
                points: vec![(0.0, 1.0), (1.0, 0.5)],
            }],
        };
        let text = format_figure(&figure);
        assert!(text.contains("figX"));
        assert!(text.contains("DED"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn fig3_reliability_series_shapes() {
        let fig = fig3_reliability(&[0.0, 100.0, 200.0]).unwrap();
        assert_eq!(fig.series.len(), 2);
        for series in &fig.series {
            assert_eq!(series.points.len(), 3);
            assert!((series.points[0].1 - 1.0).abs() < 1e-9);
            // Reliability decreases with time.
            assert!(series.points[2].1 < series.points[1].1);
        }
        // Line 2 is more reliable than Line 1 (the paper's observation).
        let line1_at_200 = fig.series[0].points[2].1;
        let line2_at_200 = fig.series[1].points[2].1;
        assert!(line2_at_200 > line1_at_200);
    }

    #[test]
    fn table1_line2_dedicated_lumped_counts_are_pinned() {
        // 9 components -> 512 flat states; exact lumping merges the three
        // interchangeable softeners, the interchangeable sand filters and the
        // pump group into 96 blocks. The reduction must be strict and stable.
        let spec = strategies::dedicated();
        let model = facility::line_model(Line::Line2, &spec).unwrap();
        let compiled = CompiledModel::compile_with(
            &model,
            ComposerOptions {
                lumping: LumpingMode::Exact,
                ..Default::default()
            },
        )
        .unwrap();
        let stats = compiled.stats();
        assert_eq!(stats.num_states, 512);
        assert_eq!(stats.lumped_states, Some(96));
        assert_eq!(stats.lumped_transitions, Some(512));
        assert!(stats.lumped_states.unwrap() < stats.num_states);
        let lumped = compiled.lumped().expect("lumping is enabled");
        lumped
            .lumping()
            .verify(compiled.chain(), 1e-12)
            .expect("partition is stable");
    }

    #[test]
    fn table1_compositional_never_materializes_the_flat_chain() {
        // The default pipeline explores canonical representatives of the
        // per-family sub-chain quotients directly: the explored state count is
        // bounded by the product of the per-family quotient sizes and lands on
        // the same coarsest quotient as flat-then-lump (pinned by PR 1).
        let spec = strategies::dedicated();
        let model = facility::line_model(Line::Line2, &spec).unwrap();
        let compiled = CompiledModel::compile(&model).unwrap();
        let stats = compiled.stats();
        assert_eq!(stats.num_states, 96, "canonical representatives explored");
        assert_eq!(stats.lumped_states, Some(96));
        let bound = stats.subchain_state_bound.expect("compositional bound");
        assert!(stats.num_states <= bound, "{} > {bound}", stats.num_states);
        assert!(bound < 512, "the bound must beat the flat product");
        // Sub-chain breakdown: softeners (3), sand filters (2), reservoir,
        // pumps (3) — under dedicated repair the alphabet is {up, under
        // repair}, so the product of the local quotients is exactly 96.
        let sizes: Vec<(usize, usize)> = stats
            .subchains
            .iter()
            .map(|s| (s.members.len(), s.local_blocks))
            .collect();
        assert_eq!(sizes, vec![(3, 4), (2, 3), (1, 2), (3, 4)]);
        assert_eq!(bound, 96);
        let lumped = compiled.lumped().expect("final pass is enabled");
        lumped
            .lumping()
            .verify(compiled.chain(), 1e-12)
            .expect("the canonical chain is stably partitioned");
    }

    #[test]
    fn table_facility_dedicated_pair_validates_the_combined_formula() {
        // The DED×DED facility is the cheapest pair (160 × 96 joint blocks);
        // the full pair set is covered by the integration tests and the
        // facility bench. The product-form availability must match the
        // genuine joint chain to 1e-9 and reproduce the paper's 0.9536063.
        let pairs = [(strategies::dedicated(), strategies::dedicated())];
        let rows = table_facility_with(&pairs, ExecOptions::default()).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.pair, "DED×DED");
        assert_eq!(row.joint_blocks, 160 * 96);
        assert!(row.difference <= 1e-9, "gap {}", row.difference);
        assert!(row.residual < 1e-9, "residual {}", row.residual);
        assert!((row.combined - 0.9536063).abs() < 5e-6, "{}", row.combined);
        assert!((row.combined - crate::combined_availability(row.line1, row.line2)).abs() < 1e-12);
    }

    #[test]
    fn facility_recovery_curves_start_at_zero_and_grow() {
        let pairs = [(strategies::dedicated(), strategies::dedicated())];
        let times = [0.0, 1.0, 2.0];
        let (full, basic) = facility_recovery_with(&times, &pairs, ExecOptions::default()).unwrap();
        assert_eq!(full.series.len(), 1);
        let curve = &full.series[0].points;
        assert_eq!(curve[0].1, 0.0, "all pumps failed at t = 0");
        assert!(curve[1].1 < curve[2].1, "recovery probability grows");
        // Basic service (X1) is reached no later than full service.
        for (f, b) in curve.iter().zip(basic.series[0].points.iter()) {
            assert!(b.1 >= f.1 - 1e-12);
        }

        let (inst, acc) =
            facility_cost_with(&times, &times, &pairs, ExecOptions::default()).unwrap();
        // Seven failed pumps at 3/h each dominate the initial cost rate.
        assert!(inst.series[0].points[0].1 > 21.0 - 1e-9);
        assert_eq!(acc.series[0].points[0].1, 0.0);
        assert!(acc.series[0].points[2].1 > acc.series[0].points[1].1);
    }

    #[test]
    fn paired_strategies_cover_the_paper_set() {
        let pairs = paired_strategies();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pair_label(&pairs[0]), "DED×DED");
        assert_eq!(pair_label(&pairs[1]), "FRF-1×FRF-1");
        assert!(pairs.iter().all(|(a, b)| a.label == b.label));
    }

    #[test]
    fn line_selection_restricts_tables_and_figures() {
        let line2_only = table2_lines_with(&[Line::Line2], ExecOptions::default()).unwrap();
        assert!(line2_only.iter().all(|row| row.line1.is_nan()));
        assert!(line2_only.iter().all(|row| row.line2.is_finite()));
        assert!(line2_only.iter().all(|row| row.combined.is_nan()));
        let text = format_table2(&line2_only);
        assert!(text.contains('-'), "NaN columns render as dashes");

        let rows = table1_lines_with(&[Line::Line2], ExecOptions::default()).unwrap();
        assert!(rows.iter().all(|row| row.line == Line::Line2));
        assert_eq!(rows.len(), 5);

        let fig =
            fig3_reliability_lines_with(&[Line::Line1], &[0.0, 100.0], ExecOptions::default())
                .unwrap();
        assert_eq!(fig.series.len(), 1);
        assert!(fig.series[0].label.contains("line 1"));
    }

    #[test]
    fn kline_ladder_solves_the_twin_pair_on_both_engines() {
        // `facility/ded^2`: flat 512² = 262,144, product 96² = 9,216, orbit
        // C(97, 2) = 4,656 — small enough for the joint-solve tier on either
        // engine. The matrix-free default solves the full 9,216-state product
        // on the Kronecker-sum operator; the materialised engine runs on the
        // orbit fold. Both must agree with the product form.
        let spec = ModelSpec::parse("facility/ded^2").unwrap();
        let row =
            kline_reduction_row_with(&spec, ExecOptions::default(), JointSolverMode::Operator)
                .unwrap();
        assert_eq!(row.k, 2);
        assert_eq!(row.facility, "facility/ded^2");
        assert_eq!(row.flat_states, 512 * 512);
        assert_eq!(row.product_blocks, 96 * 96);
        assert_eq!(row.orbit_blocks, Some(96 * 97 / 2));
        assert_eq!(row.tier, "joint-solve");
        assert_eq!(row.solved_blocks, Some(96 * 96));
        assert_eq!(row.solver.as_deref(), Some("krylov-operator"));
        assert!(row.iterations.unwrap() >= 1);
        let joint = row.joint_availability.unwrap();
        assert!((joint - row.availability).abs() <= 1e-9);
        assert!(row.certificate.unwrap() < 1e-9);

        let materialised =
            kline_reduction_row_with(&spec, ExecOptions::default(), JointSolverMode::Materialise)
                .unwrap();
        assert_eq!(materialised.tier, "joint-solve");
        assert_eq!(materialised.solved_blocks, Some(96 * 97 / 2));
        assert_eq!(materialised.solver.as_deref(), Some("gs-materialised"));
        assert!(
            (materialised.joint_availability.unwrap() - joint).abs() <= 1e-10,
            "operator and materialised engines must agree: {} vs {}",
            joint,
            materialised.joint_availability.unwrap()
        );
    }

    #[test]
    fn kline_ladder_falls_back_to_counts_beyond_the_enumeration_cap() {
        // `facility/ded^8`: the orbit bound C(103, 8) ≈ 3.2 × 10¹¹ exceeds
        // the enumeration cap, so only the counts and the product form are
        // reported. Nothing is materialised, so the row stays instant.
        let spec = ModelSpec::parse("facility/ded^8").unwrap();
        let row = kline_reduction_row(&spec, ExecOptions::default()).unwrap();
        assert_eq!(row.k, 8);
        assert_eq!(row.tier, "product-form");
        assert_eq!(row.product_blocks, 96usize.pow(8));
        assert_eq!(row.flat_states, usize::MAX, "512⁸ = 2⁷² saturates");
        assert!(row.orbit_blocks.unwrap() > ORBIT_ENUMERATION_CAP);
        assert_eq!(row.solved_blocks, None);
        assert_eq!(row.joint_availability, None);
        assert!(row.availability > 0.9999, "{}", row.availability);

        // Single-line specs are rejected.
        let line = ModelSpec::parse("line2/ded").unwrap();
        assert!(kline_reduction_row(&line, ExecOptions::default()).is_err());

        let text = format_kline_reduction(&[row]);
        assert!(text.contains("facility/ded^8"));
        assert!(text.contains("product-form"));
    }

    #[test]
    fn table2_availability_close_to_paper_for_dedicated() {
        // Only the dedicated strategy is checked here to keep the unit-test suite
        // fast; the full table is covered by the integration tests.
        let spec = strategies::dedicated();
        let model = facility::line_model(Line::Line2, &spec).unwrap();
        let analysis = compiled_analysis(&model, ExecOptions::default()).unwrap();
        let availability = analysis.steady_state_availability().unwrap();
        assert!(
            (availability - 0.8186317).abs() < 1e-4,
            "got {availability}"
        );
    }
}
