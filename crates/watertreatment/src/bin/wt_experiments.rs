//! Command-line runner for the paper's experiments.
//!
//! ```text
//! wt-experiments all                # run every table and figure
//! wt-experiments --threads 4 all    # same, on a 4-worker pool
//! wt-experiments --line 1 all       # only Line 1 experiments
//! wt-experiments table1             # state-space sizes
//! wt-experiments table2             # steady-state availability
//! wt-experiments facility           # two-line facility: product vs joint chain
//! wt-experiments fig3               # reliability over time
//! wt-experiments fig4 fig5          # survivability Line 1, Disaster 1
//! wt-experiments fig6 fig7          # costs Line 1, Disaster 1
//! wt-experiments fig8 fig9          # survivability Line 2, Disaster 2
//! wt-experiments fig10 fig11        # costs Line 2, Disaster 2
//! ```
//!
//! `--threads N` sizes the worker pool shared by the frontier exploration,
//! the solver kernels and the per-strategy experiment sweeps; `--threads 1`
//! is the serial path and `--threads 0` (the default) auto-detects. Results
//! are identical for every thread count.
//!
//! `--line {1,2,both}` selects the process line(s): tables report only the
//! selected lines and line-specific figures (figs. 4–7 are Line 1, figs.
//! 8–11 are Line 2) are skipped when their line is deselected. The
//! `facility` experiment needs both lines and is skipped otherwise.
//!
//! `--symmetric-only` restricts the `facility` experiment to the symmetric
//! strategy pairs and prints the symmetry engine's reduction ladder (product
//! blocks → sorted-tuple orbit representatives → solved blocks, plus the
//! exact-lumping minimality certificate) instead of the full figure sweep.

use std::collections::BTreeSet;
use std::process::ExitCode;

use arcade_core::ExecOptions;
use watertreatment::experiments::{self, grids};
use watertreatment::Line;

const USAGE: &str = "usage: wt-experiments [--threads N] [--line 1|2|both] [--symmetric-only] \
     [all|table1|table2|facility|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11]...";

fn main() -> ExitCode {
    let mut requested: BTreeSet<String> = BTreeSet::new();
    let mut exec = ExecOptions::default();
    let mut lines: Vec<Line> = Line::both().to_vec();
    let mut symmetric_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let lower = arg.to_lowercase();
        if let Some(value) = lower.strip_prefix("--threads=") {
            match value.parse::<usize>() {
                Ok(threads) => exec = ExecOptions::with_threads(threads),
                Err(_) => {
                    eprintln!("invalid --threads value `{value}`\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else if lower == "--threads" {
            match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(threads)) => exec = ExecOptions::with_threads(threads),
                _ => {
                    eprintln!("--threads expects a number\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(value) = lower.strip_prefix("--line=") {
            match Line::from_arg(value) {
                Some(selection) => lines = selection,
                None => {
                    eprintln!("invalid --line value `{value}` (expected 1, 2 or both)\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else if lower == "--line" {
            match args.next().as_deref().and_then(Line::from_arg) {
                Some(selection) => lines = selection,
                None => {
                    eprintln!("--line expects 1, 2 or both\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else if lower == "--symmetric-only" {
            symmetric_only = true;
        } else if lower.starts_with('-') {
            eprintln!("unknown option `{arg}`\n{USAGE}");
            return ExitCode::from(2);
        } else {
            requested.insert(lower);
        }
    }
    if requested.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let all = requested.contains("all");
    let wants = |name: &str| all || requested.contains(name);

    if let Err(err) = run(wants, exec, &lines, symmetric_only) {
        eprintln!("experiment failed: {err}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run(
    wants: impl Fn(&str) -> bool,
    exec: ExecOptions,
    lines: &[Line],
    symmetric_only: bool,
) -> Result<(), arcade_core::ArcadeError> {
    let has = |line: Line| lines.contains(&line);
    let both = has(Line::Line1) && has(Line::Line2);
    let skip = |name: &str, needed: &str| {
        println!("== {name}: skipped (needs {needed}; pass --line both) ==\n");
    };

    if wants("table1") {
        println!("== Table 1: state-space sizes (flat product, as the paper reports) ==");
        println!(
            "{}",
            experiments::format_table1(&experiments::table1_lines_with(lines, exec)?)
        );
        println!("-- paper reference --");
        println!(
            "{}",
            experiments::format_table1(&experiments::table1_paper_reference())
        );
        println!("-- compositional pipeline (per-line sub-chains lumped before the product) --");
        println!(
            "{}",
            experiments::format_table1(&experiments::table1_compositional()?)
        );
    }
    if wants("table2") {
        println!("== Table 2: steady-state availability ==");
        println!(
            "{}",
            experiments::format_table2(&experiments::table2_lines_with(lines, exec)?)
        );
        println!("-- paper reference --");
        println!(
            "{}",
            experiments::format_table2(&experiments::table2_paper_reference())
        );
    }
    if wants("facility") {
        if both && symmetric_only {
            println!("== Facility symmetry: orbit quotients of the symmetric strategy pairs ==");
            let rows = experiments::symmetry_reduction_table(exec)?;
            println!("{}", experiments::format_symmetry_reduction(&rows));
            println!(
                "Paper pairs compose two *different* lines, so no cross-line symmetry\n\
                 exists; the `Exact-min` column certifies their products minimal. The\n\
                 twin facilities (two identical Line 2 copies) fold to n(n+1)/2 sorted\n\
                 pairs before materialisation.\n"
            );
        } else if both {
            println!("== Facility: combined availability, product form vs genuine joint chain ==");
            let suite = experiments::facility_suite_with(
                &experiments::paired_strategies(),
                &grids::fig4_to_6(),
                &grids::fig4_to_6(),
                &grids::fig7(),
                exec,
            )?;
            println!("{}", experiments::format_table_facility(&suite.table));
            println!("{}", experiments::format_figure(&suite.recovery_full));
            println!("{}", experiments::format_figure(&suite.recovery_basic));
            println!("{}", experiments::format_figure(&suite.cost_instantaneous));
            println!("{}", experiments::format_figure(&suite.cost_accumulated));
        } else {
            skip("facility", "both lines");
        }
    }
    if wants("fig3") {
        let fig = experiments::fig3_reliability_lines_with(lines, &grids::fig3(), exec)?;
        println!("{}", experiments::format_figure(&fig));
    }
    if wants("fig4") || wants("fig5") {
        if has(Line::Line1) {
            let (fig4, fig5) =
                experiments::fig4_5_survivability_line1_with(&grids::fig4_to_6(), exec)?;
            if wants("fig4") {
                println!("{}", experiments::format_figure(&fig4));
            }
            if wants("fig5") {
                println!("{}", experiments::format_figure(&fig5));
            }
        } else {
            skip("fig4/fig5", "line 1");
        }
    }
    if wants("fig6") || wants("fig7") {
        if has(Line::Line1) {
            let (fig6, fig7) =
                experiments::fig6_7_cost_line1_with(&grids::fig4_to_6(), &grids::fig7(), exec)?;
            if wants("fig6") {
                println!("{}", experiments::format_figure(&fig6));
            }
            if wants("fig7") {
                println!("{}", experiments::format_figure(&fig7));
            }
        } else {
            skip("fig6/fig7", "line 1");
        }
    }
    if wants("fig8") || wants("fig9") {
        if has(Line::Line2) {
            let (fig8, fig9) =
                experiments::fig8_9_survivability_line2_with(&grids::fig8_9(), exec)?;
            if wants("fig8") {
                println!("{}", experiments::format_figure(&fig8));
            }
            if wants("fig9") {
                println!("{}", experiments::format_figure(&fig9));
            }
        } else {
            skip("fig8/fig9", "line 2");
        }
    }
    if wants("fig10") || wants("fig11") {
        if has(Line::Line2) {
            let (fig10, fig11) = experiments::fig10_11_cost_line2_with(&grids::fig10_11(), exec)?;
            if wants("fig10") {
                println!("{}", experiments::format_figure(&fig10));
            }
            if wants("fig11") {
                println!("{}", experiments::format_figure(&fig11));
            }
        } else {
            skip("fig10/fig11", "line 2");
        }
    }
    Ok(())
}
