//! Command-line runner for the paper's experiments.
//!
//! ```text
//! wt-experiments all                # run every table and figure
//! wt-experiments --threads 4 all    # same, on a 4-worker pool
//! wt-experiments table1             # state-space sizes
//! wt-experiments table2             # steady-state availability
//! wt-experiments fig3               # reliability over time
//! wt-experiments fig4 fig5          # survivability Line 1, Disaster 1
//! wt-experiments fig6 fig7          # costs Line 1, Disaster 1
//! wt-experiments fig8 fig9          # survivability Line 2, Disaster 2
//! wt-experiments fig10 fig11        # costs Line 2, Disaster 2
//! ```
//!
//! `--threads N` sizes the worker pool shared by the frontier exploration,
//! the solver kernels and the per-strategy experiment sweeps; `--threads 1`
//! is the serial path and `--threads 0` (the default) auto-detects. Results
//! are identical for every thread count.

use std::collections::BTreeSet;
use std::process::ExitCode;

use arcade_core::ExecOptions;
use watertreatment::experiments::{self, grids};

const USAGE: &str = "usage: wt-experiments [--threads N] \
     [all|table1|table2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11]...";

fn main() -> ExitCode {
    let mut requested: BTreeSet<String> = BTreeSet::new();
    let mut exec = ExecOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let lower = arg.to_lowercase();
        if let Some(value) = lower.strip_prefix("--threads=") {
            match value.parse::<usize>() {
                Ok(threads) => exec = ExecOptions::with_threads(threads),
                Err(_) => {
                    eprintln!("invalid --threads value `{value}`\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else if lower == "--threads" {
            match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(threads)) => exec = ExecOptions::with_threads(threads),
                _ => {
                    eprintln!("--threads expects a number\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        } else if lower.starts_with('-') {
            eprintln!("unknown option `{arg}`\n{USAGE}");
            return ExitCode::from(2);
        } else {
            requested.insert(lower);
        }
    }
    if requested.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let all = requested.contains("all");
    let wants = |name: &str| all || requested.contains(name);

    if let Err(err) = run(wants, exec) {
        eprintln!("experiment failed: {err}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run(wants: impl Fn(&str) -> bool, exec: ExecOptions) -> Result<(), arcade_core::ArcadeError> {
    if wants("table1") {
        println!("== Table 1: state-space sizes (flat product, as the paper reports) ==");
        println!(
            "{}",
            experiments::format_table1(&experiments::table1_with(exec)?)
        );
        println!("-- paper reference --");
        println!(
            "{}",
            experiments::format_table1(&experiments::table1_paper_reference())
        );
        println!("-- compositional pipeline (per-line sub-chains lumped before the product) --");
        println!(
            "{}",
            experiments::format_table1(&experiments::table1_compositional()?)
        );
    }
    if wants("table2") {
        println!("== Table 2: steady-state availability ==");
        println!(
            "{}",
            experiments::format_table2(&experiments::table2_with(exec)?)
        );
        println!("-- paper reference --");
        println!(
            "{}",
            experiments::format_table2(&experiments::table2_paper_reference())
        );
    }
    if wants("fig3") {
        let fig = experiments::fig3_reliability_with(&grids::fig3(), exec)?;
        println!("{}", experiments::format_figure(&fig));
    }
    if wants("fig4") || wants("fig5") {
        let (fig4, fig5) = experiments::fig4_5_survivability_line1_with(&grids::fig4_to_6(), exec)?;
        if wants("fig4") {
            println!("{}", experiments::format_figure(&fig4));
        }
        if wants("fig5") {
            println!("{}", experiments::format_figure(&fig5));
        }
    }
    if wants("fig6") || wants("fig7") {
        let (fig6, fig7) =
            experiments::fig6_7_cost_line1_with(&grids::fig4_to_6(), &grids::fig7(), exec)?;
        if wants("fig6") {
            println!("{}", experiments::format_figure(&fig6));
        }
        if wants("fig7") {
            println!("{}", experiments::format_figure(&fig7));
        }
    }
    if wants("fig8") || wants("fig9") {
        let (fig8, fig9) = experiments::fig8_9_survivability_line2_with(&grids::fig8_9(), exec)?;
        if wants("fig8") {
            println!("{}", experiments::format_figure(&fig8));
        }
        if wants("fig9") {
            println!("{}", experiments::format_figure(&fig9));
        }
    }
    if wants("fig10") || wants("fig11") {
        let (fig10, fig11) = experiments::fig10_11_cost_line2_with(&grids::fig10_11(), exec)?;
        if wants("fig10") {
            println!("{}", experiments::format_figure(&fig10));
        }
        if wants("fig11") {
            println!("{}", experiments::format_figure(&fig11));
        }
    }
    Ok(())
}
