//! The repair-strategy catalogue compared in the paper.

use arcade_core::RepairStrategy;
use serde::{Deserialize, Serialize};

/// A named repair-strategy configuration (strategy plus crew count), e.g.
/// `FRF-2` = fastest repair first with two crews.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategySpec {
    /// Label used in tables and figures (`DED`, `FRF-1`, `FFF-2`, ...).
    pub label: String,
    /// The scheduling policy.
    pub strategy: RepairStrategy,
    /// Number of repair crews per repair unit.
    pub crews: usize,
    /// Whether running repairs are preempted by higher-priority arrivals
    /// (extension; the paper's strategies are non-preemptive).
    #[serde(default)]
    pub preemptive: bool,
}

impl StrategySpec {
    /// Creates a (non-preemptive) strategy specification.
    pub fn new(label: impl Into<String>, strategy: RepairStrategy, crews: usize) -> Self {
        StrategySpec {
            label: label.into(),
            strategy,
            crews,
            preemptive: false,
        }
    }

    /// Marks this specification as preemptive.
    pub fn preemptive(mut self) -> Self {
        self.preemptive = true;
        self
    }
}

/// Dedicated repair (`DED`): one crew per component.
pub fn dedicated() -> StrategySpec {
    StrategySpec::new("DED", RepairStrategy::Dedicated, 1)
}

/// Fastest repair first with the given number of crews (`FRF-k`).
pub fn frf(crews: usize) -> StrategySpec {
    StrategySpec::new(
        format!("FRF-{crews}"),
        RepairStrategy::FastestRepairFirst,
        crews,
    )
}

/// Fastest failure first with the given number of crews (`FFF-k`).
pub fn fff(crews: usize) -> StrategySpec {
    StrategySpec::new(
        format!("FFF-{crews}"),
        RepairStrategy::FastestFailureFirst,
        crews,
    )
}

/// First come, first served with the given number of crews (`FCFS-k`).
/// The paper uses FCFS only as a tie-break rule; it is exposed here as a
/// first-class strategy for the ablation benchmarks.
pub fn fcfs(crews: usize) -> StrategySpec {
    StrategySpec::new(
        format!("FCFS-{crews}"),
        RepairStrategy::FirstComeFirstServe,
        crews,
    )
}

/// Preemptive fastest repair first with the given number of crews (`FRF-kP`).
/// Not part of the paper's evaluation; used by the ablation benchmarks to show
/// the effect of the scheduling discipline on the state space and the measures.
pub fn frf_preemptive(crews: usize) -> StrategySpec {
    StrategySpec::new(
        format!("FRF-{crews}P"),
        RepairStrategy::FastestRepairFirst,
        crews,
    )
    .preemptive()
}

/// Preemptive fastest failure first with the given number of crews (`FFF-kP`).
pub fn fff_preemptive(crews: usize) -> StrategySpec {
    StrategySpec::new(
        format!("FFF-{crews}P"),
        RepairStrategy::FastestFailureFirst,
        crews,
    )
    .preemptive()
}

/// The five configurations evaluated throughout the paper:
/// `DED`, `FRF-1`, `FRF-2`, `FFF-1`, `FFF-2`.
pub fn paper_strategies() -> Vec<StrategySpec> {
    vec![dedicated(), frf(1), frf(2), fff(1), fff(2)]
}

/// The subset of strategies shown in the Line 1 / Disaster 1 figures
/// (`DED`, `FRF-1`, `FRF-2`); FFF coincides with FRF there because only pumps
/// have failed.
pub fn disaster1_strategies() -> Vec<StrategySpec> {
    vec![dedicated(), frf(1), frf(2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(dedicated().label, "DED");
        assert_eq!(frf(1).label, "FRF-1");
        assert_eq!(frf(2).label, "FRF-2");
        assert_eq!(fff(2).label, "FFF-2");
        assert_eq!(fcfs(1).label, "FCFS-1");
    }

    #[test]
    fn paper_strategy_set() {
        let all = paper_strategies();
        assert_eq!(all.len(), 5);
        let labels: Vec<_> = all.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"]);
        assert_eq!(disaster1_strategies().len(), 3);
    }

    #[test]
    fn crew_counts_are_recorded() {
        assert_eq!(frf(2).crews, 2);
        assert_eq!(fff(1).crews, 1);
        assert_eq!(dedicated().crews, 1);
    }

    #[test]
    fn preemptive_variants_are_flagged_and_labelled() {
        let spec = frf_preemptive(2);
        assert_eq!(spec.label, "FRF-2P");
        assert!(spec.preemptive);
        assert!(!frf(2).preemptive);
        assert!(fff_preemptive(1).preemptive);
    }
}
