//! Named-model registry: textual specs for every analysable model.
//!
//! The analysis service (`arcade-server`) and the CLI address models by a
//! compact, canonical string instead of Rust constructor calls:
//!
//! ```text
//! line1/ded                Line 1 under dedicated repair
//! line2/frf-1              Line 2, fastest repair first, one crew
//! line1/fff-2p             Line 1, preemptive fastest failure first, two crews
//! facility/ded+frf-2       Two-line facility, per-line strategies
//! facility/ded+frf-1+ded   Three-line bank of twin-shape lines
//! facility/ded^4           Homogeneous 4-line bank (repetition shorthand)
//! line1/ded@1.05           Rate-perturbed variant: all failure rates × 1.05
//! ```
//!
//! A **two**-term `+` list names the paper's facility (a Line 1 paired with a
//! Line 2); a list of **three or more** terms names a k-line bank of
//! twin-shape ([`Line::Line2`]) lines, one strategy per line. `s^k` (k ≥ 2)
//! is the homogeneous bank of `k` identical twin-shape lines — its factors
//! compile to identical chains, which routes the joint measures straight into
//! the symmetry engine's sorted-tuple orbit fold. A `+` list whose terms are
//! all equal canonicalises to the `^` form; note `facility/ded+ded` (the
//! paper's Line 1 × Line 2 facility under DED) and `facility/ded^2` (two
//! identical twin-shape lines) are *different* models on purpose.
//!
//! The optional `@<scale>` suffix multiplies every failure rate (divides every
//! MTTF) while keeping repair rates, costs, the structure and the disasters —
//! so all scales of one *family* (the spec without the suffix) share the exact
//! state space and lumping partition, and their stationary solutions make good
//! warm starts for each other.

use std::fmt;
use std::str::FromStr;

use arcade_core::{
    ArcadeError, CompiledQuotient, ComposerOptions, FacilityAnalysis, FacilityModel,
};

use crate::facility::{
    facility_model_k_scaled, facility_model_scaled, line_model_scaled, Line, LineSpec,
};
use crate::strategies::{self, StrategySpec};

/// What a [`ModelSpec`] names: one process line, the paper's two-line
/// facility, or a k-line bank of twin-shape lines.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelTarget {
    /// A single process line under one repair strategy.
    Line {
        /// Which line.
        line: Line,
        /// The repair strategy of its repair unit.
        strategy: StrategySpec,
    },
    /// The two-line facility with per-line strategies.
    Facility {
        /// Strategy of Line 1.
        line1: StrategySpec,
        /// Strategy of Line 2.
        line2: StrategySpec,
    },
    /// A k-line bank of twin-shape ([`Line::Line2`]) lines, one strategy per
    /// line (`facility/ded+frf-1+ded`, `facility/ded^4`). Lines with equal
    /// strategies compile to identical chains and fold under the symmetry
    /// engine's sorted-tuple orbits.
    FacilityK {
        /// Per-line strategies, in line order (`k = strategies.len() ≥ 2`).
        strategies: Vec<StrategySpec>,
    },
}

/// A parsed, canonical model specification (see the module docs for the
/// grammar). Parsing is case-insensitive; [`ModelSpec::canonical`] is the
/// lower-case normal form used as a registry key.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    target: ModelTarget,
    rate_scale: f64,
}

impl ModelSpec {
    /// Parses a spec string such as `line1/ded`, `facility/frf-1+fff-2` or
    /// `line2/ded@1.05`.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidParameter`] for anything outside the
    /// grammar, including non-finite or non-positive rate scales.
    pub fn parse(spec: &str) -> Result<Self, ArcadeError> {
        let lowered = spec.trim().to_lowercase();
        let bad = |reason: String| ArcadeError::InvalidParameter { reason };

        let (body, rate_scale) = match lowered.split_once('@') {
            None => (lowered.as_str(), 1.0),
            Some((body, scale)) => {
                let value = f64::from_str(scale).map_err(|_| {
                    bad(format!(
                        "model spec `{spec}`: unparsable rate scale `{scale}`"
                    ))
                })?;
                if !value.is_finite() || value <= 0.0 {
                    return Err(bad(format!(
                        "model spec `{spec}`: rate scale must be positive and finite, got {value}"
                    )));
                }
                (body, value)
            }
        };

        let (head, tail) = body.split_once('/').ok_or_else(|| {
            bad(format!(
                "model spec `{spec}`: expected `<line1|line2|facility>/<strategy>`"
            ))
        })?;
        let target = match head {
            "line1" => ModelTarget::Line {
                line: Line::Line1,
                strategy: parse_strategy(spec, tail)?,
            },
            "line2" => ModelTarget::Line {
                line: Line::Line2,
                strategy: parse_strategy(spec, tail)?,
            },
            "facility" => parse_facility(spec, tail)?,
            other => {
                return Err(bad(format!(
                "model spec `{spec}`: unknown target `{other}` (expected line1, line2 or facility)"
            )))
            }
        };
        Ok(ModelSpec { target, rate_scale })
    }

    /// The canonical (lower-case) form; parsing it again yields an equal spec.
    pub fn canonical(&self) -> String {
        if self.rate_scale == 1.0 {
            self.family()
        } else {
            format!("{}@{:?}", self.family(), self.rate_scale)
        }
    }

    /// The spec without its rate scale: all scales of one family share the
    /// state space and lumping partition, differing only in transition rates.
    pub fn family(&self) -> String {
        match &self.target {
            ModelTarget::Line { line, strategy } => {
                format!("{}/{}", line.id(), strategy.label.to_lowercase())
            }
            ModelTarget::Facility { line1, line2 } => format!(
                "facility/{}+{}",
                line1.label.to_lowercase(),
                line2.label.to_lowercase()
            ),
            ModelTarget::FacilityK { strategies } => {
                // All-equal banks canonicalise to the `^` shorthand so the
                // registry key routes identical factors into one family.
                if strategies.iter().all(|s| s == &strategies[0]) {
                    format!(
                        "facility/{}^{}",
                        strategies[0].label.to_lowercase(),
                        strategies.len()
                    )
                } else {
                    format!(
                        "facility/{}",
                        strategies
                            .iter()
                            .map(|s| s.label.to_lowercase())
                            .collect::<Vec<_>>()
                            .join("+")
                    )
                }
            }
        }
    }

    /// What this spec names.
    pub fn target(&self) -> &ModelTarget {
        &self.target
    }

    /// The failure-rate multiplier (`1.0` for the nominal model).
    pub fn rate_scale(&self) -> f64 {
        self.rate_scale
    }

    /// Whether this spec names a facility (two-line or k-line).
    pub fn is_facility(&self) -> bool {
        matches!(
            self.target,
            ModelTarget::Facility { .. } | ModelTarget::FacilityK { .. }
        )
    }

    /// Number of process lines this spec composes (1 for single lines).
    pub fn num_lines(&self) -> usize {
        match &self.target {
            ModelTarget::Line { .. } => 1,
            ModelTarget::Facility { .. } => 2,
            ModelTarget::FacilityK { strategies } => strategies.len(),
        }
    }

    /// Builds the [`FacilityModel`] this spec names, or `None` for a
    /// single-line spec. This is the front door of the k-sweep experiments:
    /// the model can be analysed without materialising anything — counts,
    /// product-form availability and the orbit-enumeration tier all run on
    /// the per-line quotients.
    ///
    /// # Errors
    ///
    /// Propagates model-building errors.
    pub fn facility_model(&self) -> Result<Option<FacilityModel>, ArcadeError> {
        match &self.target {
            ModelTarget::Line { .. } => Ok(None),
            ModelTarget::Facility { line1, line2 } => {
                Ok(Some(facility_model_scaled(line1, line2, self.rate_scale)?))
            }
            ModelTarget::FacilityK { strategies } => {
                let specs: Vec<LineSpec> = strategies
                    .iter()
                    .map(|strategy| LineSpec::twin(strategy.clone()))
                    .collect();
                Ok(Some(facility_model_k_scaled(&specs, self.rate_scale)?))
            }
        }
    }

    /// Builds the model and compiles it into the solver-ready
    /// [`CompiledQuotient`] artifact. For facility specs this materialises
    /// the joint chain (the orbit fold under factor symmetry), so it is
    /// gated on the product size: specs whose per-line quotient product
    /// exceeds [`ModelSpec::MAX_MATERIALISED_PRODUCT`] states are rejected
    /// with a pointer at the orbit-enumeration tier, which answers
    /// availability without ever materialising the flat k-product.
    ///
    /// # Errors
    ///
    /// Propagates model-building and composition errors; rejects facility
    /// products too large to materialise.
    pub fn build_quotient(
        &self,
        options: ComposerOptions,
    ) -> Result<CompiledQuotient, ArcadeError> {
        match &self.target {
            ModelTarget::Line { line, strategy } => {
                let model = line_model_scaled(*line, strategy, self.rate_scale)?;
                CompiledQuotient::of_model(&model, options)
            }
            ModelTarget::Facility { .. } | ModelTarget::FacilityK { .. } => {
                let model = self.facility_model()?.expect("facility targets");
                let analysis = FacilityAnalysis::with_options(&model, options)?;
                let product_blocks = analysis.stats().joint_blocks;
                if product_blocks > Self::MAX_MATERIALISED_PRODUCT {
                    return Err(ArcadeError::InvalidParameter {
                        reason: format!(
                            "model spec `{}`: the joint product has {product_blocks} states, \
                             beyond the {} materialisation cap — query the orbit-enumeration \
                             availability (`wt_experiments facility`) instead",
                            self.canonical(),
                            Self::MAX_MATERIALISED_PRODUCT
                        ),
                    });
                }
                analysis.compiled_quotient()
            }
        }
    }

    /// Largest per-line quotient product (in joint states) that
    /// [`ModelSpec::build_quotient`] will materialise. `facility/ded^3`
    /// (96³ = 884,736 tuples, folded to 152,096 orbits) fits;
    /// `facility/ded^4` (96⁴ ≈ 8.5×10⁷) does not and is served by the
    /// enumeration tier.
    pub const MAX_MATERIALISED_PRODUCT: usize = 1_500_000;
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl FromStr for ModelSpec {
    type Err = ArcadeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelSpec::parse(s)
    }
}

/// Parses a facility tail: `s1+s2` (the paper facility), `s1+…+sk` with
/// k ≥ 3 (a twin-shape bank) or `s^k` (a homogeneous bank).
fn parse_facility(spec: &str, tail: &str) -> Result<ModelTarget, ArcadeError> {
    let bad = |reason: String| ArcadeError::InvalidParameter { reason };
    if let Some((strategy, count)) = tail.split_once('^') {
        if strategy.contains('+') || count.contains('+') {
            return Err(bad(format!(
                "model spec `{spec}`: `^` repetition cannot be mixed with a `+` list"
            )));
        }
        let k: usize = count.parse().map_err(|_| {
            bad(format!(
                "model spec `{spec}`: unparsable line count `{count}` in `{tail}`"
            ))
        })?;
        if k < 2 {
            return Err(bad(format!(
                "model spec `{spec}`: a homogeneous bank needs at least 2 lines, got {k}"
            )));
        }
        let strategy = parse_strategy(spec, strategy)?;
        return Ok(ModelTarget::FacilityK {
            strategies: vec![strategy; k],
        });
    }
    let terms: Vec<&str> = tail.split('+').collect();
    match terms.as_slice() {
        [] | [_] => Err(bad(format!(
            "model spec `{spec}`: facility needs two or more strategies, \
             `facility/<s1>+<s2>[+…]` or `facility/<s>^<k>`"
        ))),
        [s1, s2] => Ok(ModelTarget::Facility {
            line1: parse_strategy(spec, s1)?,
            line2: parse_strategy(spec, s2)?,
        }),
        terms => Ok(ModelTarget::FacilityK {
            strategies: terms
                .iter()
                .map(|term| parse_strategy(spec, term))
                .collect::<Result<Vec<_>, _>>()?,
        }),
    }
}

/// Parses one (lower-cased) strategy token: `ded`, `frf-K`, `fff-K`,
/// `fcfs-K`, with an optional `p` suffix on `frf`/`fff` for the preemptive
/// variants.
fn parse_strategy(spec: &str, token: &str) -> Result<StrategySpec, ArcadeError> {
    let bad = |reason: String| ArcadeError::InvalidParameter { reason };
    if token == "ded" {
        return Ok(strategies::dedicated());
    }
    let (base, preemptive) = match token.strip_suffix('p') {
        Some(b) if b.ends_with(|c: char| c.is_ascii_digit()) => (b, true),
        _ => (token, false),
    };
    let (kind, crews) = base.split_once('-').ok_or_else(|| {
        bad(format!(
            "model spec `{spec}`: unknown strategy `{token}` (expected ded, frf-K, fff-K or fcfs-K)"
        ))
    })?;
    let crews: usize = crews.parse().map_err(|_| {
        bad(format!(
            "model spec `{spec}`: unparsable crew count in strategy `{token}`"
        ))
    })?;
    if crews == 0 {
        return Err(bad(format!(
            "model spec `{spec}`: strategy `{token}` needs at least one crew"
        )));
    }
    match (kind, preemptive) {
        ("frf", false) => Ok(strategies::frf(crews)),
        ("fff", false) => Ok(strategies::fff(crews)),
        ("fcfs", false) => Ok(strategies::fcfs(crews)),
        ("frf", true) => Ok(strategies::frf_preemptive(crews)),
        ("fff", true) => Ok(strategies::fff_preemptive(crews)),
        _ => Err(bad(format!(
            "model spec `{spec}`: unknown strategy `{token}` (expected ded, frf-K, fff-K or fcfs-K)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcade_symmetry::chain_presentation_code;

    #[test]
    fn specs_parse_case_insensitively_and_round_trip() {
        for raw in [
            "line1/ded",
            "line2/frf-1",
            "line1/fff-2",
            "line2/fcfs-3",
            "line1/frf-2p",
            "facility/ded+ded",
            "facility/frf-1+fff-2",
            "facility/ded+frf-1+ded",
            "facility/ded^4",
            "facility/frf-1^3@1.1",
            "line1/ded@1.05",
            "facility/ded+ded@0.5",
        ] {
            let spec = ModelSpec::parse(raw).unwrap();
            assert_eq!(spec.canonical(), raw, "canonical form is the input here");
            let reparsed = ModelSpec::parse(&spec.canonical()).unwrap();
            assert_eq!(reparsed, spec, "canonical round-trips");
        }
        let upper = ModelSpec::parse("  LINE1/DED ").unwrap();
        assert_eq!(upper.canonical(), "line1/ded");
        let one = ModelSpec::parse("line1/ded@1.0").unwrap();
        assert_eq!(one.canonical(), "line1/ded", "unit scale is dropped");
        assert_eq!(one.rate_scale(), 1.0);
    }

    #[test]
    fn families_strip_the_rate_scale() {
        let nominal = ModelSpec::parse("line2/frf-2").unwrap();
        let scaled = ModelSpec::parse("line2/frf-2@1.1").unwrap();
        assert_eq!(nominal.family(), scaled.family());
        assert_ne!(nominal.canonical(), scaled.canonical());
        assert!(!nominal.is_facility());
        assert!(ModelSpec::parse("facility/ded+ded").unwrap().is_facility());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for raw in [
            "",
            "line1",
            "line3/ded",
            "line1/dead",
            "line1/frf",
            "line1/frf-0",
            "line1/frf-x",
            "line1/fcfs-1p",
            "line1/dedp",
            "facility/ded",
            "line1/ded@",
            "line1/ded@0",
            "line1/ded@-1",
            "line1/ded@inf",
            "line1/ded@nan",
            "facility/ded^1",
            "facility/ded^0",
            "facility/ded^x",
            "facility/ded^",
            "facility/ded^2+frf-1",
            "facility/ded+frf-1+",
            "line1/ded^2",
        ] {
            let err = ModelSpec::parse(raw).unwrap_err();
            assert!(
                matches!(err, ArcadeError::InvalidParameter { .. }),
                "`{raw}` must be an InvalidParameter, got {err:?}"
            );
        }
    }

    #[test]
    fn scaled_variants_share_the_state_space_but_not_the_chain() {
        let options = ComposerOptions::default;
        let nominal = ModelSpec::parse("line2/ded")
            .unwrap()
            .build_quotient(options())
            .unwrap();
        let scaled = ModelSpec::parse("line2/ded@1.25")
            .unwrap()
            .build_quotient(options())
            .unwrap();
        assert_eq!(nominal.num_states(), scaled.num_states());
        assert_ne!(
            chain_presentation_code(nominal.chain()),
            chain_presentation_code(scaled.chain()),
            "scaling the rates must change the chain fingerprint"
        );
        assert!(!nominal.identical(&scaled));
        assert!(nominal.identical(&nominal.clone()));
    }

    #[test]
    fn k_term_and_repetition_specs_target_the_twin_bank() {
        let uniform = ModelSpec::parse("facility/ded+ded+ded").unwrap();
        assert_eq!(
            uniform.canonical(),
            "facility/ded^3",
            "all-equal lists collapse to the shorthand"
        );
        assert_eq!(uniform, ModelSpec::parse("facility/ded^3").unwrap());
        assert_eq!(uniform.num_lines(), 3);
        assert!(uniform.is_facility());

        let mixed = ModelSpec::parse("facility/ded+frf-1+ded").unwrap();
        assert_eq!(mixed.canonical(), "facility/ded+frf-1+ded");
        assert_eq!(mixed.num_lines(), 3);
        match mixed.target() {
            ModelTarget::FacilityK { strategies } => {
                let labels: Vec<_> = strategies.iter().map(|s| s.label.as_str()).collect();
                assert_eq!(labels, vec!["DED", "FRF-1", "DED"]);
            }
            other => panic!("expected FacilityK, got {other:?}"),
        }

        // `facility/ded+ded` stays the paper's Line 1 × Line 2 facility —
        // a different model from the twin bank `facility/ded^2`.
        let paper = ModelSpec::parse("facility/ded+ded").unwrap();
        assert!(matches!(paper.target(), ModelTarget::Facility { .. }));
        assert_eq!(paper.num_lines(), 2);
        assert_ne!(paper, ModelSpec::parse("facility/ded^2").unwrap());

        // The `@scale` suffix composes with both forms.
        let scaled = ModelSpec::parse("facility/ded^4@1.1").unwrap();
        assert_eq!(scaled.family(), "facility/ded^4");
        assert_eq!(scaled.rate_scale(), 1.1);
    }

    #[test]
    fn twin_bank_specs_build_k_line_models() {
        use crate::facility::FACILITY_DISASTER_ALL_PUMPS;
        let spec = ModelSpec::parse("facility/ded^4").unwrap();
        let model = spec.facility_model().unwrap().unwrap();
        assert_eq!(model.lines().len(), 4);
        assert_eq!(model.line_index("line4"), Some(3));
        assert_eq!(model.composition_tree().groups.len(), 4);
        assert!(model.disaster(FACILITY_DISASTER_ALL_PUMPS).is_some());
        assert!(ModelSpec::parse("line1/ded")
            .unwrap()
            .facility_model()
            .unwrap()
            .is_none());
    }

    #[test]
    fn twin_bank_quotients_fold_identical_factors() {
        // facility/ded^2: two identical 96-block twin chains fold to
        // 96·97/2 = 4,656 sorted-pair orbit representatives.
        let spec = ModelSpec::parse("facility/ded^2").unwrap();
        let quotient = spec.build_quotient(ComposerOptions::default()).unwrap();
        assert_eq!(quotient.num_states(), 96 * 97 / 2);
        assert_eq!(quotient.source_states(), 96 * 96);
    }

    #[test]
    fn oversized_products_are_rejected_with_a_pointer_at_the_enumeration_tier() {
        // facility/ded^4 has 96⁴ ≈ 8.5×10⁷ product states: build_quotient
        // must refuse to materialise it (the orbit-enumeration tier serves
        // it instead), while the model itself still builds.
        let spec = ModelSpec::parse("facility/ded^4").unwrap();
        assert!(spec.facility_model().unwrap().is_some());
        let err = spec.build_quotient(ComposerOptions::default()).unwrap_err();
        match err {
            ArcadeError::InvalidParameter { reason } => {
                assert!(reason.contains("materialisation cap"), "{reason}");
            }
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn facility_spec_matches_the_analysis_front_end() {
        let spec = ModelSpec::parse("facility/ded+ded").unwrap();
        let quotient = spec.build_quotient(ComposerOptions::default()).unwrap();
        let model =
            facility_model_scaled(&strategies::dedicated(), &strategies::dedicated(), 1.0).unwrap();
        let direct = FacilityAnalysis::new(&model)
            .unwrap()
            .compiled_quotient()
            .unwrap();
        assert!(quotient.identical(&direct));
    }
}
