//! Named-model registry: textual specs for every analysable model.
//!
//! The analysis service (`arcade-server`) and the CLI address models by a
//! compact, canonical string instead of Rust constructor calls:
//!
//! ```text
//! line1/ded            Line 1 under dedicated repair
//! line2/frf-1          Line 2, fastest repair first, one crew
//! line1/fff-2p         Line 1, preemptive fastest failure first, two crews
//! facility/ded+frf-2   Two-line facility, per-line strategies
//! line1/ded@1.05       Rate-perturbed variant: all failure rates × 1.05
//! ```
//!
//! The optional `@<scale>` suffix multiplies every failure rate (divides every
//! MTTF) while keeping repair rates, costs, the structure and the disasters —
//! so all scales of one *family* (the spec without the suffix) share the exact
//! state space and lumping partition, and their stationary solutions make good
//! warm starts for each other.

use std::fmt;
use std::str::FromStr;

use arcade_core::{ArcadeError, CompiledQuotient, ComposerOptions, FacilityAnalysis};

use crate::facility::{facility_model_scaled, line_model_scaled, Line};
use crate::strategies::{self, StrategySpec};

/// What a [`ModelSpec`] names: one process line or the two-line facility.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelTarget {
    /// A single process line under one repair strategy.
    Line {
        /// Which line.
        line: Line,
        /// The repair strategy of its repair unit.
        strategy: StrategySpec,
    },
    /// The two-line facility with per-line strategies.
    Facility {
        /// Strategy of Line 1.
        line1: StrategySpec,
        /// Strategy of Line 2.
        line2: StrategySpec,
    },
}

/// A parsed, canonical model specification (see the module docs for the
/// grammar). Parsing is case-insensitive; [`ModelSpec::canonical`] is the
/// lower-case normal form used as a registry key.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    target: ModelTarget,
    rate_scale: f64,
}

impl ModelSpec {
    /// Parses a spec string such as `line1/ded`, `facility/frf-1+fff-2` or
    /// `line2/ded@1.05`.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidParameter`] for anything outside the
    /// grammar, including non-finite or non-positive rate scales.
    pub fn parse(spec: &str) -> Result<Self, ArcadeError> {
        let lowered = spec.trim().to_lowercase();
        let bad = |reason: String| ArcadeError::InvalidParameter { reason };

        let (body, rate_scale) = match lowered.split_once('@') {
            None => (lowered.as_str(), 1.0),
            Some((body, scale)) => {
                let value = f64::from_str(scale).map_err(|_| {
                    bad(format!(
                        "model spec `{spec}`: unparsable rate scale `{scale}`"
                    ))
                })?;
                if !value.is_finite() || value <= 0.0 {
                    return Err(bad(format!(
                        "model spec `{spec}`: rate scale must be positive and finite, got {value}"
                    )));
                }
                (body, value)
            }
        };

        let (head, tail) = body.split_once('/').ok_or_else(|| {
            bad(format!(
                "model spec `{spec}`: expected `<line1|line2|facility>/<strategy>`"
            ))
        })?;
        let target = match head {
            "line1" => ModelTarget::Line {
                line: Line::Line1,
                strategy: parse_strategy(spec, tail)?,
            },
            "line2" => ModelTarget::Line {
                line: Line::Line2,
                strategy: parse_strategy(spec, tail)?,
            },
            "facility" => {
                let (s1, s2) = tail.split_once('+').ok_or_else(|| {
                    bad(format!(
                        "model spec `{spec}`: facility needs two strategies, `facility/<s1>+<s2>`"
                    ))
                })?;
                ModelTarget::Facility {
                    line1: parse_strategy(spec, s1)?,
                    line2: parse_strategy(spec, s2)?,
                }
            }
            other => {
                return Err(bad(format!(
                "model spec `{spec}`: unknown target `{other}` (expected line1, line2 or facility)"
            )))
            }
        };
        Ok(ModelSpec { target, rate_scale })
    }

    /// The canonical (lower-case) form; parsing it again yields an equal spec.
    pub fn canonical(&self) -> String {
        if self.rate_scale == 1.0 {
            self.family()
        } else {
            format!("{}@{:?}", self.family(), self.rate_scale)
        }
    }

    /// The spec without its rate scale: all scales of one family share the
    /// state space and lumping partition, differing only in transition rates.
    pub fn family(&self) -> String {
        match &self.target {
            ModelTarget::Line { line, strategy } => {
                format!("{}/{}", line.id(), strategy.label.to_lowercase())
            }
            ModelTarget::Facility { line1, line2 } => format!(
                "facility/{}+{}",
                line1.label.to_lowercase(),
                line2.label.to_lowercase()
            ),
        }
    }

    /// What this spec names.
    pub fn target(&self) -> &ModelTarget {
        &self.target
    }

    /// The failure-rate multiplier (`1.0` for the nominal model).
    pub fn rate_scale(&self) -> f64 {
        self.rate_scale
    }

    /// Whether this spec names the two-line facility.
    pub fn is_facility(&self) -> bool {
        matches!(self.target, ModelTarget::Facility { .. })
    }

    /// Builds the model and compiles it into the solver-ready
    /// [`CompiledQuotient`] artifact.
    ///
    /// # Errors
    ///
    /// Propagates model-building and composition errors.
    pub fn build_quotient(
        &self,
        options: ComposerOptions,
    ) -> Result<CompiledQuotient, ArcadeError> {
        match &self.target {
            ModelTarget::Line { line, strategy } => {
                let model = line_model_scaled(*line, strategy, self.rate_scale)?;
                CompiledQuotient::of_model(&model, options)
            }
            ModelTarget::Facility { line1, line2 } => {
                let model = facility_model_scaled(line1, line2, self.rate_scale)?;
                FacilityAnalysis::with_options(&model, options)?.compiled_quotient()
            }
        }
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl FromStr for ModelSpec {
    type Err = ArcadeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelSpec::parse(s)
    }
}

/// Parses one (lower-cased) strategy token: `ded`, `frf-K`, `fff-K`,
/// `fcfs-K`, with an optional `p` suffix on `frf`/`fff` for the preemptive
/// variants.
fn parse_strategy(spec: &str, token: &str) -> Result<StrategySpec, ArcadeError> {
    let bad = |reason: String| ArcadeError::InvalidParameter { reason };
    if token == "ded" {
        return Ok(strategies::dedicated());
    }
    let (base, preemptive) = match token.strip_suffix('p') {
        Some(b) if b.ends_with(|c: char| c.is_ascii_digit()) => (b, true),
        _ => (token, false),
    };
    let (kind, crews) = base.split_once('-').ok_or_else(|| {
        bad(format!(
            "model spec `{spec}`: unknown strategy `{token}` (expected ded, frf-K, fff-K or fcfs-K)"
        ))
    })?;
    let crews: usize = crews.parse().map_err(|_| {
        bad(format!(
            "model spec `{spec}`: unparsable crew count in strategy `{token}`"
        ))
    })?;
    if crews == 0 {
        return Err(bad(format!(
            "model spec `{spec}`: strategy `{token}` needs at least one crew"
        )));
    }
    match (kind, preemptive) {
        ("frf", false) => Ok(strategies::frf(crews)),
        ("fff", false) => Ok(strategies::fff(crews)),
        ("fcfs", false) => Ok(strategies::fcfs(crews)),
        ("frf", true) => Ok(strategies::frf_preemptive(crews)),
        ("fff", true) => Ok(strategies::fff_preemptive(crews)),
        _ => Err(bad(format!(
            "model spec `{spec}`: unknown strategy `{token}` (expected ded, frf-K, fff-K or fcfs-K)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcade_symmetry::chain_presentation_code;

    #[test]
    fn specs_parse_case_insensitively_and_round_trip() {
        for raw in [
            "line1/ded",
            "line2/frf-1",
            "line1/fff-2",
            "line2/fcfs-3",
            "line1/frf-2p",
            "facility/ded+ded",
            "facility/frf-1+fff-2",
            "line1/ded@1.05",
            "facility/ded+ded@0.5",
        ] {
            let spec = ModelSpec::parse(raw).unwrap();
            assert_eq!(spec.canonical(), raw, "canonical form is the input here");
            let reparsed = ModelSpec::parse(&spec.canonical()).unwrap();
            assert_eq!(reparsed, spec, "canonical round-trips");
        }
        let upper = ModelSpec::parse("  LINE1/DED ").unwrap();
        assert_eq!(upper.canonical(), "line1/ded");
        let one = ModelSpec::parse("line1/ded@1.0").unwrap();
        assert_eq!(one.canonical(), "line1/ded", "unit scale is dropped");
        assert_eq!(one.rate_scale(), 1.0);
    }

    #[test]
    fn families_strip_the_rate_scale() {
        let nominal = ModelSpec::parse("line2/frf-2").unwrap();
        let scaled = ModelSpec::parse("line2/frf-2@1.1").unwrap();
        assert_eq!(nominal.family(), scaled.family());
        assert_ne!(nominal.canonical(), scaled.canonical());
        assert!(!nominal.is_facility());
        assert!(ModelSpec::parse("facility/ded+ded").unwrap().is_facility());
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for raw in [
            "",
            "line1",
            "line3/ded",
            "line1/dead",
            "line1/frf",
            "line1/frf-0",
            "line1/frf-x",
            "line1/fcfs-1p",
            "line1/dedp",
            "facility/ded",
            "line1/ded@",
            "line1/ded@0",
            "line1/ded@-1",
            "line1/ded@inf",
            "line1/ded@nan",
        ] {
            let err = ModelSpec::parse(raw).unwrap_err();
            assert!(
                matches!(err, ArcadeError::InvalidParameter { .. }),
                "`{raw}` must be an InvalidParameter, got {err:?}"
            );
        }
    }

    #[test]
    fn scaled_variants_share_the_state_space_but_not_the_chain() {
        let options = ComposerOptions::default;
        let nominal = ModelSpec::parse("line2/ded")
            .unwrap()
            .build_quotient(options())
            .unwrap();
        let scaled = ModelSpec::parse("line2/ded@1.25")
            .unwrap()
            .build_quotient(options())
            .unwrap();
        assert_eq!(nominal.num_states(), scaled.num_states());
        assert_ne!(
            chain_presentation_code(nominal.chain()),
            chain_presentation_code(scaled.chain()),
            "scaling the rates must change the chain fingerprint"
        );
        assert!(!nominal.identical(&scaled));
        assert!(nominal.identical(&nominal.clone()));
    }

    #[test]
    fn facility_spec_matches_the_analysis_front_end() {
        let spec = ModelSpec::parse("facility/ded+ded").unwrap();
        let quotient = spec.build_quotient(ComposerOptions::default()).unwrap();
        let model =
            facility_model_scaled(&strategies::dedicated(), &strategies::dedicated(), 1.0).unwrap();
        let direct = FacilityAnalysis::new(&model)
            .unwrap()
            .compiled_quotient()
            .unwrap();
        assert!(quotient.identical(&direct));
    }
}
