//! The water-treatment facility model (Fig. 2 of the paper).

use arcade_core::{
    ArcadeModel, BasicComponent, Disaster, FacilityDisaster, FacilityModel, RepairUnit,
};
use fault_tree::{StructureNode, SystemStructure};
use serde::{Deserialize, Serialize};

use crate::strategies::StrategySpec;

/// Mean time to failure of a pump, in hours.
pub const PUMP_MTTF: f64 = 500.0;
/// Mean time to repair of a pump, in hours.
pub const PUMP_MTTR: f64 = 1.0;
/// Mean time to failure of a sand filter, in hours.
pub const SAND_FILTER_MTTF: f64 = 1000.0;
/// Mean time to repair of a sand filter, in hours.
pub const SAND_FILTER_MTTR: f64 = 100.0;
/// Mean time to failure of a softening tank, in hours.
pub const SOFTENER_MTTF: f64 = 2000.0;
/// Mean time to repair of a softening tank, in hours.
pub const SOFTENER_MTTR: f64 = 5.0;
/// Mean time to failure of the reservoir, in hours.
pub const RESERVOIR_MTTF: f64 = 6000.0;
/// Mean time to repair of the reservoir, in hours.
pub const RESERVOIR_MTTR: f64 = 12.0;

/// Cost per hour of a failed basic component (§5 of the paper).
pub const FAILED_COMPONENT_COST: f64 = 3.0;
/// Cost per hour of an idle repair crew (§5 of the paper).
pub const IDLE_CREW_COST: f64 = 1.0;

/// Name of the "all pumps failed" disaster (Disaster 1 of the paper).
pub const DISASTER_ALL_PUMPS: &str = "disaster-1-all-pumps";
/// Name of the Line 2 multi-component disaster (Disaster 2 of the paper):
/// two pumps, one softener, one sand filter and the reservoir have failed.
pub const DISASTER_LINE2_MIXED: &str = "disaster-2-mixed";
/// Name of the facility-wide cross-line disaster: every pump of *both* lines
/// has failed. The dynamics stay independent (each line keeps its own repair
/// unit), so the facility chain is still the Line 1 × Line 2 product, but the
/// scalar `A1 + A2 − A1·A2`-style shortcuts do not apply to measures started
/// from this state — they are evaluated on the materialised product.
pub const FACILITY_DISASTER_ALL_PUMPS: &str = "facility-all-pumps";

/// One of the two independent process lines of the facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Line {
    /// Line 1: 3 softeners, 3 sand filters, 1 reservoir, 4 pumps (3 required).
    Line1,
    /// Line 2: 3 softeners, 2 sand filters, 1 reservoir, 3 pumps (2 required).
    Line2,
}

impl Line {
    /// Number of softening tanks in this line.
    pub fn softeners(self) -> usize {
        3
    }

    /// Number of sand filters in this line.
    pub fn sand_filters(self) -> usize {
        match self {
            Line::Line1 => 3,
            Line::Line2 => 2,
        }
    }

    /// Number of pumps in this line (including the spare).
    pub fn pumps(self) -> usize {
        match self {
            Line::Line1 => 4,
            Line::Line2 => 3,
        }
    }

    /// Number of pumps required for full service.
    pub fn pumps_required(self) -> usize {
        self.pumps() - 1
    }

    /// Total number of components of this line.
    pub fn num_components(self) -> usize {
        self.softeners() + self.sand_filters() + 1 + self.pumps()
    }

    /// A short identifier (`line1` / `line2`).
    pub fn id(self) -> &'static str {
        match self {
            Line::Line1 => "line1",
            Line::Line2 => "line2",
        }
    }

    /// Both lines, in the order used by the paper's tables.
    pub fn both() -> [Line; 2] {
        [Line::Line1, Line::Line2]
    }

    /// Parses a `--line` CLI argument: `1`/`line1`, `2`/`line2` select one
    /// line, `both` selects [`Line::both`]. Returns `None` for anything else.
    pub fn from_arg(arg: &str) -> Option<Vec<Line>> {
        match arg.to_lowercase().as_str() {
            "1" | "line1" => Some(vec![Line::Line1]),
            "2" | "line2" => Some(vec![Line::Line2]),
            "both" | "all" => Some(Line::both().to_vec()),
            _ => None,
        }
    }
}

/// Component names of a line, grouped by phase:
/// `(softeners, sand filters, reservoir, pumps)`.
pub fn component_names(line: Line) -> (Vec<String>, Vec<String>, String, Vec<String>) {
    let softeners = (1..=line.softeners()).map(|i| format!("st{i}")).collect();
    let sand_filters = (1..=line.sand_filters())
        .map(|i| format!("sf{i}"))
        .collect();
    let reservoir = "res".to_string();
    let pumps = (1..=line.pumps()).map(|i| format!("p{i}")).collect();
    (softeners, sand_filters, reservoir, pumps)
}

/// The reliability block structure of a process line: the four phases in
/// series, with redundant softeners and sand filters and a pump group carrying
/// one spare.
pub fn line_structure(line: Line) -> SystemStructure {
    let (softeners, sand_filters, reservoir, pumps) = component_names(line);
    SystemStructure::new(StructureNode::series(vec![
        StructureNode::redundant(
            softeners
                .into_iter()
                .map(StructureNode::component)
                .collect(),
        ),
        StructureNode::redundant(
            sand_filters
                .into_iter()
                .map(StructureNode::component)
                .collect(),
        ),
        StructureNode::component(reservoir),
        StructureNode::required_of(
            line.pumps_required(),
            pumps.into_iter().map(StructureNode::component).collect(),
        ),
    ]))
}

/// The interchangeable-component groups ("sub-chains") of a line, in phase
/// order: softeners, sand filters, reservoir, pumps.
///
/// These are the units compositional lumping aggregates before the cross
/// product: within each group the components share rates, costs and dispatch
/// priorities and are siblings under one symmetric structure gate, so the
/// composer's family detection recovers exactly this partition for every
/// paper strategy (pinned by the tests below).
pub fn line_subchains(line: Line) -> Vec<Vec<String>> {
    let (softeners, sand_filters, reservoir, pumps) = component_names(line);
    vec![softeners, sand_filters, vec![reservoir], pumps]
}

/// Builds the Arcade model of one process line under the given repair strategy.
///
/// Each line has a single repair unit responsible for all of its components
/// (with one or more crews depending on the strategy specification), the cost
/// model of §5 and the two disasters used in the survivability analysis.
///
/// # Errors
///
/// Propagates validation errors from the model builder (none are expected for
/// the fixed facility description).
pub fn line_model(
    line: Line,
    spec: &StrategySpec,
) -> Result<ArcadeModel, arcade_core::ArcadeError> {
    line_model_with_unit(line, spec, format!("{}-ru", line.id()))
}

/// [`line_model`] with every failure rate multiplied by `rate_scale` (i.e.
/// every MTTF divided by it); repair rates, costs, structure and disasters are
/// unchanged. Scaled variants keep the exact state space and lumping partition
/// of the nominal model — only transition rates differ — which makes them
/// ideal warm-start donors for each other's stationary solves. `rate_scale`
/// of exactly `1.0` reproduces [`line_model`] bit-for-bit.
///
/// # Errors
///
/// Rejects non-finite or non-positive scales (via the component validation of
/// the resulting MTTFs) and propagates model-builder errors.
pub fn line_model_scaled(
    line: Line,
    spec: &StrategySpec,
    rate_scale: f64,
) -> Result<ArcadeModel, arcade_core::ArcadeError> {
    line_model_with_unit_scaled(line, spec, format!("{}-ru", line.id()), rate_scale)
}

/// [`line_model`] with an explicit repair-unit name. Distinct names keep
/// copies of one line independent in a facility (each copy owns its crews);
/// reusing one name couples the copies through the shared physical unit and
/// forces joint exploration.
///
/// # Errors
///
/// See [`line_model`].
pub fn line_model_with_unit(
    line: Line,
    spec: &StrategySpec,
    unit_name: impl Into<String>,
) -> Result<ArcadeModel, arcade_core::ArcadeError> {
    line_model_with_unit_scaled(line, spec, unit_name, 1.0)
}

/// [`line_model_with_unit`] with the failure-rate scale of
/// [`line_model_scaled`].
///
/// # Errors
///
/// See [`line_model_scaled`].
pub fn line_model_with_unit_scaled(
    line: Line,
    spec: &StrategySpec,
    unit_name: impl Into<String>,
    rate_scale: f64,
) -> Result<ArcadeModel, arcade_core::ArcadeError> {
    let (softeners, sand_filters, reservoir, pumps) = component_names(line);

    let mut builder = ArcadeModel::builder(
        format!("water-treatment-{}", line.id()),
        line_structure(line),
    );

    let component = |name: &str, mttf: f64, mttr: f64| {
        Ok::<_, arcade_core::ArcadeError>(
            BasicComponent::from_mttf_mttr(name, mttf / rate_scale, mttr)?
                .with_failed_cost(FAILED_COMPONENT_COST),
        )
    };
    for name in &softeners {
        builder = builder.component(component(name, SOFTENER_MTTF, SOFTENER_MTTR)?);
    }
    for name in &sand_filters {
        builder = builder.component(component(name, SAND_FILTER_MTTF, SAND_FILTER_MTTR)?);
    }
    builder = builder.component(component(&reservoir, RESERVOIR_MTTF, RESERVOIR_MTTR)?);
    for name in &pumps {
        builder = builder.component(component(name, PUMP_MTTF, PUMP_MTTR)?);
    }

    let all_names: Vec<String> = softeners
        .iter()
        .chain(sand_filters.iter())
        .chain(std::iter::once(&reservoir))
        .chain(pumps.iter())
        .cloned()
        .collect();
    let mut repair_unit = RepairUnit::new(unit_name, spec.strategy.clone(), spec.crews)?
        .responsible_for(all_names)
        .with_idle_cost(IDLE_CREW_COST);
    if spec.preemptive {
        repair_unit = repair_unit.with_preemption();
    }
    builder = builder.repair_unit(repair_unit);

    // Disaster 1: every pump of the line has failed.
    builder = builder.disaster(Disaster::new(DISASTER_ALL_PUMPS, pumps.clone())?);
    // Disaster 2 (defined for Line 2 in the paper): two pumps, one softener,
    // one sand filter and the reservoir have failed.
    if line == Line::Line2 {
        builder = builder.disaster(Disaster::new(
            DISASTER_LINE2_MIXED,
            vec![
                pumps[0].clone(),
                pumps[1].clone(),
                softeners[0].clone(),
                sand_filters[0].clone(),
                reservoir.clone(),
            ],
        )?);
    }

    builder.build()
}

/// Builds the whole water-treatment facility: both process lines (each under
/// its own repair strategy) plus the facility-wide all-pumps disaster.
///
/// The per-line repair units carry line-qualified names (`line1-ru`,
/// `line2-ru`), so the composition tree detects two independent lines and the
/// facility chain is the pure Line 1 × Line 2 product of the per-line
/// quotients — 449 × 257 blocks under FRF-1 × FRF-1.
///
/// # Errors
///
/// Propagates model-validation errors (none are expected for the fixed
/// facility description).
pub fn facility_model(
    line1: &StrategySpec,
    line2: &StrategySpec,
) -> Result<FacilityModel, arcade_core::ArcadeError> {
    facility_model_scaled(line1, line2, 1.0)
}

/// [`facility_model`] with every failure rate of both lines multiplied by
/// `rate_scale` (see [`line_model_scaled`]). A scale of exactly `1.0`
/// reproduces [`facility_model`] bit-for-bit.
///
/// # Errors
///
/// See [`line_model_scaled`].
pub fn facility_model_scaled(
    line1: &StrategySpec,
    line2: &StrategySpec,
    rate_scale: f64,
) -> Result<FacilityModel, arcade_core::ArcadeError> {
    let mut all_pumps: Vec<(String, String)> = Vec::new();
    for line in Line::both() {
        let (_, _, _, pumps) = component_names(line);
        all_pumps.extend(pumps.into_iter().map(|p| (line.id().to_string(), p)));
    }
    FacilityModel::builder("water-treatment-facility")
        .line(
            Line::Line1.id(),
            line_model_scaled(Line::Line1, line1, rate_scale)?,
        )
        .line(
            Line::Line2.id(),
            line_model_scaled(Line::Line2, line2, rate_scale)?,
        )
        .disaster(FacilityDisaster::new(
            FACILITY_DISASTER_ALL_PUMPS,
            all_pumps,
        ))
        .build()
}

/// A facility of two **identical** copies of one process line under the same
/// repair strategy — the twin whose line chains are interchangeable factors
/// of the facility product. Each copy owns its repair crews (`north-ru` /
/// `south-ru`), so the lines stay independent and the symmetry engine folds
/// the `n × n` joint tuples to `n(n+1)/2` sorted-pair orbit representatives;
/// the facility-wide all-pumps disaster keeps the survivability measures
/// well-posed on the folded chain (it hits both twins symmetrically).
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn twin_facility(
    line: Line,
    spec: &StrategySpec,
) -> Result<FacilityModel, arcade_core::ArcadeError> {
    let (_, _, _, pumps) = component_names(line);
    let mut all_pumps: Vec<(String, String)> = Vec::new();
    for copy in ["north", "south"] {
        all_pumps.extend(pumps.iter().map(|p| (copy.to_string(), p.clone())));
    }
    FacilityModel::builder(format!("twin-{}", line.id()))
        .line("north", line_model_with_unit(line, spec, "north-ru")?)
        .line("south", line_model_with_unit(line, spec, "south-ru")?)
        .disaster(FacilityDisaster::new(
            FACILITY_DISASTER_ALL_PUMPS,
            all_pumps,
        ))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies;

    #[test]
    fn line_shapes_match_the_paper() {
        assert_eq!(Line::Line1.num_components(), 11);
        assert_eq!(Line::Line2.num_components(), 9);
        assert_eq!(Line::Line1.pumps_required(), 3);
        assert_eq!(Line::Line2.pumps_required(), 2);
        assert_eq!(Line::Line1.sand_filters(), 3);
        assert_eq!(Line::Line2.sand_filters(), 2);
        assert_eq!(Line::both().len(), 2);
        assert_eq!(Line::Line1.id(), "line1");
    }

    #[test]
    fn models_validate_for_all_paper_strategies() {
        for line in Line::both() {
            for spec in strategies::paper_strategies() {
                let model = line_model(line, &spec).unwrap();
                assert_eq!(model.components().len(), line.num_components());
                assert_eq!(model.repair_units().len(), 1);
                assert_eq!(model.repair_units()[0].crews(), spec.crews);
            }
        }
    }

    #[test]
    fn component_rates_follow_fig2() {
        let model = line_model(Line::Line1, &strategies::dedicated()).unwrap();
        let pump = model.component("p1").unwrap();
        assert!((pump.mttf() - 500.0).abs() < 1e-9);
        assert!((pump.mttr() - 1.0).abs() < 1e-9);
        let sf = model.component("sf1").unwrap();
        assert!((sf.mttf() - 1000.0).abs() < 1e-9);
        assert!((sf.mttr() - 100.0).abs() < 1e-9);
        let st = model.component("st1").unwrap();
        assert!((st.mttf() - 2000.0).abs() < 1e-9);
        let res = model.component("res").unwrap();
        assert!((res.mttf() - 6000.0).abs() < 1e-9);
        assert!((res.mttr() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn disasters_are_defined() {
        let line1 = line_model(Line::Line1, &strategies::frf(1)).unwrap();
        let d1 = line1.disaster(DISASTER_ALL_PUMPS).unwrap();
        assert_eq!(d1.failed_components().len(), 4);
        assert!(line1.disaster(DISASTER_LINE2_MIXED).is_none());

        let line2 = line_model(Line::Line2, &strategies::frf(1)).unwrap();
        let d1 = line2.disaster(DISASTER_ALL_PUMPS).unwrap();
        assert_eq!(d1.failed_components().len(), 3);
        let d2 = line2.disaster(DISASTER_LINE2_MIXED).unwrap();
        assert_eq!(d2.failed_components().len(), 5);
        assert!(d2.involves("res"));
        assert!(d2.involves("st1"));
        assert!(d2.involves("sf1"));
    }

    #[test]
    fn line_subchains_match_the_detected_families() {
        // The hand-written sub-chain decomposition coincides with what the
        // composer's interchangeability detection finds, for every strategy:
        // the lump-before-compose pipeline always has the full per-phase
        // symmetry available.
        for line in Line::both() {
            let expected = line_subchains(line);
            for spec in strategies::paper_strategies() {
                let model = line_model(line, &spec).unwrap();
                assert_eq!(
                    model.component_families(),
                    expected,
                    "{} {}",
                    line.id(),
                    spec.label
                );
            }
        }
    }

    #[test]
    fn line_arguments_parse() {
        assert_eq!(Line::from_arg("1"), Some(vec![Line::Line1]));
        assert_eq!(Line::from_arg("LINE2"), Some(vec![Line::Line2]));
        assert_eq!(Line::from_arg("both"), Some(Line::both().to_vec()));
        assert_eq!(Line::from_arg("3"), None);
    }

    #[test]
    fn facility_composes_two_independent_lines() {
        let facility = facility_model(&strategies::dedicated(), &strategies::frf(1)).unwrap();
        assert_eq!(facility.lines().len(), 2);
        assert_eq!(facility.line_index("line1"), Some(0));
        let tree = facility.composition_tree();
        assert_eq!(tree.groups.len(), 2, "per-line units must not couple");
        assert!(tree.groups.iter().all(|g| !g.is_joint()));
        // The all-pumps disaster spans both lines: 4 + 3 pumps.
        let disaster = facility.disaster(FACILITY_DISASTER_ALL_PUMPS).unwrap();
        assert_eq!(disaster.components().len(), 7);
        assert!(disaster.is_cross_line());
        assert_eq!(
            tree.cross_line_disasters,
            vec![FACILITY_DISASTER_ALL_PUMPS.to_string()]
        );
    }

    #[test]
    fn service_intervals_match_the_paper() {
        let line1 = line_structure(Line::Line1).service_tree();
        assert_eq!(line1.service_intervals().len(), 3);
        let line2 = line_structure(Line::Line2).service_tree();
        assert_eq!(line2.service_intervals().len(), 4);
    }
}
