//! The water-treatment facility model (Fig. 2 of the paper).

use arcade_core::{
    ArcadeModel, BasicComponent, Disaster, FacilityDisaster, FacilityModel, RepairUnit,
};
use fault_tree::{StructureNode, SystemStructure};
use serde::{Deserialize, Serialize};

use crate::strategies::StrategySpec;

/// Mean time to failure of a pump, in hours.
pub const PUMP_MTTF: f64 = 500.0;
/// Mean time to repair of a pump, in hours.
pub const PUMP_MTTR: f64 = 1.0;
/// Mean time to failure of a sand filter, in hours.
pub const SAND_FILTER_MTTF: f64 = 1000.0;
/// Mean time to repair of a sand filter, in hours.
pub const SAND_FILTER_MTTR: f64 = 100.0;
/// Mean time to failure of a softening tank, in hours.
pub const SOFTENER_MTTF: f64 = 2000.0;
/// Mean time to repair of a softening tank, in hours.
pub const SOFTENER_MTTR: f64 = 5.0;
/// Mean time to failure of the reservoir, in hours.
pub const RESERVOIR_MTTF: f64 = 6000.0;
/// Mean time to repair of the reservoir, in hours.
pub const RESERVOIR_MTTR: f64 = 12.0;

/// Cost per hour of a failed basic component (§5 of the paper).
pub const FAILED_COMPONENT_COST: f64 = 3.0;
/// Cost per hour of an idle repair crew (§5 of the paper).
pub const IDLE_CREW_COST: f64 = 1.0;

/// Name of the "all pumps failed" disaster (Disaster 1 of the paper).
pub const DISASTER_ALL_PUMPS: &str = "disaster-1-all-pumps";
/// Name of the Line 2 multi-component disaster (Disaster 2 of the paper):
/// two pumps, one softener, one sand filter and the reservoir have failed.
pub const DISASTER_LINE2_MIXED: &str = "disaster-2-mixed";
/// Name of the facility-wide cross-line disaster: every pump of *both* lines
/// has failed. The dynamics stay independent (each line keeps its own repair
/// unit), so the facility chain is still the Line 1 × Line 2 product, but the
/// scalar `A1 + A2 − A1·A2`-style shortcuts do not apply to measures started
/// from this state — they are evaluated on the materialised product.
pub const FACILITY_DISASTER_ALL_PUMPS: &str = "facility-all-pumps";

/// One of the two independent process lines of the facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Line {
    /// Line 1: 3 softeners, 3 sand filters, 1 reservoir, 4 pumps (3 required).
    Line1,
    /// Line 2: 3 softeners, 2 sand filters, 1 reservoir, 3 pumps (2 required).
    Line2,
}

impl Line {
    /// Number of softening tanks in this line.
    pub fn softeners(self) -> usize {
        3
    }

    /// Number of sand filters in this line.
    pub fn sand_filters(self) -> usize {
        match self {
            Line::Line1 => 3,
            Line::Line2 => 2,
        }
    }

    /// Number of pumps in this line (including the spare).
    pub fn pumps(self) -> usize {
        match self {
            Line::Line1 => 4,
            Line::Line2 => 3,
        }
    }

    /// Number of pumps required for full service.
    pub fn pumps_required(self) -> usize {
        self.pumps() - 1
    }

    /// Total number of components of this line.
    pub fn num_components(self) -> usize {
        self.softeners() + self.sand_filters() + 1 + self.pumps()
    }

    /// A short identifier (`line1` / `line2`).
    pub fn id(self) -> &'static str {
        match self {
            Line::Line1 => "line1",
            Line::Line2 => "line2",
        }
    }

    /// Both lines, in the order used by the paper's tables.
    pub fn both() -> [Line; 2] {
        [Line::Line1, Line::Line2]
    }

    /// Parses a `--line` CLI argument into the paper's two lines: a thin
    /// shim over [`LineSelection::from_arg`] resolved against the two-line
    /// facility. Returns `None` for unparsable arguments *and* for
    /// selections naming lines beyond the paper's two — callers that load
    /// k-line models should use [`LineSelection`] directly, which keeps
    /// out-of-range indices distinguishable from parse failures.
    pub fn from_arg(arg: &str) -> Option<Vec<Line>> {
        let lines = LineSelection::from_arg(arg)?.resolve(2).ok()?;
        Some(lines.into_iter().map(|index| Line::both()[index]).collect())
    }
}

/// A parsed `--line` CLI argument for models with any number of lines:
/// either every line of the loaded model or an explicit list of 1-based
/// indices (`--line 3`, `--line 1,3`). Resolving against the model's line
/// count happens separately ([`LineSelection::resolve`]), so an index
/// beyond the loaded model is a reportable error instead of a silent
/// parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineSelection {
    /// Every line of the loaded model (`all` / `both`).
    All,
    /// Explicit 1-based line indices, in argument order.
    Indices(Vec<usize>),
}

impl LineSelection {
    /// Parses a `--line` argument: `all`/`both`, or a comma-separated list
    /// of indices (`3`) and line names (`line3`). Returns `None` for
    /// anything outside that grammar (including index `0`).
    pub fn from_arg(arg: &str) -> Option<LineSelection> {
        let lowered = arg.trim().to_lowercase();
        if lowered == "all" || lowered == "both" {
            return Some(LineSelection::All);
        }
        let mut indices = Vec::new();
        for token in lowered.split(',') {
            let token = token.trim();
            let digits = token.strip_prefix("line").unwrap_or(token);
            let index: usize = digits.parse().ok()?;
            if index == 0 {
                return None;
            }
            indices.push(index);
        }
        if indices.is_empty() {
            return None;
        }
        Some(LineSelection::Indices(indices))
    }

    /// Resolves the selection against a model with `num_lines` lines,
    /// yielding 0-based indices.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when an index exceeds the loaded
    /// model — the case `Line::from_arg` used to swallow as `None`.
    pub fn resolve(&self, num_lines: usize) -> Result<Vec<usize>, String> {
        match self {
            LineSelection::All => Ok((0..num_lines).collect()),
            LineSelection::Indices(indices) => indices
                .iter()
                .map(|&index| {
                    if index <= num_lines {
                        Ok(index - 1)
                    } else {
                        Err(format!(
                            "--line {index}: the loaded model has {num_lines} line(s)"
                        ))
                    }
                })
                .collect(),
        }
    }
}

/// Component names of a line, grouped by phase:
/// `(softeners, sand filters, reservoir, pumps)`.
pub fn component_names(line: Line) -> (Vec<String>, Vec<String>, String, Vec<String>) {
    let softeners = (1..=line.softeners()).map(|i| format!("st{i}")).collect();
    let sand_filters = (1..=line.sand_filters())
        .map(|i| format!("sf{i}"))
        .collect();
    let reservoir = "res".to_string();
    let pumps = (1..=line.pumps()).map(|i| format!("p{i}")).collect();
    (softeners, sand_filters, reservoir, pumps)
}

/// The reliability block structure of a process line: the four phases in
/// series, with redundant softeners and sand filters and a pump group carrying
/// one spare.
pub fn line_structure(line: Line) -> SystemStructure {
    let (softeners, sand_filters, reservoir, pumps) = component_names(line);
    SystemStructure::new(StructureNode::series(vec![
        StructureNode::redundant(
            softeners
                .into_iter()
                .map(StructureNode::component)
                .collect(),
        ),
        StructureNode::redundant(
            sand_filters
                .into_iter()
                .map(StructureNode::component)
                .collect(),
        ),
        StructureNode::component(reservoir),
        StructureNode::required_of(
            line.pumps_required(),
            pumps.into_iter().map(StructureNode::component).collect(),
        ),
    ]))
}

/// The interchangeable-component groups ("sub-chains") of a line, in phase
/// order: softeners, sand filters, reservoir, pumps.
///
/// These are the units compositional lumping aggregates before the cross
/// product: within each group the components share rates, costs and dispatch
/// priorities and are siblings under one symmetric structure gate, so the
/// composer's family detection recovers exactly this partition for every
/// paper strategy (pinned by the tests below).
pub fn line_subchains(line: Line) -> Vec<Vec<String>> {
    let (softeners, sand_filters, reservoir, pumps) = component_names(line);
    vec![softeners, sand_filters, vec![reservoir], pumps]
}

/// Builds the Arcade model of one process line under the given repair strategy.
///
/// Each line has a single repair unit responsible for all of its components
/// (with one or more crews depending on the strategy specification), the cost
/// model of §5 and the two disasters used in the survivability analysis.
///
/// # Errors
///
/// Propagates validation errors from the model builder (none are expected for
/// the fixed facility description).
pub fn line_model(
    line: Line,
    spec: &StrategySpec,
) -> Result<ArcadeModel, arcade_core::ArcadeError> {
    line_model_with_unit(line, spec, format!("{}-ru", line.id()))
}

/// [`line_model`] with every failure rate multiplied by `rate_scale` (i.e.
/// every MTTF divided by it); repair rates, costs, structure and disasters are
/// unchanged. Scaled variants keep the exact state space and lumping partition
/// of the nominal model — only transition rates differ — which makes them
/// ideal warm-start donors for each other's stationary solves. `rate_scale`
/// of exactly `1.0` reproduces [`line_model`] bit-for-bit.
///
/// # Errors
///
/// Rejects non-finite or non-positive scales (via the component validation of
/// the resulting MTTFs) and propagates model-builder errors.
pub fn line_model_scaled(
    line: Line,
    spec: &StrategySpec,
    rate_scale: f64,
) -> Result<ArcadeModel, arcade_core::ArcadeError> {
    line_model_with_unit_scaled(line, spec, format!("{}-ru", line.id()), rate_scale)
}

/// [`line_model`] with an explicit repair-unit name. Distinct names keep
/// copies of one line independent in a facility (each copy owns its crews);
/// reusing one name couples the copies through the shared physical unit and
/// forces joint exploration.
///
/// # Errors
///
/// See [`line_model`].
pub fn line_model_with_unit(
    line: Line,
    spec: &StrategySpec,
    unit_name: impl Into<String>,
) -> Result<ArcadeModel, arcade_core::ArcadeError> {
    line_model_with_unit_scaled(line, spec, unit_name, 1.0)
}

/// [`line_model_with_unit`] with the failure-rate scale of
/// [`line_model_scaled`].
///
/// # Errors
///
/// See [`line_model_scaled`].
pub fn line_model_with_unit_scaled(
    line: Line,
    spec: &StrategySpec,
    unit_name: impl Into<String>,
    rate_scale: f64,
) -> Result<ArcadeModel, arcade_core::ArcadeError> {
    let (softeners, sand_filters, reservoir, pumps) = component_names(line);

    let mut builder = ArcadeModel::builder(
        format!("water-treatment-{}", line.id()),
        line_structure(line),
    );

    let component = |name: &str, mttf: f64, mttr: f64| {
        Ok::<_, arcade_core::ArcadeError>(
            BasicComponent::from_mttf_mttr(name, mttf / rate_scale, mttr)?
                .with_failed_cost(FAILED_COMPONENT_COST),
        )
    };
    for name in &softeners {
        builder = builder.component(component(name, SOFTENER_MTTF, SOFTENER_MTTR)?);
    }
    for name in &sand_filters {
        builder = builder.component(component(name, SAND_FILTER_MTTF, SAND_FILTER_MTTR)?);
    }
    builder = builder.component(component(&reservoir, RESERVOIR_MTTF, RESERVOIR_MTTR)?);
    for name in &pumps {
        builder = builder.component(component(name, PUMP_MTTF, PUMP_MTTR)?);
    }

    let all_names: Vec<String> = softeners
        .iter()
        .chain(sand_filters.iter())
        .chain(std::iter::once(&reservoir))
        .chain(pumps.iter())
        .cloned()
        .collect();
    let mut repair_unit = RepairUnit::new(unit_name, spec.strategy.clone(), spec.crews)?
        .responsible_for(all_names)
        .with_idle_cost(IDLE_CREW_COST);
    if spec.preemptive {
        repair_unit = repair_unit.with_preemption();
    }
    builder = builder.repair_unit(repair_unit);

    // Disaster 1: every pump of the line has failed.
    builder = builder.disaster(Disaster::new(DISASTER_ALL_PUMPS, pumps.clone())?);
    // Disaster 2 (defined for Line 2 in the paper): two pumps, one softener,
    // one sand filter and the reservoir have failed.
    if line == Line::Line2 {
        builder = builder.disaster(Disaster::new(
            DISASTER_LINE2_MIXED,
            vec![
                pumps[0].clone(),
                pumps[1].clone(),
                softeners[0].clone(),
                sand_filters[0].clone(),
                reservoir.clone(),
            ],
        )?);
    }

    builder.build()
}

/// One line of a k-line facility: the line shape (component counts) plus the
/// repair strategy of its own repair unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineSpec {
    shape: Line,
    strategy: StrategySpec,
}

impl LineSpec {
    /// A line of the given shape under the given strategy.
    pub fn new(shape: Line, strategy: StrategySpec) -> Self {
        LineSpec { shape, strategy }
    }

    /// A line of the twin shape ([`Line::Line2`]) — the factor used by the
    /// homogeneous k-line banks, whose quotient is the paper's 96-block DED
    /// chain.
    pub fn twin(strategy: StrategySpec) -> Self {
        LineSpec::new(Line::Line2, strategy)
    }

    /// The line shape.
    pub fn shape(&self) -> Line {
        self.shape
    }

    /// The repair strategy.
    pub fn strategy(&self) -> &StrategySpec {
        &self.strategy
    }
}

/// Builds a facility of `specs.len()` process lines, each under its own
/// repair strategy, plus the facility-wide all-pumps disaster spanning every
/// line. This is the k-ary core every facility front end routes through;
/// [`facility_model`] is its two-line shim.
///
/// Line identities are index-based: line `i` (0-based) is named
/// `line{i+1}` and owns the repair unit `line{i+1}-ru`, so every line keeps
/// its own crews and the composition tree detects `specs.len()` independent
/// product factors. Repair-unit names do not enter the chain presentation,
/// so lines with equal shape *and* strategy compile to identical chains and
/// fold under the symmetry engine's sorted-tuple orbits — k twins of `n`
/// blocks to `C(n+k−1, k)` representatives.
///
/// # Errors
///
/// Rejects an empty spec list and propagates model-validation errors.
pub fn facility_model_k(specs: &[LineSpec]) -> Result<FacilityModel, arcade_core::ArcadeError> {
    facility_model_k_scaled(specs, 1.0)
}

/// [`facility_model_k`] with every failure rate of every line multiplied by
/// `rate_scale` (see [`line_model_scaled`]). A scale of exactly `1.0`
/// reproduces [`facility_model_k`] bit-for-bit.
///
/// # Errors
///
/// See [`facility_model_k`].
pub fn facility_model_k_scaled(
    specs: &[LineSpec],
    rate_scale: f64,
) -> Result<FacilityModel, arcade_core::ArcadeError> {
    if specs.is_empty() {
        return Err(arcade_core::ArcadeError::InvalidParameter {
            reason: "a facility needs at least one line spec".to_string(),
        });
    }
    let mut builder = FacilityModel::builder("water-treatment-facility");
    let mut all_pumps: Vec<(String, String)> = Vec::new();
    for (index, spec) in specs.iter().enumerate() {
        let name = format!("line{}", index + 1);
        let (_, _, _, pumps) = component_names(spec.shape);
        all_pumps.extend(pumps.into_iter().map(|p| (name.clone(), p)));
        builder = builder.line(
            name.clone(),
            line_model_with_unit_scaled(
                spec.shape,
                &spec.strategy,
                format!("{name}-ru"),
                rate_scale,
            )?,
        );
    }
    builder
        .disaster(FacilityDisaster::new(
            FACILITY_DISASTER_ALL_PUMPS,
            all_pumps,
        ))
        .build()
}

/// Builds the whole water-treatment facility: both process lines (each under
/// its own repair strategy) plus the facility-wide all-pumps disaster. A thin
/// two-line shim over the k-ary [`facility_model_k`].
///
/// The per-line repair units carry line-qualified names (`line1-ru`,
/// `line2-ru`), so the composition tree detects two independent lines and the
/// facility chain is the pure Line 1 × Line 2 product of the per-line
/// quotients — 449 × 257 blocks under FRF-1 × FRF-1.
///
/// # Errors
///
/// Propagates model-validation errors (none are expected for the fixed
/// facility description).
pub fn facility_model(
    line1: &StrategySpec,
    line2: &StrategySpec,
) -> Result<FacilityModel, arcade_core::ArcadeError> {
    facility_model_scaled(line1, line2, 1.0)
}

/// [`facility_model`] with every failure rate of both lines multiplied by
/// `rate_scale` (see [`line_model_scaled`]). A scale of exactly `1.0`
/// reproduces [`facility_model`] bit-for-bit.
///
/// # Errors
///
/// See [`line_model_scaled`].
pub fn facility_model_scaled(
    line1: &StrategySpec,
    line2: &StrategySpec,
    rate_scale: f64,
) -> Result<FacilityModel, arcade_core::ArcadeError> {
    facility_model_k_scaled(
        &[
            LineSpec::new(Line::Line1, line1.clone()),
            LineSpec::new(Line::Line2, line2.clone()),
        ],
        rate_scale,
    )
}

/// A facility of two **identical** copies of one process line under the same
/// repair strategy — the twin whose line chains are interchangeable factors
/// of the facility product. Each copy owns its repair crews (`north-ru` /
/// `south-ru`), so the lines stay independent and the symmetry engine folds
/// the `n × n` joint tuples to `n(n+1)/2` sorted-pair orbit representatives;
/// the facility-wide all-pumps disaster keeps the survivability measures
/// well-posed on the folded chain (it hits both twins symmetrically).
///
/// # Errors
///
/// Propagates model-validation errors.
pub fn twin_facility(
    line: Line,
    spec: &StrategySpec,
) -> Result<FacilityModel, arcade_core::ArcadeError> {
    let (_, _, _, pumps) = component_names(line);
    let mut all_pumps: Vec<(String, String)> = Vec::new();
    for copy in ["north", "south"] {
        all_pumps.extend(pumps.iter().map(|p| (copy.to_string(), p.clone())));
    }
    FacilityModel::builder(format!("twin-{}", line.id()))
        .line("north", line_model_with_unit(line, spec, "north-ru")?)
        .line("south", line_model_with_unit(line, spec, "south-ru")?)
        .disaster(FacilityDisaster::new(
            FACILITY_DISASTER_ALL_PUMPS,
            all_pumps,
        ))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies;

    #[test]
    fn line_shapes_match_the_paper() {
        assert_eq!(Line::Line1.num_components(), 11);
        assert_eq!(Line::Line2.num_components(), 9);
        assert_eq!(Line::Line1.pumps_required(), 3);
        assert_eq!(Line::Line2.pumps_required(), 2);
        assert_eq!(Line::Line1.sand_filters(), 3);
        assert_eq!(Line::Line2.sand_filters(), 2);
        assert_eq!(Line::both().len(), 2);
        assert_eq!(Line::Line1.id(), "line1");
    }

    #[test]
    fn models_validate_for_all_paper_strategies() {
        for line in Line::both() {
            for spec in strategies::paper_strategies() {
                let model = line_model(line, &spec).unwrap();
                assert_eq!(model.components().len(), line.num_components());
                assert_eq!(model.repair_units().len(), 1);
                assert_eq!(model.repair_units()[0].crews(), spec.crews);
            }
        }
    }

    #[test]
    fn component_rates_follow_fig2() {
        let model = line_model(Line::Line1, &strategies::dedicated()).unwrap();
        let pump = model.component("p1").unwrap();
        assert!((pump.mttf() - 500.0).abs() < 1e-9);
        assert!((pump.mttr() - 1.0).abs() < 1e-9);
        let sf = model.component("sf1").unwrap();
        assert!((sf.mttf() - 1000.0).abs() < 1e-9);
        assert!((sf.mttr() - 100.0).abs() < 1e-9);
        let st = model.component("st1").unwrap();
        assert!((st.mttf() - 2000.0).abs() < 1e-9);
        let res = model.component("res").unwrap();
        assert!((res.mttf() - 6000.0).abs() < 1e-9);
        assert!((res.mttr() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn disasters_are_defined() {
        let line1 = line_model(Line::Line1, &strategies::frf(1)).unwrap();
        let d1 = line1.disaster(DISASTER_ALL_PUMPS).unwrap();
        assert_eq!(d1.failed_components().len(), 4);
        assert!(line1.disaster(DISASTER_LINE2_MIXED).is_none());

        let line2 = line_model(Line::Line2, &strategies::frf(1)).unwrap();
        let d1 = line2.disaster(DISASTER_ALL_PUMPS).unwrap();
        assert_eq!(d1.failed_components().len(), 3);
        let d2 = line2.disaster(DISASTER_LINE2_MIXED).unwrap();
        assert_eq!(d2.failed_components().len(), 5);
        assert!(d2.involves("res"));
        assert!(d2.involves("st1"));
        assert!(d2.involves("sf1"));
    }

    #[test]
    fn line_subchains_match_the_detected_families() {
        // The hand-written sub-chain decomposition coincides with what the
        // composer's interchangeability detection finds, for every strategy:
        // the lump-before-compose pipeline always has the full per-phase
        // symmetry available.
        for line in Line::both() {
            let expected = line_subchains(line);
            for spec in strategies::paper_strategies() {
                let model = line_model(line, &spec).unwrap();
                assert_eq!(
                    model.component_families(),
                    expected,
                    "{} {}",
                    line.id(),
                    spec.label
                );
            }
        }
    }

    #[test]
    fn line_arguments_parse() {
        assert_eq!(Line::from_arg("1"), Some(vec![Line::Line1]));
        assert_eq!(Line::from_arg("LINE2"), Some(vec![Line::Line2]));
        assert_eq!(Line::from_arg("both"), Some(Line::both().to_vec()));
        // Beyond the paper's two lines the shim still yields None, but the
        // general selection keeps the index: `--line 3` is now resolvable
        // against any k-line model instead of being swallowed at parse time.
        assert_eq!(Line::from_arg("3"), None);
        assert_eq!(
            LineSelection::from_arg("3"),
            Some(LineSelection::Indices(vec![3]))
        );
    }

    #[test]
    fn line_selections_parse_and_resolve() {
        assert_eq!(LineSelection::from_arg("all"), Some(LineSelection::All));
        assert_eq!(LineSelection::from_arg("Both"), Some(LineSelection::All));
        assert_eq!(
            LineSelection::from_arg("line3"),
            Some(LineSelection::Indices(vec![3]))
        );
        assert_eq!(
            LineSelection::from_arg("1,3,line2"),
            Some(LineSelection::Indices(vec![1, 3, 2]))
        );
        assert_eq!(LineSelection::from_arg("0"), None);
        assert_eq!(LineSelection::from_arg("nope"), None);
        assert_eq!(LineSelection::from_arg(""), None);

        assert_eq!(LineSelection::All.resolve(4), Ok(vec![0, 1, 2, 3]));
        assert_eq!(
            LineSelection::Indices(vec![3, 1]).resolve(4),
            Ok(vec![2, 0])
        );
        let err = LineSelection::Indices(vec![3]).resolve(2).unwrap_err();
        assert!(err.contains("--line 3"), "{err}");
        assert!(err.contains("2 line(s)"), "{err}");
    }

    #[test]
    fn facility_composes_two_independent_lines() {
        let facility = facility_model(&strategies::dedicated(), &strategies::frf(1)).unwrap();
        assert_eq!(facility.lines().len(), 2);
        assert_eq!(facility.line_index("line1"), Some(0));
        let tree = facility.composition_tree();
        assert_eq!(tree.groups.len(), 2, "per-line units must not couple");
        assert!(tree.groups.iter().all(|g| !g.is_joint()));
        // The all-pumps disaster spans both lines: 4 + 3 pumps.
        let disaster = facility.disaster(FACILITY_DISASTER_ALL_PUMPS).unwrap();
        assert_eq!(disaster.components().len(), 7);
        assert!(disaster.is_cross_line());
        assert_eq!(
            tree.cross_line_disasters,
            vec![FACILITY_DISASTER_ALL_PUMPS.to_string()]
        );
    }

    #[test]
    fn k_ary_builder_generalises_the_two_line_facility() {
        // The two-line wrapper is a thin shim: same facility, line names,
        // repair units and cross-line disaster as the k-ary call.
        let spec = strategies::frf(1);
        let via_shim = facility_model(&strategies::dedicated(), &spec).unwrap();
        let via_k = facility_model_k(&[
            LineSpec::new(Line::Line1, strategies::dedicated()),
            LineSpec::new(Line::Line2, spec.clone()),
        ])
        .unwrap();
        assert_eq!(via_shim.name(), via_k.name());
        assert_eq!(via_shim.lines().len(), via_k.lines().len());
        for (a, b) in via_shim.lines().iter().zip(via_k.lines()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.model().name(), b.model().name());
        }
        assert_eq!(
            via_shim.disaster(FACILITY_DISASTER_ALL_PUMPS).unwrap(),
            via_k.disaster(FACILITY_DISASTER_ALL_PUMPS).unwrap()
        );

        // A 3-line bank: index-based identities, one independent group per
        // line, and an all-pumps disaster spanning every line.
        let bank = facility_model_k(&[
            LineSpec::twin(strategies::dedicated()),
            LineSpec::twin(strategies::dedicated()),
            LineSpec::twin(spec),
        ])
        .unwrap();
        assert_eq!(bank.lines().len(), 3);
        assert_eq!(bank.line_index("line3"), Some(2));
        let tree = bank.composition_tree();
        assert_eq!(tree.groups.len(), 3, "per-line units must not couple");
        assert!(tree.groups.iter().all(|g| !g.is_joint()));
        let disaster = bank.disaster(FACILITY_DISASTER_ALL_PUMPS).unwrap();
        assert_eq!(disaster.components().len(), 3 * Line::Line2.pumps());
        assert!(disaster.is_cross_line());

        assert!(facility_model_k(&[]).is_err(), "empty banks are rejected");
    }

    #[test]
    fn service_intervals_match_the_paper() {
        let line1 = line_structure(Line::Line1).service_tree();
        assert_eq!(line1.service_intervals().len(), 3);
        let line2 = line_structure(Line::Line2).service_tree();
        assert_eq!(line2.service_intervals().len(), 4);
    }
}
