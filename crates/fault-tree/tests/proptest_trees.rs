//! Property-based tests of fault trees, service trees and their relationships
//! on randomly generated system structures.

use std::collections::BTreeSet;

use fault_tree::{minimal_cut_sets, StructureNode, SystemStructure};
use proptest::prelude::*;

/// A random reliability block structure over a bounded component universe.
///
/// `required_of` groups are generated over leaf components only, matching their
/// documented use (a pool of identical components with spares); series and
/// redundant gates nest freely.
fn arbitrary_structure() -> impl Strategy<Value = SystemStructure> {
    let leaf = (0u32..12).prop_map(|i| StructureNode::component(format!("c{i}")));
    let spare_group = (proptest::collection::vec(0u32..12, 1..5), 1usize..4).prop_map(
        |(components, required)| {
            let children: Vec<StructureNode> = components
                .into_iter()
                .map(|i| StructureNode::component(format!("c{i}")))
                .collect();
            let required = required.min(children.len());
            StructureNode::required_of(required, children)
        },
    );
    prop_oneof![leaf, spare_group]
        .prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 1..4).prop_map(StructureNode::series),
                proptest::collection::vec(inner, 1..4).prop_map(StructureNode::redundant),
            ]
        })
        .prop_map(SystemStructure::new)
}

fn component_universe(structure: &SystemStructure) -> Vec<String> {
    structure
        .degraded_fault_tree()
        .basic_events()
        .into_iter()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn service_levels_stay_in_the_unit_interval(
        structure in arbitrary_structure(),
        failed_bits in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let components = component_universe(&structure);
        let failed: BTreeSet<&String> = components
            .iter()
            .enumerate()
            .filter(|(i, _)| failed_bits.get(*i).copied().unwrap_or(false))
            .map(|(_, c)| c)
            .collect();
        let level = structure
            .service_tree()
            .service_level(|name| if failed.contains(&name.to_string()) { 0.0 } else { 1.0 });
        prop_assert!((0.0..=1.0).contains(&level), "level {level}");
    }

    #[test]
    fn failing_more_components_never_improves_service(
        structure in arbitrary_structure(),
        failed_bits in proptest::collection::vec(any::<bool>(), 12),
        extra in 0usize..12,
    ) {
        let components = component_universe(&structure);
        if components.is_empty() {
            return Ok(());
        }
        let mut failed: BTreeSet<String> = components
            .iter()
            .enumerate()
            .filter(|(i, _)| failed_bits.get(*i).copied().unwrap_or(false))
            .map(|(_, c)| c.clone())
            .collect();
        let service = structure.service_tree();
        let level_before =
            service.service_level(|name| if failed.contains(name) { 0.0 } else { 1.0 });
        failed.insert(components[extra % components.len()].clone());
        let level_after =
            service.service_level(|name| if failed.contains(name) { 0.0 } else { 1.0 });
        prop_assert!(level_after <= level_before + 1e-12);
    }

    #[test]
    fn degraded_iff_service_below_one_and_total_failure_iff_zero(
        structure in arbitrary_structure(),
        failed_bits in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let components = component_universe(&structure);
        let failed: BTreeSet<String> = components
            .iter()
            .enumerate()
            .filter(|(i, _)| failed_bits.get(*i).copied().unwrap_or(false))
            .map(|(_, c)| c.clone())
            .collect();
        let is_failed = |name: &str| failed.contains(name);
        let level = structure
            .service_tree()
            .service_level(|name| if is_failed(name) { 0.0 } else { 1.0 });
        let degraded = structure.degraded_fault_tree().is_failed(is_failed);
        let total = structure.total_failure_fault_tree().is_failed(is_failed);
        prop_assert_eq!(degraded, level < 1.0 - 1e-12, "degraded vs level {}", level);
        prop_assert_eq!(total, level < 1e-12, "total failure vs level {}", level);
    }

    #[test]
    fn attainable_levels_contain_the_extremes_and_are_sorted(
        structure in arbitrary_structure(),
    ) {
        let levels = structure.service_tree().attainable_levels();
        prop_assert!(!levels.is_empty());
        prop_assert!(levels.windows(2).all(|w| w[0] < w[1] + 1e-15));
        prop_assert!((levels[0] - 0.0).abs() < 1e-12);
        prop_assert!((levels.last().unwrap() - 1.0).abs() < 1e-12);
        // The number of distinct intervals equals the number of positive levels.
        let intervals = structure.service_tree().service_intervals();
        prop_assert_eq!(intervals.len(), levels.iter().filter(|&&l| l > 0.0).count());
    }

    #[test]
    fn minimal_cut_sets_fail_the_tree_and_are_minimal(structure in arbitrary_structure()) {
        let tree = structure.total_failure_fault_tree();
        let cut_sets = minimal_cut_sets(&tree);
        prop_assert!(!cut_sets.is_empty());
        for cut in cut_sets.iter().take(32) {
            prop_assert!(tree.is_failed(|name| cut.contains(name)));
            for removed in cut.iter() {
                prop_assert!(
                    !tree.is_failed(|name| cut.contains(name) && name != removed),
                    "cut {cut:?} is not minimal"
                );
            }
        }
    }

    #[test]
    fn dual_service_tree_agrees_with_direct_tree_on_total_failure(
        structure in arbitrary_structure(),
        failed_bits in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let components = component_universe(&structure);
        let failed: BTreeSet<String> = components
            .iter()
            .enumerate()
            .filter(|(i, _)| failed_bits.get(*i).copied().unwrap_or(false))
            .map(|(_, c)| c.clone())
            .collect();
        let supply = |name: &str| if failed.contains(name) { 0.0 } else { 1.0 };
        let direct = structure.service_tree().service_level(supply);
        let dual = structure.total_failure_fault_tree().to_service_tree().service_level(supply);
        prop_assert_eq!(direct < 1e-12, dual < 1e-12);
    }
}
