//! Fault trees and quantitative service trees.
//!
//! Arcade uses a *fault tree* to define when a system is down: an AND/OR/K-of-N
//! expression over basic events, each basic event being the failure of one
//! component. The DSN 2010 water-treatment paper additionally derives a
//! *quantitative service tree* from the fault tree by swapping AND and OR gates
//! and interpreting them quantitatively (`ANDq` = minimum of its inputs,
//! `ORq` = average of its inputs), which maps every system state to a service
//! level in `[0, 1]`.
//!
//! This crate provides both structures, boolean and quantitative evaluation,
//! the fault-to-service dualisation, enumeration of attainable service levels
//! (the `X1, X2, ...` intervals of the paper) and minimal cut sets.
//!
//! # Example
//!
//! A process line that stops delivering water when its reservoir fails or when
//! all three of its redundant softeners fail:
//!
//! ```
//! use fault_tree::{FaultTree, FaultNode};
//!
//! let tree = FaultTree::new(FaultNode::or(vec![
//!     FaultNode::basic("reservoir"),
//!     FaultNode::and(vec![
//!         FaultNode::basic("softener-1"),
//!         FaultNode::basic("softener-2"),
//!         FaultNode::basic("softener-3"),
//!     ]),
//! ]));
//!
//! // Only softener-1 failed: some service is still delivered.
//! assert!(!tree.is_failed(|name| name == "softener-1"));
//! // Reservoir failed: the line is down.
//! assert!(tree.is_failed(|name| name == "reservoir"));
//!
//! // Quantitative service: with one softener down the service level drops to 2/3.
//! let service = tree.to_service_tree();
//! let level = service.service_level(|name| if name == "softener-1" { 0.0 } else { 1.0 });
//! assert!(level < 1.0 && level > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cutsets;
pub mod error;
pub mod fault;
pub mod service;
pub mod structure;

pub use cutsets::minimal_cut_sets;
pub use error::FaultTreeError;
pub use fault::{FaultNode, FaultTree};
pub use service::{ServiceNode, ServiceTree};
pub use structure::{StructureNode, SystemStructure};
