//! Reliability block structure of a system.
//!
//! The water-treatment paper uses two different state classifications derived
//! from the same physical architecture:
//!
//! * availability and reliability call a line *down* as soon as it is **not
//!   fully operational** (one softener failure already counts);
//! * quantitative survivability measures the **fraction of service** still
//!   delivered, where redundant components degrade gracefully and series
//!   phases bottleneck the line.
//!
//! Both classifications, as well as the AND/OR fault tree and its quantitative
//! service-tree dual described in the paper, follow mechanically from a single
//! positive description of the architecture: which components operate in
//! series, which are redundant, and which groups carry spares. That positive
//! description is a [`StructureNode`]; this module derives the three views from
//! it.

use serde::{Deserialize, Serialize};

use crate::fault::{FaultNode, FaultTree};
use crate::service::{ServiceNode, ServiceTree};

/// A node of the reliability block structure of a system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StructureNode {
    /// A single component, referenced by name.
    Component(String),
    /// All children are needed; there is no shared capacity between them
    /// (e.g. the successive treatment phases of a process line).
    Series(Vec<StructureNode>),
    /// Redundant children sharing the load: full service requires all of them,
    /// but each working child still contributes its share of the capacity.
    Redundant(Vec<StructureNode>),
    /// A group of identical children of which `required` are needed for full
    /// service; the rest are spares. Spares keep the service level unchanged
    /// while unused, so they do not add service intervals.
    ///
    /// The children are intended to be individual components (as in the pump
    /// groups of the water-treatment facility). Nesting gates below a
    /// `RequiredOf` is allowed, but then the boolean fault trees count
    /// *degraded children* while the service tree sums *fractional
    /// capacities*, so the two views may classify partially-degraded groups
    /// differently.
    RequiredOf {
        /// Number of simultaneously working children needed for full service.
        required: usize,
        /// Child nodes (their count minus `required` is the number of spares).
        children: Vec<StructureNode>,
    },
}

impl StructureNode {
    /// Creates a component leaf.
    pub fn component(name: impl Into<String>) -> Self {
        StructureNode::Component(name.into())
    }

    /// Creates a series composition.
    pub fn series(children: Vec<StructureNode>) -> Self {
        StructureNode::Series(children)
    }

    /// Creates a redundant (load-sharing) group.
    pub fn redundant(children: Vec<StructureNode>) -> Self {
        StructureNode::Redundant(children)
    }

    /// Creates a `required`-out-of-`n` group with spares.
    pub fn required_of(required: usize, children: Vec<StructureNode>) -> Self {
        StructureNode::RequiredOf { required, children }
    }

    /// Fault tree for "the system is not fully operational".
    ///
    /// Any failure inside a series or redundant group degrades the system; in a
    /// `required`-of-`n` group the spares absorb the first `n - required`
    /// failures.
    pub fn degraded_fault_node(&self) -> FaultNode {
        match self {
            StructureNode::Component(name) => FaultNode::basic(name.clone()),
            StructureNode::Series(children) | StructureNode::Redundant(children) => FaultNode::or(
                children
                    .iter()
                    .map(StructureNode::degraded_fault_node)
                    .collect(),
            ),
            StructureNode::RequiredOf { required, children } => {
                let spares = children.len().saturating_sub(*required);
                FaultNode::vote(
                    spares + 1,
                    children
                        .iter()
                        .map(StructureNode::degraded_fault_node)
                        .collect(),
                )
            }
        }
    }

    /// Fault tree for "the system delivers no service at all".
    ///
    /// Series phases fail as soon as one phase delivers nothing; redundant and
    /// spare groups only fail once every member has failed. This is the
    /// AND/OR fault tree whose gate-swapped dual is the quantitative service
    /// tree of the paper.
    pub fn total_failure_fault_node(&self) -> FaultNode {
        match self {
            StructureNode::Component(name) => FaultNode::basic(name.clone()),
            StructureNode::Series(children) => FaultNode::or(
                children
                    .iter()
                    .map(StructureNode::total_failure_fault_node)
                    .collect(),
            ),
            StructureNode::Redundant(children) => FaultNode::and(
                children
                    .iter()
                    .map(StructureNode::total_failure_fault_node)
                    .collect(),
            ),
            StructureNode::RequiredOf { children, .. } => FaultNode::vote(
                children.len(),
                children
                    .iter()
                    .map(StructureNode::total_failure_fault_node)
                    .collect(),
            ),
        }
    }

    /// Quantitative service tree node for this structure.
    pub fn service_node(&self) -> ServiceNode {
        match self {
            StructureNode::Component(name) => ServiceNode::Basic(name.clone()),
            StructureNode::Series(children) => {
                ServiceNode::Min(children.iter().map(StructureNode::service_node).collect())
            }
            StructureNode::Redundant(children) => {
                ServiceNode::Mean(children.iter().map(StructureNode::service_node).collect())
            }
            StructureNode::RequiredOf { required, children } => ServiceNode::Ratio {
                required: *required,
                children: children.iter().map(StructureNode::service_node).collect(),
            },
        }
    }
}

/// The reliability block structure of a complete system, with conversions to
/// the derived fault and service trees.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemStructure {
    root: StructureNode,
}

impl SystemStructure {
    /// Creates a system structure from its root node.
    pub fn new(root: StructureNode) -> Self {
        SystemStructure { root }
    }

    /// The root node.
    pub fn root(&self) -> &StructureNode {
        &self.root
    }

    /// Fault tree for "not fully operational" (used by availability and
    /// reliability in the paper).
    pub fn degraded_fault_tree(&self) -> FaultTree {
        FaultTree::new(self.root.degraded_fault_node())
    }

    /// Fault tree for "no service at all".
    pub fn total_failure_fault_tree(&self) -> FaultTree {
        FaultTree::new(self.root.total_failure_fault_node())
    }

    /// Quantitative service tree (used by survivability in the paper).
    pub fn service_tree(&self) -> ServiceTree {
        ServiceTree::new(self.root.service_node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line 1 of the water-treatment facility: 3 softeners, 3 sand filters,
    /// 1 reservoir and 4 pumps of which 3 are required.
    fn line1() -> SystemStructure {
        SystemStructure::new(StructureNode::series(vec![
            StructureNode::redundant(
                (1..=3)
                    .map(|i| StructureNode::component(format!("st{i}")))
                    .collect(),
            ),
            StructureNode::redundant(
                (1..=3)
                    .map(|i| StructureNode::component(format!("sf{i}")))
                    .collect(),
            ),
            StructureNode::component("res"),
            StructureNode::required_of(
                3,
                (1..=4)
                    .map(|i| StructureNode::component(format!("p{i}")))
                    .collect(),
            ),
        ]))
    }

    fn failed<'a>(down: &'a [&'a str]) -> impl Fn(&str) -> bool + 'a {
        move |name: &str| down.contains(&name)
    }

    #[test]
    fn degraded_tree_declares_down_on_any_core_failure() {
        let tree = line1().degraded_fault_tree();
        assert!(!tree.is_failed(failed(&[])));
        assert!(tree.is_failed(failed(&["st1"])));
        assert!(tree.is_failed(failed(&["sf2"])));
        assert!(tree.is_failed(failed(&["res"])));
        // One pump is a spare.
        assert!(!tree.is_failed(failed(&["p1"])));
        assert!(tree.is_failed(failed(&["p1", "p4"])));
    }

    #[test]
    fn total_failure_tree_requires_whole_groups_to_fail() {
        let tree = line1().total_failure_fault_tree();
        assert!(!tree.is_failed(failed(&["st1", "sf1", "p1", "p2", "p3"])));
        assert!(tree.is_failed(failed(&["st1", "st2", "st3"])));
        assert!(tree.is_failed(failed(&["res"])));
        assert!(tree.is_failed(failed(&["p1", "p2", "p3", "p4"])));
    }

    #[test]
    fn service_tree_matches_paper_intervals_for_line1() {
        let service = line1().service_tree();
        let levels = service.attainable_levels();
        let expected = [0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0];
        assert_eq!(levels.len(), expected.len(), "{levels:?}");
        for (got, want) in levels.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn service_tree_matches_paper_intervals_for_line2() {
        // Line 2: 3 softeners, 2 sand filters, 1 reservoir, 3 pumps (2 required).
        let line2 = SystemStructure::new(StructureNode::series(vec![
            StructureNode::redundant(
                (1..=3)
                    .map(|i| StructureNode::component(format!("st{i}")))
                    .collect(),
            ),
            StructureNode::redundant(
                (1..=2)
                    .map(|i| StructureNode::component(format!("sf{i}")))
                    .collect(),
            ),
            StructureNode::component("res"),
            StructureNode::required_of(
                2,
                (1..=3)
                    .map(|i| StructureNode::component(format!("p{i}")))
                    .collect(),
            ),
        ]));
        let levels = line2.service_tree().attainable_levels();
        let expected = [0.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0];
        assert_eq!(levels.len(), expected.len(), "{levels:?}");
        for (got, want) in levels.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
        assert_eq!(line2.service_tree().service_intervals().len(), 4);
    }

    #[test]
    fn degraded_down_iff_service_below_one() {
        // The two views agree: "not fully operational" is exactly "service < 1".
        let structure = line1();
        let degraded = structure.degraded_fault_tree();
        let service = structure.service_tree();
        let components: Vec<String> = degraded.basic_events().into_iter().collect();
        // Exhaustively check all subsets of failed components (2^11 = 2048).
        for mask in 0..(1u32 << components.len()) {
            let down: Vec<&str> = components
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, n)| n.as_str())
                .collect();
            let is_degraded = degraded.is_failed(|n| down.contains(&n));
            let level = service.service_level(|n| if down.contains(&n) { 0.0 } else { 1.0 });
            assert_eq!(is_degraded, level < 1.0 - 1e-12, "mask {mask:b}");
        }
    }

    #[test]
    fn total_failure_iff_service_zero() {
        let structure = line1();
        let total = structure.total_failure_fault_tree();
        let service = structure.service_tree();
        let components: Vec<String> = total.basic_events().into_iter().collect();
        for mask in 0..(1u32 << components.len()) {
            let down: Vec<&str> = components
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, n)| n.as_str())
                .collect();
            let is_total = total.is_failed(|n| down.contains(&n));
            let level = service.service_level(|n| if down.contains(&n) { 0.0 } else { 1.0 });
            assert_eq!(is_total, level < 1e-12, "mask {mask:b}");
        }
    }

    #[test]
    fn dualising_the_total_failure_tree_agrees_for_pure_and_or_structures() {
        // The paper's construction swaps AND and OR gates of the fault tree. For
        // structures without spare groups the gate-swapped dual coincides with
        // the directly constructed service tree on every state.
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::redundant(
                (1..=3)
                    .map(|i| StructureNode::component(format!("st{i}")))
                    .collect(),
            ),
            StructureNode::redundant(
                (1..=2)
                    .map(|i| StructureNode::component(format!("sf{i}")))
                    .collect(),
            ),
            StructureNode::component("res"),
        ]));
        let via_dual = structure.total_failure_fault_tree().to_service_tree();
        let direct = structure.service_tree();
        let components: Vec<String> = structure
            .degraded_fault_tree()
            .basic_events()
            .into_iter()
            .collect();
        for mask in 0..(1u32 << components.len()) {
            let down: Vec<&str> = components
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, n)| n.as_str())
                .collect();
            let supply = |n: &str| if down.contains(&n) { 0.0 } else { 1.0 };
            let a = via_dual.service_level(supply);
            let b = direct.service_level(supply);
            assert!((a - b).abs() < 1e-9, "mask {mask:b}: dual {a} direct {b}");
        }
    }

    #[test]
    fn dual_and_direct_service_trees_agree_on_total_failure() {
        // With spare groups the dual only has to agree on whether *any* service
        // is delivered (the spare threshold differs quantitatively).
        let structure = line1();
        let via_dual = structure.total_failure_fault_tree().to_service_tree();
        let direct = structure.service_tree();
        let components: Vec<String> = structure
            .degraded_fault_tree()
            .basic_events()
            .into_iter()
            .collect();
        for mask in 0..(1u32 << components.len()) {
            let down: Vec<&str> = components
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, n)| n.as_str())
                .collect();
            let supply = |n: &str| if down.contains(&n) { 0.0 } else { 1.0 };
            let a = via_dual.service_level(supply);
            let b = direct.service_level(supply);
            assert_eq!(a < 1e-12, b < 1e-12, "mask {mask:b}: dual {a} direct {b}");
        }
    }
}
