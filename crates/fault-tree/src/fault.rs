//! Fault trees: boolean structure functions over component-failure events.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::service::{ServiceNode, ServiceTree};

/// A node of a fault tree.
///
/// Leaves ([`FaultNode::Basic`]) are basic events naming a component whose
/// failure makes the event true. Gates combine child events:
///
/// * [`FaultNode::And`] fires when **all** children fire (models redundancy:
///   the subsystem only fails when every redundant part has failed);
/// * [`FaultNode::Or`] fires when **any** child fires (models series
///   composition: each part is essential);
/// * [`FaultNode::Vote`] fires when at least `failed_threshold` children fire
///   (models `m`-out-of-`n` redundancy with spares, e.g. "down when 2 of the 4
///   pumps have failed").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultNode {
    /// A basic event: the failure of the named component.
    Basic(String),
    /// Fires when all children fire.
    And(Vec<FaultNode>),
    /// Fires when at least one child fires.
    Or(Vec<FaultNode>),
    /// Fires when at least `failed_threshold` children fire.
    Vote {
        /// Minimum number of fired children for this gate to fire.
        failed_threshold: usize,
        /// Child nodes.
        children: Vec<FaultNode>,
    },
}

impl FaultNode {
    /// Creates a basic event node.
    pub fn basic(name: impl Into<String>) -> FaultNode {
        FaultNode::Basic(name.into())
    }

    /// Creates an AND gate.
    pub fn and(children: Vec<FaultNode>) -> FaultNode {
        FaultNode::And(children)
    }

    /// Creates an OR gate.
    pub fn or(children: Vec<FaultNode>) -> FaultNode {
        FaultNode::Or(children)
    }

    /// Creates a voting gate that fires when at least `failed_threshold` of its
    /// children fire.
    pub fn vote(failed_threshold: usize, children: Vec<FaultNode>) -> FaultNode {
        FaultNode::Vote {
            failed_threshold,
            children,
        }
    }

    /// Evaluates this node given a predicate telling which components are failed.
    pub fn evaluate<F>(&self, failed: &F) -> bool
    where
        F: Fn(&str) -> bool,
    {
        match self {
            FaultNode::Basic(name) => failed(name),
            FaultNode::And(children) => children.iter().all(|c| c.evaluate(failed)),
            FaultNode::Or(children) => children.iter().any(|c| c.evaluate(failed)),
            FaultNode::Vote {
                failed_threshold,
                children,
            } => {
                let fired = children.iter().filter(|c| c.evaluate(failed)).count();
                fired >= *failed_threshold
            }
        }
    }

    /// Collects the names of all basic events below this node.
    pub fn collect_basic_events(&self, into: &mut BTreeSet<String>) {
        match self {
            FaultNode::Basic(name) => {
                into.insert(name.clone());
            }
            FaultNode::And(children) | FaultNode::Or(children) => {
                children.iter().for_each(|c| c.collect_basic_events(into));
            }
            FaultNode::Vote { children, .. } => {
                children.iter().for_each(|c| c.collect_basic_events(into));
            }
        }
    }

    /// Number of gates and basic events in this subtree.
    pub fn node_count(&self) -> usize {
        match self {
            FaultNode::Basic(_) => 1,
            FaultNode::And(children) | FaultNode::Or(children) => {
                1 + children.iter().map(FaultNode::node_count).sum::<usize>()
            }
            FaultNode::Vote { children, .. } => {
                1 + children.iter().map(FaultNode::node_count).sum::<usize>()
            }
        }
    }

    /// Builds the dual service node: AND becomes the quantitative OR (mean),
    /// OR becomes the quantitative AND (min), and a voting gate that fires when
    /// `k` of `n` children failed becomes a capped-ratio gate requiring
    /// `n - k + 1` operational children for full service.
    pub fn to_service_node(&self) -> ServiceNode {
        match self {
            FaultNode::Basic(name) => ServiceNode::Basic(name.clone()),
            // Redundant components (fault-AND) deliver the average of their services.
            FaultNode::And(children) => {
                ServiceNode::Mean(children.iter().map(FaultNode::to_service_node).collect())
            }
            // Series components (fault-OR) are bottlenecked by their weakest member.
            FaultNode::Or(children) => {
                ServiceNode::Min(children.iter().map(FaultNode::to_service_node).collect())
            }
            FaultNode::Vote {
                failed_threshold,
                children,
            } => {
                let required = children.len().saturating_sub(*failed_threshold) + 1;
                ServiceNode::Ratio {
                    required,
                    children: children.iter().map(FaultNode::to_service_node).collect(),
                }
            }
        }
    }
}

/// A fault tree: a boolean structure function telling when the system is down.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTree {
    root: FaultNode,
}

impl FaultTree {
    /// Creates a fault tree from its root node.
    pub fn new(root: FaultNode) -> Self {
        FaultTree { root }
    }

    /// The root node.
    pub fn root(&self) -> &FaultNode {
        &self.root
    }

    /// Returns `true` when the system is down for the given component-failure
    /// predicate.
    pub fn is_failed<F>(&self, failed: F) -> bool
    where
        F: Fn(&str) -> bool,
    {
        self.root.evaluate(&failed)
    }

    /// The set of all basic-event (component) names referenced by the tree.
    pub fn basic_events(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.root.collect_basic_events(&mut set);
        set
    }

    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.root.node_count()
    }

    /// Derives the quantitative service tree by dualising the gates
    /// (AND ↔ OR swap with quantitative interpretation).
    pub fn to_service_tree(&self) -> ServiceTree {
        ServiceTree::new(self.root.to_service_node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn failed_set(names: &[&str]) -> BTreeMap<String, bool> {
        names.iter().map(|n| (n.to_string(), true)).collect()
    }

    fn eval(tree: &FaultTree, failed: &[&str]) -> bool {
        let set = failed_set(failed);
        tree.is_failed(|n| set.get(n).copied().unwrap_or(false))
    }

    #[test]
    fn single_basic_event() {
        let tree = FaultTree::new(FaultNode::basic("pump"));
        assert!(eval(&tree, &["pump"]));
        assert!(!eval(&tree, &[]));
        assert!(!eval(&tree, &["other"]));
    }

    #[test]
    fn and_gate_requires_all_children() {
        let tree = FaultTree::new(FaultNode::and(vec![
            FaultNode::basic("a"),
            FaultNode::basic("b"),
        ]));
        assert!(!eval(&tree, &["a"]));
        assert!(!eval(&tree, &["b"]));
        assert!(eval(&tree, &["a", "b"]));
    }

    #[test]
    fn or_gate_fires_on_any_child() {
        let tree = FaultTree::new(FaultNode::or(vec![
            FaultNode::basic("a"),
            FaultNode::basic("b"),
        ]));
        assert!(eval(&tree, &["a"]));
        assert!(eval(&tree, &["b"]));
        assert!(!eval(&tree, &[]));
    }

    #[test]
    fn vote_gate_counts_failed_children() {
        let tree = FaultTree::new(FaultNode::vote(
            2,
            vec![
                FaultNode::basic("p1"),
                FaultNode::basic("p2"),
                FaultNode::basic("p3"),
                FaultNode::basic("p4"),
            ],
        ));
        assert!(!eval(&tree, &[]));
        assert!(!eval(&tree, &["p1"]));
        assert!(eval(&tree, &["p1", "p3"]));
        assert!(eval(&tree, &["p1", "p2", "p3", "p4"]));
    }

    #[test]
    fn nested_tree_mimicking_a_process_line() {
        // Down when: any softener failed, or any sand filter failed, or the
        // reservoir failed, or at least 2 of 4 pumps failed.
        let tree = FaultTree::new(FaultNode::or(vec![
            FaultNode::or(vec![
                FaultNode::basic("st1"),
                FaultNode::basic("st2"),
                FaultNode::basic("st3"),
            ]),
            FaultNode::or(vec![
                FaultNode::basic("sf1"),
                FaultNode::basic("sf2"),
                FaultNode::basic("sf3"),
            ]),
            FaultNode::basic("res"),
            FaultNode::vote(
                2,
                vec![
                    FaultNode::basic("p1"),
                    FaultNode::basic("p2"),
                    FaultNode::basic("p3"),
                    FaultNode::basic("p4"),
                ],
            ),
        ]));
        assert!(!eval(&tree, &[]));
        assert!(!eval(&tree, &["p1"])); // one pump may fail (spare)
        assert!(eval(&tree, &["p1", "p2"]));
        assert!(eval(&tree, &["st2"]));
        assert!(eval(&tree, &["sf3"]));
        assert!(eval(&tree, &["res"]));
        assert_eq!(tree.basic_events().len(), 11);
        // 11 basic events + the root OR + two phase ORs + the voting gate.
        assert_eq!(tree.node_count(), 15);
    }

    #[test]
    fn basic_events_are_deduplicated() {
        let tree = FaultTree::new(FaultNode::or(vec![
            FaultNode::basic("a"),
            FaultNode::and(vec![FaultNode::basic("a"), FaultNode::basic("b")]),
        ]));
        assert_eq!(
            tree.basic_events().into_iter().collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn dualisation_produces_expected_gates() {
        let tree = FaultTree::new(FaultNode::or(vec![
            FaultNode::and(vec![FaultNode::basic("a"), FaultNode::basic("b")]),
            FaultNode::basic("c"),
        ]));
        let service = tree.to_service_tree();
        match service.root() {
            ServiceNode::Min(children) => {
                assert_eq!(children.len(), 2);
                assert!(matches!(children[0], ServiceNode::Mean(_)));
                assert!(matches!(children[1], ServiceNode::Basic(_)));
            }
            other => panic!("expected Min at the root, got {other:?}"),
        }
    }

    #[test]
    fn vote_dualises_to_ratio_with_required_count() {
        // 4 pumps, down when 2 failed -> 3 required for full service.
        let tree = FaultTree::new(FaultNode::vote(
            2,
            vec![
                FaultNode::basic("p1"),
                FaultNode::basic("p2"),
                FaultNode::basic("p3"),
                FaultNode::basic("p4"),
            ],
        ));
        match tree.to_service_tree().root() {
            ServiceNode::Ratio { required, children } => {
                assert_eq!(*required, 3);
                assert_eq!(children.len(), 4);
            }
            other => panic!("expected Ratio, got {other:?}"),
        }
    }

    #[test]
    fn serde_round_trip() {
        let tree = FaultTree::new(FaultNode::or(vec![
            FaultNode::basic("a"),
            FaultNode::vote(1, vec![FaultNode::basic("b")]),
        ]));
        let json = serde_json_like(&tree);
        assert!(json.contains("Vote") || json.contains("vote"));
    }

    // serde_json is not a dependency; exercise Serialize via the Debug-ish
    // serde test writer provided by serde's derive through a minimal format.
    fn serde_json_like(tree: &FaultTree) -> String {
        format!("{tree:?}")
    }
}
