//! Minimal cut sets of a fault tree.
//!
//! A cut set is a set of basic events whose joint occurrence makes the top
//! event fire; a cut set is minimal if no proper subset is itself a cut set.
//! Minimal cut sets are the classical qualitative importance analysis for
//! fault trees and a convenient cross-check for the boolean structure function.

use std::collections::BTreeSet;

use crate::fault::{FaultNode, FaultTree};

/// Computes the minimal cut sets of a fault tree.
///
/// The expansion is a straightforward MOCUS-style top-down rewrite: OR gates
/// split into alternative cut sets, AND gates merge the cut sets of their
/// children, and voting gates are expanded into the disjunction of all
/// threshold-sized child combinations. Non-minimal sets are removed at the end.
///
/// The running time is exponential in the tree size in the worst case, which is
/// fine for the architecture-level trees Arcade deals with (tens of components).
pub fn minimal_cut_sets(tree: &FaultTree) -> Vec<BTreeSet<String>> {
    let mut sets = cut_sets(tree.root());
    remove_non_minimal(&mut sets);
    sets.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
    sets
}

fn cut_sets(node: &FaultNode) -> Vec<BTreeSet<String>> {
    match node {
        FaultNode::Basic(name) => {
            vec![BTreeSet::from([name.clone()])]
        }
        FaultNode::Or(children) => children.iter().flat_map(cut_sets).collect(),
        FaultNode::And(children) => {
            let mut acc: Vec<BTreeSet<String>> = vec![BTreeSet::new()];
            for child in children {
                let child_sets = cut_sets(child);
                let mut next = Vec::with_capacity(acc.len() * child_sets.len());
                for base in &acc {
                    for cs in &child_sets {
                        let mut merged = base.clone();
                        merged.extend(cs.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            acc
        }
        FaultNode::Vote {
            failed_threshold,
            children,
        } => {
            let k = (*failed_threshold).min(children.len()).max(1);
            let mut out = Vec::new();
            for combo in combinations(children.len(), k) {
                let selected: Vec<FaultNode> =
                    combo.into_iter().map(|i| children[i].clone()).collect();
                out.extend(cut_sets(&FaultNode::And(selected)));
            }
            out
        }
    }
}

fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn recurse(
        start: usize,
        n: usize,
        k: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            recurse(i + 1, n, k, current, out);
            current.pop();
        }
    }
    recurse(0, n, k, &mut current, &mut out);
    out
}

fn remove_non_minimal(sets: &mut Vec<BTreeSet<String>>) {
    sets.sort_by_key(BTreeSet::len);
    sets.dedup();
    let mut keep: Vec<BTreeSet<String>> = Vec::with_capacity(sets.len());
    'outer: for set in sets.iter() {
        for existing in &keep {
            if existing.is_subset(set) {
                continue 'outer;
            }
        }
        keep.push(set.clone());
    }
    *sets = keep;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_basic_event() {
        let tree = FaultTree::new(FaultNode::basic("a"));
        assert_eq!(minimal_cut_sets(&tree), vec![set(&["a"])]);
    }

    #[test]
    fn or_of_basics_yields_singletons() {
        let tree = FaultTree::new(FaultNode::or(vec![
            FaultNode::basic("a"),
            FaultNode::basic("b"),
        ]));
        assert_eq!(minimal_cut_sets(&tree), vec![set(&["a"]), set(&["b"])]);
    }

    #[test]
    fn and_of_basics_yields_one_pair() {
        let tree = FaultTree::new(FaultNode::and(vec![
            FaultNode::basic("a"),
            FaultNode::basic("b"),
        ]));
        assert_eq!(minimal_cut_sets(&tree), vec![set(&["a", "b"])]);
    }

    #[test]
    fn vote_expands_to_combinations() {
        let tree = FaultTree::new(FaultNode::vote(
            2,
            vec![
                FaultNode::basic("a"),
                FaultNode::basic("b"),
                FaultNode::basic("c"),
            ],
        ));
        let sets = minimal_cut_sets(&tree);
        assert_eq!(sets.len(), 3);
        assert!(sets.contains(&set(&["a", "b"])));
        assert!(sets.contains(&set(&["a", "c"])));
        assert!(sets.contains(&set(&["b", "c"])));
    }

    #[test]
    fn non_minimal_sets_are_removed() {
        // a OR (a AND b): the pair {a, b} is absorbed by {a}.
        let tree = FaultTree::new(FaultNode::or(vec![
            FaultNode::basic("a"),
            FaultNode::and(vec![FaultNode::basic("a"), FaultNode::basic("b")]),
        ]));
        assert_eq!(minimal_cut_sets(&tree), vec![set(&["a"])]);
    }

    #[test]
    fn cut_sets_imply_tree_failure() {
        let tree = FaultTree::new(FaultNode::or(vec![
            FaultNode::and(vec![FaultNode::basic("a"), FaultNode::basic("b")]),
            FaultNode::vote(
                2,
                vec![
                    FaultNode::basic("p1"),
                    FaultNode::basic("p2"),
                    FaultNode::basic("p3"),
                ],
            ),
        ]));
        for cut in minimal_cut_sets(&tree) {
            assert!(
                tree.is_failed(|n| cut.contains(n)),
                "cut set {cut:?} should fail the tree"
            );
            // Minimality: removing any element keeps the system up.
            for excluded in &cut {
                assert!(
                    !tree.is_failed(|n| cut.contains(n) && n != excluded),
                    "cut set {cut:?} is not minimal (removing {excluded} still fails)"
                );
            }
        }
    }

    #[test]
    fn combinations_helper_counts() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(3, 3).len(), 1);
        assert_eq!(combinations(3, 1).len(), 3);
    }
}
