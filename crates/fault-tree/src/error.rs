//! Error type for fault-tree construction and evaluation.

use std::fmt;

/// Errors produced when building or evaluating fault/service trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTreeError {
    /// A gate was constructed without children.
    EmptyGate {
        /// The kind of gate ("and", "or", "vote").
        gate: &'static str,
    },
    /// A voting gate threshold is out of the valid range `1..=n`.
    InvalidVoteThreshold {
        /// The requested threshold.
        threshold: usize,
        /// The number of children.
        children: usize,
    },
    /// A referenced basic event does not exist in the evaluation context.
    UnknownBasicEvent {
        /// Name of the missing event.
        name: String,
    },
}

impl fmt::Display for FaultTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTreeError::EmptyGate { gate } => write!(f, "{gate} gate has no children"),
            FaultTreeError::InvalidVoteThreshold {
                threshold,
                children,
            } => write!(
                f,
                "voting threshold {threshold} is invalid for a gate with {children} children"
            ),
            FaultTreeError::UnknownBasicEvent { name } => {
                write!(f, "unknown basic event `{name}`")
            }
        }
    }
}

impl std::error::Error for FaultTreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FaultTreeError::EmptyGate { gate: "and" }
            .to_string()
            .contains("and"));
        assert!(FaultTreeError::InvalidVoteThreshold {
            threshold: 5,
            children: 3
        }
        .to_string()
        .contains('5'));
        assert!(FaultTreeError::UnknownBasicEvent {
            name: "pump".into()
        }
        .to_string()
        .contains("pump"));
    }
}
