//! Quantitative service trees.
//!
//! The paper's quantitative survivability measure needs a map from system
//! states to a *service level* in `[0, 1]`. That map is given by the service
//! tree obtained from the fault tree by swapping gates:
//!
//! * series phases (fault-OR) become [`ServiceNode::Min`] — the weakest phase
//!   bottlenecks the whole line (quantitative AND);
//! * redundant components (fault-AND) become [`ServiceNode::Mean`] — each
//!   working component contributes its share of the phase's capacity
//!   (quantitative OR);
//! * `m`-out-of-`n` groups with spares become [`ServiceNode::Ratio`] — service
//!   is the number of working components capped at the required count, divided
//!   by the required count, so spare components do not add service intervals.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// A node of a quantitative service tree. Every node evaluates to a service
/// level in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceNode {
    /// The service contribution of a single component: its operational level
    /// (1 when up, 0 when down, fractional values allowed for degraded modes).
    Basic(String),
    /// Quantitative AND: the minimum of the children (series bottleneck).
    Min(Vec<ServiceNode>),
    /// Quantitative OR: the average of the children (redundant capacity).
    Mean(Vec<ServiceNode>),
    /// Capped ratio: `min(sum of children, required) / required`; used for
    /// groups with spare components.
    Ratio {
        /// Number of fully working children needed for 100% service.
        required: usize,
        /// Child nodes.
        children: Vec<ServiceNode>,
    },
}

impl ServiceNode {
    /// Evaluates the service level of this node given per-component service values.
    pub fn evaluate<F>(&self, component_service: &F) -> f64
    where
        F: Fn(&str) -> f64,
    {
        match self {
            ServiceNode::Basic(name) => component_service(name).clamp(0.0, 1.0),
            ServiceNode::Min(children) => children
                .iter()
                .map(|c| c.evaluate(component_service))
                .fold(1.0, f64::min),
            ServiceNode::Mean(children) => {
                if children.is_empty() {
                    return 1.0;
                }
                children
                    .iter()
                    .map(|c| c.evaluate(component_service))
                    .sum::<f64>()
                    / children.len() as f64
            }
            ServiceNode::Ratio { required, children } => {
                if *required == 0 {
                    return 1.0;
                }
                let total: f64 = children.iter().map(|c| c.evaluate(component_service)).sum();
                (total.min(*required as f64)) / *required as f64
            }
        }
    }

    /// Collects all component names referenced below this node.
    pub fn collect_components(&self, into: &mut BTreeSet<String>) {
        match self {
            ServiceNode::Basic(name) => {
                into.insert(name.clone());
            }
            ServiceNode::Min(children) | ServiceNode::Mean(children) => {
                children.iter().for_each(|c| c.collect_components(into));
            }
            ServiceNode::Ratio { children, .. } => {
                children.iter().for_each(|c| c.collect_components(into));
            }
        }
    }

    /// The set of service levels this node can attain when every component is
    /// either fully up (1) or fully down (0).
    fn attainable_levels(&self) -> BTreeSet<ServiceLevel> {
        match self {
            ServiceNode::Basic(_) => [0.0, 1.0].iter().map(|&v| ServiceLevel(v)).collect(),
            ServiceNode::Min(children) => combine(children, |values| {
                values.iter().copied().fold(1.0, f64::min)
            }),
            ServiceNode::Mean(children) => combine(children, |values| {
                if values.is_empty() {
                    1.0
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }),
            ServiceNode::Ratio { required, children } => {
                let required = *required;
                combine(children, move |values| {
                    if required == 0 {
                        1.0
                    } else {
                        values.iter().sum::<f64>().min(required as f64) / required as f64
                    }
                })
            }
        }
    }
}

/// A service level wrapped so it can live in ordered collections (the values
/// are always finite, so total ordering is safe).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ServiceLevel(f64);

impl Eq for ServiceLevel {}

impl PartialOrd for ServiceLevel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ServiceLevel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("service levels are finite")
    }
}

fn combine<F>(children: &[ServiceNode], reduce: F) -> BTreeSet<ServiceLevel>
where
    F: Fn(&[f64]) -> f64,
{
    // Cartesian product of the children's attainable levels, reduced by the gate.
    let child_levels: Vec<Vec<f64>> = children
        .iter()
        .map(|c| c.attainable_levels().into_iter().map(|l| l.0).collect())
        .collect();
    let mut out = BTreeSet::new();
    let mut assignment = vec![0usize; child_levels.len()];
    loop {
        let values: Vec<f64> = assignment
            .iter()
            .enumerate()
            .map(|(i, &j)| child_levels[i][j])
            .collect();
        out.insert(ServiceLevel(round_level(reduce(&values))));
        // Advance the mixed-radix counter.
        let mut pos = 0;
        loop {
            if pos == assignment.len() {
                return out;
            }
            assignment[pos] += 1;
            if assignment[pos] < child_levels[pos].len() {
                break;
            }
            assignment[pos] = 0;
            pos += 1;
        }
    }
}

fn round_level(v: f64) -> f64 {
    // Collapse floating-point noise so 2/3 computed along different paths is a
    // single attainable level.
    (v * 1e9).round() / 1e9
}

/// A quantitative service tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceTree {
    root: ServiceNode,
}

impl ServiceTree {
    /// Creates a service tree from its root node.
    pub fn new(root: ServiceNode) -> Self {
        ServiceTree { root }
    }

    /// The root node.
    pub fn root(&self) -> &ServiceNode {
        &self.root
    }

    /// Evaluates the overall service level for per-component service values
    /// (typically 1.0 for operational components and 0.0 for failed ones).
    pub fn service_level<F>(&self, component_service: F) -> f64
    where
        F: Fn(&str) -> f64,
    {
        self.root.evaluate(&component_service)
    }

    /// All component names referenced by the tree.
    pub fn components(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.root.collect_components(&mut set);
        set
    }

    /// The sorted list of service levels the tree can attain when every
    /// component is either fully up or fully down.
    ///
    /// These are the boundaries of the paper's service intervals `X1, X2, ...`:
    /// asking for "service at least `x`" gives the same state set for every `x`
    /// between two consecutive attainable levels.
    pub fn attainable_levels(&self) -> Vec<f64> {
        self.root
            .attainable_levels()
            .into_iter()
            .map(|l| l.0)
            .collect()
    }

    /// The half-open service intervals `[l_i, l_{i+1})` (plus the final point
    /// interval `[1, 1]`) induced by the attainable levels above zero.
    ///
    /// Asking for recovery to any service level within one interval yields the
    /// same survivability curve, which is how the paper groups its plots.
    pub fn service_intervals(&self) -> Vec<(f64, f64)> {
        let levels: Vec<f64> = self
            .attainable_levels()
            .into_iter()
            .filter(|&l| l > 0.0)
            .collect();
        let mut intervals = Vec::new();
        for (i, &level) in levels.iter().enumerate() {
            if let Some(&next) = levels.get(i + 1) {
                intervals.push((level, next));
            } else {
                intervals.push((level, level));
            }
        }
        intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up_except<'a>(down: &'a [&'a str]) -> impl Fn(&str) -> f64 + 'a {
        move |name: &str| if down.contains(&name) { 0.0 } else { 1.0 }
    }

    #[test]
    fn basic_node_clamps_values() {
        let node = ServiceNode::Basic("a".into());
        assert_eq!(node.evaluate(&|_: &str| 2.0), 1.0);
        assert_eq!(node.evaluate(&|_: &str| -1.0), 0.0);
        assert_eq!(node.evaluate(&|_: &str| 0.5), 0.5);
    }

    #[test]
    fn min_and_mean_gates() {
        let tree = ServiceTree::new(ServiceNode::Min(vec![
            ServiceNode::Mean(vec![
                ServiceNode::Basic("a".into()),
                ServiceNode::Basic("b".into()),
            ]),
            ServiceNode::Basic("c".into()),
        ]));
        assert_eq!(tree.service_level(up_except(&[])), 1.0);
        assert_eq!(tree.service_level(up_except(&["a"])), 0.5);
        assert_eq!(tree.service_level(up_except(&["c"])), 0.0);
        assert_eq!(tree.service_level(up_except(&["a", "b"])), 0.0);
    }

    #[test]
    fn ratio_gate_with_spare() {
        // 4 pumps, 3 required: one failure keeps full service.
        let tree = ServiceTree::new(ServiceNode::Ratio {
            required: 3,
            children: (1..=4)
                .map(|i| ServiceNode::Basic(format!("p{i}")))
                .collect(),
        });
        assert_eq!(tree.service_level(up_except(&[])), 1.0);
        assert_eq!(tree.service_level(up_except(&["p1"])), 1.0);
        assert!((tree.service_level(up_except(&["p1", "p2"])) - 2.0 / 3.0).abs() < 1e-12);
        assert!((tree.service_level(up_except(&["p1", "p2", "p3"])) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            tree.service_level(up_except(&["p1", "p2", "p3", "p4"])),
            0.0
        );
    }

    #[test]
    fn degenerate_gates() {
        assert_eq!(ServiceNode::Mean(vec![]).evaluate(&|_: &str| 0.0), 1.0);
        assert_eq!(
            ServiceNode::Ratio {
                required: 0,
                children: vec![]
            }
            .evaluate(&|_: &str| 0.0),
            1.0
        );
        assert_eq!(ServiceNode::Min(vec![]).evaluate(&|_: &str| 0.0), 1.0);
    }

    #[test]
    fn line1_service_intervals_match_the_paper() {
        // Line 1 of the water-treatment facility: 3 softeners, 3 sand filters,
        // 1 reservoir, 4 pumps (3 required). The paper reports the service
        // intervals X1 = [1/3, 2/3), X2 = [2/3, 1) and X3 = [1, 1].
        let service = ServiceTree::new(ServiceNode::Min(vec![
            ServiceNode::Mean(
                (1..=3)
                    .map(|i| ServiceNode::Basic(format!("st{i}")))
                    .collect(),
            ),
            ServiceNode::Mean(
                (1..=3)
                    .map(|i| ServiceNode::Basic(format!("sf{i}")))
                    .collect(),
            ),
            ServiceNode::Basic("res".into()),
            ServiceNode::Ratio {
                required: 3,
                children: (1..=4)
                    .map(|i| ServiceNode::Basic(format!("p{i}")))
                    .collect(),
            },
        ]));
        let levels = service.attainable_levels();
        let expected = [0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0];
        assert_eq!(levels.len(), expected.len());
        for (got, want) in levels.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9, "levels {levels:?}");
        }
        let intervals = service.service_intervals();
        assert_eq!(intervals.len(), 3);
        assert!((intervals[0].0 - 1.0 / 3.0).abs() < 1e-9);
        assert!((intervals[0].1 - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(intervals[2], (1.0, 1.0));
    }

    #[test]
    fn line2_service_intervals_match_the_paper() {
        // Line 2: 3 softeners, 2 sand filters, 1 reservoir, 3 pumps (2 required).
        // The paper reports four intervals: [1/3, 1/2), [1/2, 2/3), [2/3, 1), [1, 1].
        let service = ServiceTree::new(ServiceNode::Min(vec![
            ServiceNode::Mean(
                (1..=3)
                    .map(|i| ServiceNode::Basic(format!("st{i}")))
                    .collect(),
            ),
            ServiceNode::Mean(
                (1..=2)
                    .map(|i| ServiceNode::Basic(format!("sf{i}")))
                    .collect(),
            ),
            ServiceNode::Basic("res".into()),
            ServiceNode::Ratio {
                required: 2,
                children: (1..=3)
                    .map(|i| ServiceNode::Basic(format!("p{i}")))
                    .collect(),
            },
        ]));
        let levels = service.attainable_levels();
        let expected = [0.0, 1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0];
        assert_eq!(levels.len(), expected.len(), "levels {levels:?}");
        for (got, want) in levels.iter().zip(expected.iter()) {
            assert!((got - want).abs() < 1e-9, "levels {levels:?}");
        }
        assert_eq!(service.service_intervals().len(), 4);
    }

    #[test]
    fn components_are_collected() {
        let tree = ServiceTree::new(ServiceNode::Min(vec![
            ServiceNode::Basic("x".into()),
            ServiceNode::Ratio {
                required: 1,
                children: vec![ServiceNode::Basic("y".into())],
            },
        ]));
        let components = tree.components();
        assert!(components.contains("x"));
        assert!(components.contains("y"));
        assert_eq!(components.len(), 2);
    }

    #[test]
    fn spare_components_do_not_create_extra_intervals() {
        // A 2-required-of-3 group attains {0, 1/2, 1}, just like a plain pair.
        let with_spare = ServiceTree::new(ServiceNode::Ratio {
            required: 2,
            children: (0..3)
                .map(|i| ServiceNode::Basic(format!("c{i}")))
                .collect(),
        });
        let plain_pair = ServiceTree::new(ServiceNode::Mean(vec![
            ServiceNode::Basic("a".into()),
            ServiceNode::Basic("b".into()),
        ]));
        assert_eq!(
            with_spare.attainable_levels(),
            plain_pair.attainable_levels()
        );
    }
}
