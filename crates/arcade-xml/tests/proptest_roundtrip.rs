//! Property-based round-trip tests of the Arcade XML format.

use arcade_core::{
    ArcadeModel, BasicComponent, Disaster, RepairStrategy, RepairUnit, SpareManagementUnit,
};
use arcade_xml::{from_xml, to_xml};
use fault_tree::{StructureNode, SystemStructure};
use proptest::prelude::*;

fn arbitrary_strategy() -> impl Strategy<Value = RepairStrategy> {
    prop_oneof![
        Just(RepairStrategy::Dedicated),
        Just(RepairStrategy::FirstComeFirstServe),
        Just(RepairStrategy::FastestRepairFirst),
        Just(RepairStrategy::FastestFailureFirst),
        proptest::collection::vec(0usize..6, 1..4).prop_map(|order| RepairStrategy::Priority(
            order.into_iter().map(|i| format!("c{i}")).collect()
        )),
    ]
}

#[derive(Debug, Clone)]
struct Spec {
    count: usize,
    mttfs: Vec<f64>,
    mttrs: Vec<f64>,
    failed_costs: Vec<f64>,
    strategy: RepairStrategy,
    crews: usize,
    with_spare_unit: bool,
    with_disaster: bool,
}

fn arbitrary_spec() -> impl Strategy<Value = Spec> {
    (
        2usize..=6,
        proptest::collection::vec(1.0f64..10000.0, 6),
        proptest::collection::vec(0.25f64..500.0, 6),
        proptest::collection::vec(0.0f64..10.0, 6),
        arbitrary_strategy(),
        1usize..=3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(
                count,
                mttfs,
                mttrs,
                failed_costs,
                strategy,
                crews,
                with_spare_unit,
                with_disaster,
            )| Spec {
                count,
                mttfs,
                mttrs,
                failed_costs,
                strategy,
                crews,
                with_spare_unit,
                with_disaster,
            },
        )
}

fn build(spec: &Spec) -> ArcadeModel {
    let names: Vec<String> = (0..spec.count).map(|i| format!("c{i}")).collect();
    let structure = SystemStructure::new(StructureNode::required_of(
        spec.count.div_ceil(2),
        names
            .iter()
            .map(|n| StructureNode::component(n.clone()))
            .collect(),
    ));
    let mut builder = ArcadeModel::builder("generated", structure);
    for (i, name) in names.iter().enumerate() {
        let mut component = BasicComponent::from_mttf_mttr(name, spec.mttfs[i], spec.mttrs[i])
            .unwrap()
            .with_failed_cost(spec.failed_costs[i]);
        if spec.with_spare_unit && i == spec.count - 1 {
            component = component.with_dormancy_factor(0.25);
        }
        builder = builder.component(component);
    }
    // The priority strategy may reference components that do not exist in this
    // model; restrict it to declared names to keep the model valid.
    let strategy = match &spec.strategy {
        RepairStrategy::Priority(order) => RepairStrategy::Priority(
            order
                .iter()
                .filter(|n| names.contains(n))
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    };
    builder = builder.repair_unit(
        RepairUnit::new("ru", strategy, spec.crews)
            .unwrap()
            .responsible_for(names.clone())
            .with_idle_cost(1.0),
    );
    if spec.with_spare_unit && spec.count >= 2 {
        builder = builder.spare_unit(
            SpareManagementUnit::new(
                "smu",
                names[..spec.count - 1].to_vec(),
                [names[spec.count - 1].clone()],
            )
            .unwrap(),
        );
    }
    if spec.with_disaster {
        builder = builder.disaster(Disaster::new("d", names).unwrap());
    }
    builder.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn models_round_trip_through_xml(spec in arbitrary_spec()) {
        let model = build(&spec);
        let xml = to_xml(&model);
        let restored = from_xml(&xml).expect("generated XML must parse");
        prop_assert_eq!(restored, model);
    }

    #[test]
    fn serialisation_is_deterministic(spec in arbitrary_spec()) {
        let model = build(&spec);
        prop_assert_eq!(to_xml(&model), to_xml(&model));
    }

    #[test]
    fn component_names_with_special_characters_round_trip(
        suffix in "[A-Za-z0-9 .&<>'\"-]{0,12}",
        mttf in 1.0f64..100.0,
    ) {
        let name = format!("pump {suffix}");
        let structure = SystemStructure::new(StructureNode::component(name.clone()));
        let model = ArcadeModel::builder("escaping", structure)
            .component(BasicComponent::from_mttf_mttr(&name, mttf, 1.0).unwrap())
            .build()
            .unwrap();
        let restored = from_xml(&to_xml(&model)).expect("escaped XML must parse");
        prop_assert_eq!(restored, model);
    }
}
