//! # arcade-xml — the XML input/output format for Arcade models
//!
//! The Arcade tool chain of the DSN 2010 paper reads its architectural models
//! from an XML format (components, repair units, spare management units, fault
//! trees and measures) so that design tools can be coupled to the analysis
//! back-ends. The exact schema of that format is unpublished; this crate
//! defines an equivalent vocabulary carrying the same information and provides
//!
//! * a small, dependency-free XML document model with parser and writer
//!   ([`xml`]),
//! * the mapping between XML documents and [`arcade_core::ArcadeModel`]
//!   ([`schema`]): [`to_xml`] / [`from_xml`] round-trip models losslessly.
//!
//! ```
//! use arcade_core::{ArcadeModel, BasicComponent, RepairStrategy, RepairUnit};
//! use fault_tree::{StructureNode, SystemStructure};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let structure = SystemStructure::new(StructureNode::component("pump"));
//! let model = ArcadeModel::builder("demo", structure)
//!     .component(BasicComponent::from_mttf_mttr("pump", 500.0, 1.0)?)
//!     .repair_unit(RepairUnit::new("ru", RepairStrategy::Dedicated, 1)?.responsible_for(["pump"]))
//!     .build()?;
//!
//! let text = arcade_xml::to_xml(&model);
//! let restored = arcade_xml::from_xml(&text)?;
//! assert_eq!(restored.name(), "demo");
//! assert_eq!(restored.components().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod schema;
pub mod xml;

pub use error::XmlError;
pub use schema::{from_xml, to_xml};
pub use xml::{XmlDocument, XmlElement};
