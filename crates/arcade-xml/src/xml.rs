//! A minimal, dependency-free XML document model, parser and writer.
//!
//! The subset supported is what configuration vocabularies need: nested
//! elements, attributes (single- or double-quoted), character data, comments,
//! processing instructions/XML declarations (skipped), CDATA sections and the
//! five predefined entities. DTDs, namespaces and mixed-content preservation
//! are out of scope.

use std::collections::BTreeMap;

use bytes::BytesMut;
use serde::{Deserialize, Serialize};

use crate::error::XmlError;

/// An XML element: name, attributes, child elements and concatenated text content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XmlElement {
    /// Element name.
    pub name: String,
    /// Attributes in document order (duplicates rejected at parse time).
    pub attributes: BTreeMap<String, String>,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
    /// Concatenated character data directly inside this element (trimmed).
    pub text: String,
}

impl XmlElement {
    /// Creates an element with the given name and no content.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            attributes: BTreeMap::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }

    /// Sets an attribute (builder style).
    pub fn with_attribute(mut self, name: impl Into<String>, value: impl ToString) -> Self {
        self.attributes.insert(name.into(), value.to_string());
        self
    }

    /// Appends a child element (builder style).
    pub fn with_child(mut self, child: XmlElement) -> Self {
        self.children.push(child);
        self
    }

    /// Looks up an attribute value.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes.get(name).map(String::as_str)
    }

    /// Looks up a required attribute, producing a schema error when missing.
    pub fn required_attribute(&self, name: &str) -> Result<&str, XmlError> {
        self.attribute(name).ok_or_else(|| XmlError::Schema {
            message: format!(
                "element <{}> is missing required attribute `{name}`",
                self.name
            ),
        })
    }

    /// All children with the given element name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The first child with the given element name.
    pub fn child_named(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// The first child with the given name, or a schema error when missing.
    pub fn required_child(&self, name: &str) -> Result<&XmlElement, XmlError> {
        self.child_named(name).ok_or_else(|| XmlError::Schema {
            message: format!("element <{}> is missing required child <{name}>", self.name),
        })
    }
}

/// An XML document (prolog is not preserved, only the root element).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XmlDocument {
    /// The root element.
    pub root: XmlElement,
}

impl XmlDocument {
    /// Creates a document from a root element.
    pub fn new(root: XmlElement) -> Self {
        XmlDocument { root }
    }

    /// Parses a document from text.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError::Parse`] with line/column information on malformed input.
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        let mut parser = XmlParser { input, position: 0 };
        parser.skip_prolog()?;
        let root = parser.parse_element()?;
        parser.skip_misc();
        if parser.position != parser.input.len() {
            return Err(parser.error("unexpected content after the root element"));
        }
        Ok(XmlDocument { root })
    }

    /// Serialises the document with an XML declaration and 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut buffer = BytesMut::new();
        buffer.extend_from_slice(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        write_element(&self.root, 0, &mut buffer);
        String::from_utf8(buffer.to_vec()).expect("writer only emits UTF-8")
    }
}

fn write_element(element: &XmlElement, depth: usize, out: &mut BytesMut) {
    let indent = "  ".repeat(depth);
    out.extend_from_slice(indent.as_bytes());
    out.extend_from_slice(b"<");
    out.extend_from_slice(element.name.as_bytes());
    for (name, value) in &element.attributes {
        out.extend_from_slice(b" ");
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b"=\"");
        out.extend_from_slice(escape(value).as_bytes());
        out.extend_from_slice(b"\"");
    }
    if element.children.is_empty() && element.text.is_empty() {
        out.extend_from_slice(b"/>\n");
        return;
    }
    out.extend_from_slice(b">");
    if !element.text.is_empty() {
        out.extend_from_slice(escape(&element.text).as_bytes());
    }
    if !element.children.is_empty() {
        out.extend_from_slice(b"\n");
        for child in &element.children {
            write_element(child, depth + 1, out);
        }
        out.extend_from_slice(indent.as_bytes());
    }
    out.extend_from_slice(b"</");
    out.extend_from_slice(element.name.as_bytes());
    out.extend_from_slice(b">\n");
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

fn unescape(text: &str) -> String {
    text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

struct XmlParser<'a> {
    input: &'a str,
    position: usize,
}

impl<'a> XmlParser<'a> {
    fn error(&self, message: impl Into<String>) -> XmlError {
        let consumed = &self.input[..self.position];
        let line = consumed.matches('\n').count() + 1;
        let column = self.position - consumed.rfind('\n').map(|i| i + 1).unwrap_or(0) + 1;
        XmlError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.position..]
    }

    fn skip_whitespace(&mut self) {
        let trimmed = self.rest().trim_start();
        self.position = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.rest().starts_with(token) {
            self.position += token.len();
            true
        } else {
            false
        }
    }

    fn skip_until(&mut self, token: &str, what: &str) -> Result<(), XmlError> {
        match self.rest().find(token) {
            Some(idx) => {
                self.position += idx + token.len();
                Ok(())
            }
            None => Err(self.error(format!("unterminated {what}"))),
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.eat("<?") {
                self.skip_until("?>", "processing instruction")?;
            } else if self.rest().starts_with("<!--") {
                self.position += 4;
                self.skip_until("-->", "comment")?;
            } else if self.eat("<!DOCTYPE") {
                self.skip_until(">", "DOCTYPE declaration")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.rest().starts_with("<!--") {
                self.position += 4;
                if self.skip_until("-->", "comment").is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        self.skip_whitespace();
        if !self.eat("<") {
            return Err(self.error("expected `<` to start an element"));
        }
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name);

        loop {
            self.skip_whitespace();
            if self.eat("/>") {
                return Ok(element);
            }
            if self.eat(">") {
                break;
            }
            let attr_name = self.parse_name()?;
            self.skip_whitespace();
            if !self.eat("=") {
                return Err(self.error(format!("expected `=` after attribute `{attr_name}`")));
            }
            self.skip_whitespace();
            let value = self.parse_quoted()?;
            if element
                .attributes
                .insert(attr_name.clone(), value)
                .is_some()
            {
                return Err(self.error(format!("duplicate attribute `{attr_name}`")));
            }
        }

        // Content: text, children, comments, CDATA, until the closing tag.
        loop {
            if self.rest().is_empty() {
                return Err(self.error(format!("unterminated element <{}>", element.name)));
            }
            if self.rest().starts_with("</") {
                self.position += 2;
                let closing = self.parse_name()?;
                if closing != element.name {
                    return Err(self.error(format!(
                        "mismatched closing tag: expected </{}>, found </{closing}>",
                        element.name
                    )));
                }
                self.skip_whitespace();
                if !self.eat(">") {
                    return Err(self.error("expected `>` after closing tag name"));
                }
                element.text = element.text.trim().to_string();
                return Ok(element);
            }
            if self.rest().starts_with("<!--") {
                self.position += 4;
                self.skip_until("-->", "comment")?;
                continue;
            }
            if self.rest().starts_with("<![CDATA[") {
                self.position += 9;
                let rest = self.rest();
                match rest.find("]]>") {
                    Some(idx) => {
                        element.text.push_str(&rest[..idx]);
                        self.position += idx + 3;
                    }
                    None => return Err(self.error("unterminated CDATA section")),
                }
                continue;
            }
            if self.rest().starts_with('<') {
                let child = self.parse_element()?;
                element.children.push(child);
                continue;
            }
            // Character data up to the next `<`.
            let rest = self.rest();
            let end = rest.find('<').unwrap_or(rest.len());
            element.text.push_str(&unescape(&rest[..end]));
            self.position += end;
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .take_while(|(_, c)| {
                c.is_ascii_alphanumeric() || *c == '_' || *c == '-' || *c == '.' || *c == ':'
            })
            .map(|(i, c)| i + c.len_utf8())
            .last()
            .unwrap_or(0);
        if end == 0 {
            return Err(self.error("expected a name"));
        }
        let name = &rest[..end];
        if name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '.')
        {
            return Err(self.error(format!("invalid name `{name}`")));
        }
        self.position += end;
        Ok(name.to_string())
    }

    fn parse_quoted(&mut self) -> Result<String, XmlError> {
        let quote = if self.eat("\"") {
            '"'
        } else if self.eat("'") {
            '\''
        } else {
            return Err(self.error("expected a quoted attribute value"));
        };
        let rest = self.rest();
        match rest.find(quote) {
            Some(end) => {
                let value = unescape(&rest[..end]);
                self.position += end + 1;
                Ok(value)
            }
            None => Err(self.error("unterminated attribute value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let doc = XmlDocument::parse(
            r#"<?xml version="1.0"?>
            <!-- a facility -->
            <model name="demo">
              <components>
                <component name="pump" mttf="500" mttr='1'/>
              </components>
              <note>hello &amp; goodbye</note>
            </model>"#,
        )
        .unwrap();
        assert_eq!(doc.root.name, "model");
        assert_eq!(doc.root.attribute("name"), Some("demo"));
        let components = doc.root.required_child("components").unwrap();
        let component = components.child_named("component").unwrap();
        assert_eq!(component.attribute("mttf"), Some("500"));
        assert_eq!(component.attribute("mttr"), Some("1"));
        let note = doc.root.child_named("note").unwrap();
        assert_eq!(note.text, "hello & goodbye");
    }

    #[test]
    fn round_trip_preserves_structure() {
        let doc = XmlDocument::new(
            XmlElement::new("model")
                .with_attribute("name", "demo <&> \"quoted\"")
                .with_child(XmlElement::new("empty"))
                .with_child(XmlElement::new("child").with_attribute("x", 3)),
        );
        let text = doc.to_string_pretty();
        let reparsed = XmlDocument::parse(&text).unwrap();
        assert_eq!(doc, reparsed);
        assert!(text.starts_with("<?xml"));
        assert!(text.contains("<empty/>"));
    }

    #[test]
    fn cdata_and_comments_inside_elements() {
        let doc = XmlDocument::parse("<a><!-- c --><![CDATA[1 < 2]]></a>").unwrap();
        assert_eq!(doc.root.text, "1 < 2");
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = XmlDocument::parse("<a>\n  <b></c>\n</a>").unwrap_err();
        match err {
            XmlError::Parse { line, message, .. } => {
                assert_eq!(line, 2);
                assert!(message.contains("mismatched"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(XmlDocument::parse("").is_err());
        assert!(XmlDocument::parse("<a>").is_err());
        assert!(XmlDocument::parse("<a b=c/>").is_err());
        assert!(XmlDocument::parse("<a b=\"1\" b=\"2\"/>").is_err());
        assert!(XmlDocument::parse("<a/><b/>").is_err());
        assert!(XmlDocument::parse("<1tag/>").is_err());
        assert!(XmlDocument::parse("<a><![CDATA[x]]</a>").is_err());
        assert!(XmlDocument::parse("<?xml version=\"1.0\"").is_err());
    }

    #[test]
    fn helper_accessors_produce_schema_errors() {
        let doc = XmlDocument::parse("<a/>").unwrap();
        assert!(matches!(
            doc.root.required_attribute("x"),
            Err(XmlError::Schema { .. })
        ));
        assert!(matches!(
            doc.root.required_child("y"),
            Err(XmlError::Schema { .. })
        ));
        assert_eq!(doc.root.children_named("z").count(), 0);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = XmlDocument::parse("<a>\n   <b/>\n</a>").unwrap();
        assert_eq!(doc.root.text, "");
        assert_eq!(doc.root.children.len(), 1);
    }
}
