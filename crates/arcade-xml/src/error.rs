//! Error type for XML parsing and schema mapping.

use std::fmt;

use arcade_core::ArcadeError;

/// Errors produced while parsing XML or mapping it onto Arcade models.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlError {
    /// The XML text is not well formed.
    Parse {
        /// Line number (1-based) where the problem was detected.
        line: usize,
        /// Column number (1-based).
        column: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// The document is well-formed XML but does not match the Arcade schema.
    Schema {
        /// Explanation of the problem.
        message: String,
    },
    /// The document describes an invalid Arcade model.
    Model(ArcadeError),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse {
                line,
                column,
                message,
            } => {
                write!(
                    f,
                    "XML parse error at line {line}, column {column}: {message}"
                )
            }
            XmlError::Schema { message } => write!(f, "schema error: {message}"),
            XmlError::Model(err) => write!(f, "invalid model: {err}"),
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmlError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ArcadeError> for XmlError {
    fn from(err: ArcadeError) -> Self {
        XmlError::Model(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = XmlError::Parse {
            line: 3,
            column: 7,
            message: "expected `>`".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("column 7"));
        assert!(XmlError::Schema {
            message: "missing name".into()
        }
        .to_string()
        .contains("missing"));
        let e: XmlError = ArcadeError::DuplicateComponent { name: "x".into() }.into();
        assert!(matches!(e, XmlError::Model(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
