//! Mapping between XML documents and Arcade models.
//!
//! The vocabulary (element and attribute names) is documented on
//! [`to_xml`]; [`from_xml`] accepts exactly the documents [`to_xml`]
//! produces, so models round-trip losslessly.

use arcade_core::{
    ArcadeModel, BasicComponent, Disaster, RepairStrategy, RepairUnit, SpareManagementUnit,
};
use fault_tree::{StructureNode, SystemStructure};

use crate::error::XmlError;
use crate::xml::{XmlDocument, XmlElement};

/// Serialises a model to the Arcade XML format.
///
/// Document layout:
///
/// ```xml
/// <arcade-model name="...">
///   <components>
///     <component name="..." mttf="..." mttr="..." failed-cost="..."
///                operational-cost="..." dormancy="..." initially-failed="..."/>
///   </components>
///   <repair-units>
///     <repair-unit name="..." strategy="dedicated|fcfs|frf|fff|priority"
///                  crews="..." idle-cost="..." busy-cost="...">
///       <responsible ref="..."/>
///       <priority ref="..."/>          <!-- only for strategy="priority" -->
///     </repair-unit>
///   </repair-units>
///   <spare-units>
///     <spare-unit name="...">
///       <primary ref="..."/>
///       <spare ref="..."/>
///     </spare-unit>
///   </spare-units>
///   <structure> ... <series>/<redundant>/<required-of required="k">/<component ref=""/> ... </structure>
///   <disasters>
///     <disaster name="..."><failed ref="..."/></disaster>
///   </disasters>
/// </arcade-model>
/// ```
pub fn to_xml(model: &ArcadeModel) -> String {
    let mut root = XmlElement::new("arcade-model").with_attribute("name", model.name());

    let mut components = XmlElement::new("components");
    for c in model.components() {
        let mut element = XmlElement::new("component")
            .with_attribute("name", c.name())
            .with_attribute("mttf", c.mttf())
            .with_attribute("mttr", c.mttr());
        if c.failed_cost_per_hour() != 0.0 {
            element = element.with_attribute("failed-cost", c.failed_cost_per_hour());
        }
        if c.operational_cost_per_hour() != 0.0 {
            element = element.with_attribute("operational-cost", c.operational_cost_per_hour());
        }
        if c.dormancy_factor() != 1.0 {
            element = element.with_attribute("dormancy", c.dormancy_factor());
        }
        if c.is_initially_failed() {
            element = element.with_attribute("initially-failed", "true");
        }
        components.children.push(element);
    }
    root.children.push(components);

    let mut repair_units = XmlElement::new("repair-units");
    for ru in model.repair_units() {
        let mut element = XmlElement::new("repair-unit")
            .with_attribute("name", ru.name())
            .with_attribute("strategy", strategy_keyword(ru.strategy()))
            .with_attribute("crews", ru.crews());
        if ru.idle_cost_per_hour() != 0.0 {
            element = element.with_attribute("idle-cost", ru.idle_cost_per_hour());
        }
        if ru.busy_cost_per_hour() != 0.0 {
            element = element.with_attribute("busy-cost", ru.busy_cost_per_hour());
        }
        if ru.is_preemptive() {
            element = element.with_attribute("preemptive", "true");
        }
        for component in ru.components() {
            element
                .children
                .push(XmlElement::new("responsible").with_attribute("ref", component));
        }
        if let RepairStrategy::Priority(order) = ru.strategy() {
            for component in order {
                element
                    .children
                    .push(XmlElement::new("priority").with_attribute("ref", component));
            }
        }
        repair_units.children.push(element);
    }
    root.children.push(repair_units);

    if !model.spare_units().is_empty() {
        let mut spare_units = XmlElement::new("spare-units");
        for smu in model.spare_units() {
            let mut element = XmlElement::new("spare-unit").with_attribute("name", smu.name());
            for primary in smu.primaries() {
                element
                    .children
                    .push(XmlElement::new("primary").with_attribute("ref", primary));
            }
            for spare in smu.spares() {
                element
                    .children
                    .push(XmlElement::new("spare").with_attribute("ref", spare));
            }
            spare_units.children.push(element);
        }
        root.children.push(spare_units);
    }

    let mut structure = XmlElement::new("structure");
    structure
        .children
        .push(structure_to_xml(model.structure().root()));
    root.children.push(structure);

    if !model.disasters().is_empty() {
        let mut disasters = XmlElement::new("disasters");
        for disaster in model.disasters() {
            let mut element = XmlElement::new("disaster").with_attribute("name", disaster.name());
            for component in disaster.failed_components() {
                element
                    .children
                    .push(XmlElement::new("failed").with_attribute("ref", component));
            }
            disasters.children.push(element);
        }
        root.children.push(disasters);
    }

    XmlDocument::new(root).to_string_pretty()
}

/// Parses a model from the Arcade XML format.
///
/// # Errors
///
/// Returns parse errors for malformed XML, schema errors for missing or
/// malformed elements/attributes, and model errors for semantically invalid
/// models (unknown references and the like).
pub fn from_xml(text: &str) -> Result<ArcadeModel, XmlError> {
    let document = XmlDocument::parse(text)?;
    let root = &document.root;
    if root.name != "arcade-model" {
        return Err(XmlError::Schema {
            message: format!(
                "expected root element <arcade-model>, found <{}>",
                root.name
            ),
        });
    }
    let name = root.required_attribute("name")?;

    let structure_element = root.required_child("structure")?;
    let structure_root = structure_element
        .children
        .first()
        .ok_or_else(|| XmlError::Schema {
            message: "<structure> must contain exactly one node".to_string(),
        })?;
    let structure = SystemStructure::new(structure_from_xml(structure_root)?);

    let mut builder = ArcadeModel::builder(name, structure);

    for element in root
        .required_child("components")?
        .children_named("component")
    {
        let component_name = element.required_attribute("name")?;
        let mttf = parse_number(element, "mttf")?;
        let mttr = parse_number(element, "mttr")?;
        let mut component = BasicComponent::from_mttf_mttr(component_name, mttf, mttr)?;
        if let Some(value) = element.attribute("failed-cost") {
            component = component.with_failed_cost(parse_value(element, "failed-cost", value)?);
        }
        if let Some(value) = element.attribute("operational-cost") {
            component =
                component.with_operational_cost(parse_value(element, "operational-cost", value)?);
        }
        if let Some(value) = element.attribute("dormancy") {
            component = component.with_dormancy_factor(parse_value(element, "dormancy", value)?);
        }
        if element.attribute("initially-failed") == Some("true") {
            component = component.initially_failed();
        }
        builder = builder.component(component);
    }

    if let Some(units) = root.child_named("repair-units") {
        for element in units.children_named("repair-unit") {
            let unit_name = element.required_attribute("name")?;
            let crews: usize =
                element
                    .required_attribute("crews")?
                    .parse()
                    .map_err(|_| XmlError::Schema {
                        message: format!("repair unit `{unit_name}` has a non-integer crew count"),
                    })?;
            let strategy = match element.required_attribute("strategy")? {
                "dedicated" => RepairStrategy::Dedicated,
                "fcfs" => RepairStrategy::FirstComeFirstServe,
                "frf" => RepairStrategy::FastestRepairFirst,
                "fff" => RepairStrategy::FastestFailureFirst,
                "priority" => RepairStrategy::Priority(
                    element
                        .children_named("priority")
                        .map(|p| p.required_attribute("ref").map(str::to_string))
                        .collect::<Result<Vec<_>, _>>()?,
                ),
                other => {
                    return Err(XmlError::Schema {
                        message: format!("unknown repair strategy `{other}`"),
                    })
                }
            };
            let mut unit = RepairUnit::new(unit_name, strategy, crews)?;
            let responsible = element
                .children_named("responsible")
                .map(|r| r.required_attribute("ref").map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            unit = unit.responsible_for(responsible);
            if let Some(value) = element.attribute("idle-cost") {
                unit = unit.with_idle_cost(parse_value(element, "idle-cost", value)?);
            }
            if let Some(value) = element.attribute("busy-cost") {
                unit = unit.with_busy_cost(parse_value(element, "busy-cost", value)?);
            }
            if element.attribute("preemptive") == Some("true") {
                unit = unit.with_preemption();
            }
            builder = builder.repair_unit(unit);
        }
    }

    if let Some(units) = root.child_named("spare-units") {
        for element in units.children_named("spare-unit") {
            let unit_name = element.required_attribute("name")?;
            let primaries = element
                .children_named("primary")
                .map(|p| p.required_attribute("ref").map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            let spares = element
                .children_named("spare")
                .map(|p| p.required_attribute("ref").map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            builder = builder.spare_unit(SpareManagementUnit::new(unit_name, primaries, spares)?);
        }
    }

    if let Some(disasters) = root.child_named("disasters") {
        for element in disasters.children_named("disaster") {
            let disaster_name = element.required_attribute("name")?;
            let failed = element
                .children_named("failed")
                .map(|p| p.required_attribute("ref").map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?;
            builder = builder.disaster(Disaster::new(disaster_name, failed)?);
        }
    }

    Ok(builder.build()?)
}

fn strategy_keyword(strategy: &RepairStrategy) -> &'static str {
    match strategy {
        RepairStrategy::Dedicated => "dedicated",
        RepairStrategy::FirstComeFirstServe => "fcfs",
        RepairStrategy::FastestRepairFirst => "frf",
        RepairStrategy::FastestFailureFirst => "fff",
        RepairStrategy::Priority(_) => "priority",
    }
}

fn structure_to_xml(node: &StructureNode) -> XmlElement {
    match node {
        StructureNode::Component(name) => XmlElement::new("component").with_attribute("ref", name),
        StructureNode::Series(children) => {
            let mut element = XmlElement::new("series");
            element.children = children.iter().map(structure_to_xml).collect();
            element
        }
        StructureNode::Redundant(children) => {
            let mut element = XmlElement::new("redundant");
            element.children = children.iter().map(structure_to_xml).collect();
            element
        }
        StructureNode::RequiredOf { required, children } => {
            let mut element = XmlElement::new("required-of").with_attribute("required", *required);
            element.children = children.iter().map(structure_to_xml).collect();
            element
        }
    }
}

fn structure_from_xml(element: &XmlElement) -> Result<StructureNode, XmlError> {
    match element.name.as_str() {
        "component" => Ok(StructureNode::component(element.required_attribute("ref")?)),
        "series" => Ok(StructureNode::series(
            element
                .children
                .iter()
                .map(structure_from_xml)
                .collect::<Result<Vec<_>, _>>()?,
        )),
        "redundant" => Ok(StructureNode::redundant(
            element
                .children
                .iter()
                .map(structure_from_xml)
                .collect::<Result<Vec<_>, _>>()?,
        )),
        "required-of" => {
            let required: usize =
                element
                    .required_attribute("required")?
                    .parse()
                    .map_err(|_| XmlError::Schema {
                        message: "attribute `required` must be a non-negative integer".to_string(),
                    })?;
            Ok(StructureNode::required_of(
                required,
                element
                    .children
                    .iter()
                    .map(structure_from_xml)
                    .collect::<Result<Vec<_>, _>>()?,
            ))
        }
        other => Err(XmlError::Schema {
            message: format!("unknown structure element <{other}>"),
        }),
    }
}

fn parse_number(element: &XmlElement, attribute: &str) -> Result<f64, XmlError> {
    let value = element.required_attribute(attribute)?;
    parse_value(element, attribute, value)
}

fn parse_value(element: &XmlElement, attribute: &str, value: &str) -> Result<f64, XmlError> {
    value.parse().map_err(|_| XmlError::Schema {
        message: format!(
            "attribute `{attribute}` of <{}> is not a number: `{value}`",
            element.name
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::redundant(vec![
                StructureNode::component("st1"),
                StructureNode::component("st2"),
            ]),
            StructureNode::component("res"),
            StructureNode::required_of(
                1,
                vec![
                    StructureNode::component("p1"),
                    StructureNode::component("p2"),
                ],
            ),
        ]));
        ArcadeModel::builder("sample", structure)
            .component(
                BasicComponent::from_mttf_mttr("st1", 2000.0, 5.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .component(
                BasicComponent::from_mttf_mttr("st2", 2000.0, 5.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .component(BasicComponent::from_mttf_mttr("res", 6000.0, 12.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("p1", 500.0, 1.0).unwrap())
            .component(
                BasicComponent::from_mttf_mttr("p2", 500.0, 1.0)
                    .unwrap()
                    .with_dormancy_factor(0.0)
                    .with_operational_cost(0.1),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FastestRepairFirst, 2)
                    .unwrap()
                    .responsible_for(["st1", "st2", "res", "p1", "p2"])
                    .with_idle_cost(1.0)
                    .with_busy_cost(0.5),
            )
            .spare_unit(SpareManagementUnit::new("pumps", ["p1"], ["p2"]).unwrap())
            .disaster(Disaster::new("d1", ["p1", "p2"]).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_the_model() {
        let model = sample_model();
        let text = to_xml(&model);
        let restored = from_xml(&text).unwrap();
        assert_eq!(restored, model);
    }

    #[test]
    fn serialised_document_mentions_all_sections() {
        let text = to_xml(&sample_model());
        for needle in [
            "<arcade-model name=\"sample\">",
            "<components>",
            "<repair-units>",
            "strategy=\"frf\"",
            "<spare-units>",
            "<structure>",
            "<required-of required=\"1\">",
            "<disasters>",
        ] {
            assert!(text.contains(needle), "missing {needle} in\n{text}");
        }
    }

    #[test]
    fn preemptive_units_round_trip() {
        let structure = SystemStructure::new(StructureNode::component("a"));
        let model = ArcadeModel::builder("preempt", structure)
            .component(BasicComponent::from_mttf_mttr("a", 10.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FastestRepairFirst, 2)
                    .unwrap()
                    .responsible_for(["a"])
                    .with_preemption(),
            )
            .build()
            .unwrap();
        let text = to_xml(&model);
        assert!(text.contains("preemptive=\"true\""));
        let restored = from_xml(&text).unwrap();
        assert_eq!(restored, model);
        assert!(restored.repair_units()[0].is_preemptive());
    }

    #[test]
    fn priority_strategy_round_trips() {
        let structure = SystemStructure::new(StructureNode::series(vec![
            StructureNode::component("a"),
            StructureNode::component("b"),
        ]));
        let model = ArcadeModel::builder("prio", structure)
            .component(BasicComponent::from_mttf_mttr("a", 10.0, 1.0).unwrap())
            .component(BasicComponent::from_mttf_mttr("b", 10.0, 1.0).unwrap())
            .repair_unit(
                RepairUnit::new(
                    "ru",
                    RepairStrategy::Priority(vec!["b".into(), "a".into()]),
                    1,
                )
                .unwrap()
                .responsible_for(["a", "b"]),
            )
            .build()
            .unwrap();
        let restored = from_xml(&to_xml(&model)).unwrap();
        assert_eq!(restored, model);
    }

    #[test]
    fn schema_errors_are_reported() {
        assert!(matches!(from_xml("<nope/>"), Err(XmlError::Schema { .. })));
        assert!(matches!(
            from_xml("<arcade-model name=\"x\"><components/><structure/></arcade-model>"),
            Err(XmlError::Schema { .. })
        ));
        let bad_strategy = r#"<arcade-model name="x">
            <components><component name="a" mttf="10" mttr="1"/></components>
            <repair-units><repair-unit name="ru" strategy="magic" crews="1">
              <responsible ref="a"/></repair-unit></repair-units>
            <structure><component ref="a"/></structure>
        </arcade-model>"#;
        assert!(matches!(
            from_xml(bad_strategy),
            Err(XmlError::Schema { .. })
        ));
        let bad_number = r#"<arcade-model name="x">
            <components><component name="a" mttf="ten" mttr="1"/></components>
            <structure><component ref="a"/></structure>
        </arcade-model>"#;
        assert!(matches!(from_xml(bad_number), Err(XmlError::Schema { .. })));
    }

    #[test]
    fn model_errors_are_reported() {
        // References a component that is never declared.
        let text = r#"<arcade-model name="x">
            <components><component name="a" mttf="10" mttr="1"/></components>
            <structure><component ref="ghost"/></structure>
        </arcade-model>"#;
        assert!(matches!(from_xml(text), Err(XmlError::Model(_))));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            from_xml("<arcade-model"),
            Err(XmlError::Parse { .. })
        ));
    }

    #[test]
    fn minimal_model_without_optional_sections() {
        let text = r#"<arcade-model name="mini">
            <components><component name="a" mttf="10" mttr="1"/></components>
            <structure><component ref="a"/></structure>
        </arcade-model>"#;
        let model = from_xml(text).unwrap();
        assert_eq!(model.name(), "mini");
        assert!(model.repair_units().is_empty());
        assert!(model.disasters().is_empty());
    }
}
