//! The trajectory engine: executes one stochastic run of an Arcade model.
//!
//! The engine mirrors the semantics of `arcade_core`'s state-space composer —
//! exponential failures and repairs, non-preemptive crew dispatch with
//! strategy-dependent priorities and FCFS tie-breaking, and immediate spare
//! activation — but advances a single sampled trajectory instead of building
//! the full CTMC.

use arcade_core::{ArcadeError, ArcadeModel, ComponentStatus, Disaster, RepairStrategy};
use fault_tree::{FaultTree, ServiceTree};
use rand::rngs::StdRng;
use rand::Rng;

/// A single simulated trajectory of an Arcade model.
#[derive(Debug, Clone)]
pub struct Trajectory<'a> {
    model: &'a ArcadeModel,
    service_tree: ServiceTree,
    degraded_tree: FaultTree,
    component_names: Vec<String>,
    failure_rates: Vec<f64>,
    repair_rates: Vec<f64>,
    dormancy: Vec<f64>,
    component_ru: Vec<Option<usize>>,
    ru_components: Vec<Vec<usize>>,
    ru_crews: Vec<usize>,
    priorities: Vec<f64>,
    smu_primaries: Vec<Vec<usize>>,
    smu_spares: Vec<Vec<usize>>,
    component_smu: Vec<Option<usize>>,
    // Mutable run state.
    statuses: Vec<ComponentStatus>,
    queues: Vec<Vec<usize>>,
    time: f64,
}

impl<'a> Trajectory<'a> {
    /// Prepares a trajectory in the model's regular initial state.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::UnknownComponent`] if the model references
    /// undeclared components (cannot happen for models built through the
    /// validated builder).
    pub fn new(model: &'a ArcadeModel) -> Result<Self, ArcadeError> {
        let n = model.components().len();
        let component_names: Vec<String> = model
            .components()
            .iter()
            .map(|c| c.name().to_string())
            .collect();
        let index_of = |name: &str| -> Result<usize, ArcadeError> {
            component_names
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| ArcadeError::UnknownComponent {
                    name: name.to_string(),
                    referenced_by: "simulator".into(),
                })
        };

        let mut component_ru = vec![None; n];
        let mut ru_components = Vec::new();
        let mut ru_crews = Vec::new();
        let mut priorities = vec![0.0; n];
        for (ru_idx, ru) in model.repair_units().iter().enumerate() {
            let mut members = Vec::new();
            for name in ru.components() {
                let idx = index_of(name)?;
                component_ru[idx] = Some(ru_idx);
                members.push(idx);
                if !matches!(ru.strategy(), RepairStrategy::Dedicated) {
                    priorities[idx] = ru.strategy().priority_of(&model.components()[idx]);
                }
            }
            ru_crews.push(ru.effective_crews());
            ru_components.push(members);
        }

        let mut component_smu = vec![None; n];
        let mut smu_primaries = Vec::new();
        let mut smu_spares = Vec::new();
        for (smu_idx, smu) in model.spare_units().iter().enumerate() {
            let primaries = smu
                .primaries()
                .iter()
                .map(|p| index_of(p))
                .collect::<Result<Vec<_>, _>>()?;
            let spares = smu
                .spares()
                .iter()
                .map(|p| index_of(p))
                .collect::<Result<Vec<_>, _>>()?;
            for &c in primaries.iter().chain(spares.iter()) {
                component_smu[c] = Some(smu_idx);
            }
            smu_primaries.push(primaries);
            smu_spares.push(spares);
        }

        let mut trajectory = Trajectory {
            service_tree: model.service_tree(),
            degraded_tree: model.degraded_fault_tree(),
            failure_rates: model
                .components()
                .iter()
                .map(|c| c.failure_rate())
                .collect(),
            repair_rates: model.components().iter().map(|c| c.repair_rate()).collect(),
            dormancy: model
                .components()
                .iter()
                .map(|c| c.dormancy_factor())
                .collect(),
            component_names,
            component_ru,
            ru_components,
            ru_crews,
            priorities,
            smu_primaries,
            smu_spares,
            component_smu,
            statuses: vec![ComponentStatus::Operational; n],
            queues: vec![Vec::new(); model.repair_units().len()],
            time: 0.0,
            model,
        };
        trajectory.reset();
        Ok(trajectory)
    }

    /// Resets the trajectory to the model's regular initial state.
    pub fn reset(&mut self) {
        self.time = 0.0;
        self.statuses
            .iter_mut()
            .for_each(|s| *s = ComponentStatus::Operational);
        self.queues.iter_mut().for_each(Vec::clear);
        for spares in &self.smu_spares.clone() {
            for &s in spares {
                self.statuses[s] = ComponentStatus::Dormant;
            }
        }
        for (idx, component) in self.model.components().iter().enumerate() {
            if component.is_initially_failed() {
                self.fail_component(idx);
            }
        }
    }

    /// Resets the trajectory to the state right after a disaster, queueing the
    /// failed components by dispatch priority as the GOOD models of the paper do.
    ///
    /// # Errors
    ///
    /// Returns [`ArcadeError::InvalidDisaster`] for unknown components.
    pub fn reset_to_disaster(&mut self, disaster: &Disaster) -> Result<(), ArcadeError> {
        self.reset();
        let mut failed: Vec<usize> = Vec::new();
        for name in disaster.failed_components() {
            let idx = self
                .component_names
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| ArcadeError::InvalidDisaster {
                    reason: format!(
                        "unknown component `{name}` in disaster `{}`",
                        disaster.name()
                    ),
                })?;
            failed.push(idx);
        }
        failed.sort_by(|&a, &b| {
            self.priorities[b]
                .partial_cmp(&self.priorities[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for idx in failed {
            if !self.statuses[idx].is_failed() {
                self.fail_component(idx);
            }
        }
        Ok(())
    }

    /// Current simulation time in hours.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current quantitative service level.
    pub fn service_level(&self) -> f64 {
        let statuses = &self.statuses;
        let names = &self.component_names;
        self.service_tree
            .service_level(|name| match names.iter().position(|n| n == name) {
                Some(idx) if statuses[idx].provides_service() => 1.0,
                _ => 0.0,
            })
    }

    /// Whether the system is currently fully operational.
    pub fn is_fully_operational(&self) -> bool {
        let statuses = &self.statuses;
        let names = &self.component_names;
        !self
            .degraded_tree
            .is_failed(|name| match names.iter().position(|n| n == name) {
                Some(idx) => !statuses[idx].provides_service(),
                None => false,
            })
    }

    /// Current cost rate (failed components plus idle/busy crews).
    pub fn cost_rate(&self) -> f64 {
        let mut cost = 0.0;
        for (idx, component) in self.model.components().iter().enumerate() {
            cost += if self.statuses[idx].is_failed() {
                component.failed_cost_per_hour()
            } else {
                component.operational_cost_per_hour()
            };
        }
        for (ru_idx, ru) in self.model.repair_units().iter().enumerate() {
            let busy = self.ru_components[ru_idx]
                .iter()
                .filter(|&&c| self.statuses[c] == ComponentStatus::UnderRepair)
                .count();
            let idle = self.ru_crews[ru_idx].saturating_sub(busy);
            cost += idle as f64 * ru.idle_cost_per_hour() + busy as f64 * ru.busy_cost_per_hour();
        }
        cost
    }

    /// Advances the trajectory by one event, or to `horizon` if the next event
    /// would occur later (or no event is enabled). Returns the time that passed.
    pub fn step(&mut self, horizon: f64, rng: &mut StdRng) -> f64 {
        debug_assert!(horizon >= self.time);
        // Collect enabled events and their rates.
        let mut total_rate = 0.0;
        let mut events: Vec<(usize, bool, f64)> = Vec::new(); // (component, is_repair, rate)
        for c in 0..self.statuses.len() {
            match self.statuses[c] {
                ComponentStatus::Operational => {
                    events.push((c, false, self.failure_rates[c]));
                    total_rate += self.failure_rates[c];
                }
                ComponentStatus::Dormant => {
                    let rate = self.failure_rates[c] * self.dormancy[c];
                    if rate > 0.0 {
                        events.push((c, false, rate));
                        total_rate += rate;
                    }
                }
                ComponentStatus::UnderRepair => {
                    events.push((c, true, self.repair_rates[c]));
                    total_rate += self.repair_rates[c];
                }
                ComponentStatus::WaitingForRepair => {}
            }
        }
        if total_rate <= 0.0 {
            let elapsed = horizon - self.time;
            self.time = horizon;
            return elapsed;
        }
        let delay = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / total_rate;
        if self.time + delay > horizon {
            let elapsed = horizon - self.time;
            self.time = horizon;
            return elapsed;
        }
        self.time += delay;
        // Pick the event proportionally to its rate.
        let mut pick = rng.gen::<f64>() * total_rate;
        let mut chosen = events[events.len() - 1];
        for event in &events {
            if pick < event.2 {
                chosen = *event;
                break;
            }
            pick -= event.2;
        }
        let (component, is_repair, _) = chosen;
        if is_repair {
            self.repair_component(component);
        } else {
            self.fail_component(component);
        }
        delay
    }

    fn fail_component(&mut self, c: usize) {
        let was_active = self.statuses[c] == ComponentStatus::Operational;
        self.statuses[c] = ComponentStatus::WaitingForRepair;
        if was_active {
            if let Some(smu) = self.component_smu[c] {
                self.rebalance_spares(smu);
            }
        }
        if let Some(ru) = self.component_ru[c] {
            self.queues[ru].push(c);
            self.dispatch(ru);
        }
    }

    fn repair_component(&mut self, c: usize) {
        self.statuses[c] = ComponentStatus::Operational;
        if let Some(smu) = self.component_smu[c] {
            if self.smu_spares[smu].contains(&c) {
                self.statuses[c] = ComponentStatus::Dormant;
            }
            self.rebalance_spares(smu);
        }
        if let Some(ru) = self.component_ru[c] {
            self.dispatch(ru);
        }
    }

    fn dispatch(&mut self, ru: usize) {
        loop {
            let busy = self.ru_components[ru]
                .iter()
                .filter(|&&c| self.statuses[c] == ComponentStatus::UnderRepair)
                .count();
            if busy >= self.ru_crews[ru] || self.queues[ru].is_empty() {
                return;
            }
            let mut best_pos = 0;
            for (pos, &candidate) in self.queues[ru].iter().enumerate() {
                if self.priorities[candidate] > self.priorities[self.queues[ru][best_pos]] + 1e-12 {
                    best_pos = pos;
                }
            }
            let chosen = self.queues[ru].remove(best_pos);
            self.statuses[chosen] = ComponentStatus::UnderRepair;
        }
    }

    fn rebalance_spares(&mut self, smu: usize) {
        let desired = self.smu_primaries[smu].len();
        loop {
            let active = self.smu_primaries[smu]
                .iter()
                .chain(self.smu_spares[smu].iter())
                .filter(|&&c| self.statuses[c] == ComponentStatus::Operational)
                .count();
            if active < desired {
                let dormant = self.smu_spares[smu]
                    .iter()
                    .copied()
                    .find(|&s| self.statuses[s] == ComponentStatus::Dormant);
                match dormant {
                    Some(s) => self.statuses[s] = ComponentStatus::Operational,
                    None => return,
                }
            } else if active > desired {
                let surplus = self.smu_spares[smu]
                    .iter()
                    .rev()
                    .copied()
                    .find(|&s| self.statuses[s] == ComponentStatus::Operational);
                match surplus {
                    Some(s) => self.statuses[s] = ComponentStatus::Dormant,
                    None => return,
                }
            } else {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcade_core::{BasicComponent, RepairUnit};
    use fault_tree::{StructureNode, SystemStructure};
    use rand::SeedableRng;

    fn pump_model() -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::component("pump"));
        ArcadeModel::builder("pump", structure)
            .component(
                BasicComponent::from_mttf_mttr("pump", 10.0, 1.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["pump"])
                    .with_idle_cost(1.0),
            )
            .disaster(Disaster::new("down", ["pump"]).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn initial_state_is_operational() {
        let model = pump_model();
        let trajectory = Trajectory::new(&model).unwrap();
        assert_eq!(trajectory.time(), 0.0);
        assert!(trajectory.is_fully_operational());
        assert_eq!(trajectory.service_level(), 1.0);
        assert_eq!(trajectory.cost_rate(), 1.0); // idle crew
    }

    #[test]
    fn disaster_reset_starts_failed() {
        let model = pump_model();
        let mut trajectory = Trajectory::new(&model).unwrap();
        let disaster = model.disaster("down").unwrap();
        trajectory.reset_to_disaster(disaster).unwrap();
        assert!(!trajectory.is_fully_operational());
        assert_eq!(trajectory.service_level(), 0.0);
        assert_eq!(trajectory.cost_rate(), 3.0); // failed component, busy crew
        let rogue = Disaster::new("rogue", ["ghost"]).unwrap();
        assert!(trajectory.reset_to_disaster(&rogue).is_err());
    }

    #[test]
    fn stepping_advances_time_and_toggles_state() {
        let model = pump_model();
        let mut trajectory = Trajectory::new(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut saw_failure = false;
        for _ in 0..200 {
            trajectory.step(1e9, &mut rng);
            if !trajectory.is_fully_operational() {
                saw_failure = true;
            }
        }
        assert!(saw_failure);
        assert!(trajectory.time() > 0.0);
    }

    #[test]
    fn step_respects_the_horizon() {
        let model = pump_model();
        let mut trajectory = Trajectory::new(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        // A tiny horizon is hit before the first event with overwhelming probability.
        let elapsed = trajectory.step(1e-9, &mut rng);
        assert!(elapsed <= 1e-9);
        assert_eq!(trajectory.time(), 1e-9);
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let model = pump_model();
        let mut trajectory = Trajectory::new(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            trajectory.step(1e9, &mut rng);
        }
        trajectory.reset();
        assert_eq!(trajectory.time(), 0.0);
        assert!(trajectory.is_fully_operational());
    }
}
