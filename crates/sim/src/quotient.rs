//! Quotient-resident Monte-Carlo: trajectories on the lumped solver chain.
//!
//! The flat engine in [`crate::engine`] replays the component-level Arcade
//! semantics — useful as an independent cross-check, but every jump pays the
//! full product state space (Line 1 FRF-1: 111,809 states). This module runs
//! trajectories directly on the [`CompiledQuotient`] the exact solvers use
//! (the same model: 449 blocks), with three ingredients:
//!
//! * **O(1) jumps** — per-block Walker/Vose [`AliasTable`]s over the
//!   quotient's outgoing rates replace the linear CDF scan;
//! * **deterministic parallel batches** — replications ride
//!   [`ctmc::ExecOptions`] in fixed-size batches with counter-based
//!   per-replication streams ([`crate::rng`]), and batch statistics merge in
//!   replication order, so results are bit-identical for any thread count;
//! * **importance sampling** — failure biasing inflates the rates of
//!   failure-class transitions by [`SimulationOptions::bias`] and accumulates
//!   the trajectory likelihood ratio, so rare disaster-and-repair paths are
//!   actually sampled; estimators reweight by the ratio and stay unbiased
//!   (the `lr_mean ≈ 1` certificate in [`MeasureReport`] witnesses it).
//!
//! A quotient transition counts as *failure-class* when it makes the block
//! strictly worse: the cost reward rises, the service level drops, or an
//! operational block becomes non-operational. On the water-treatment models
//! these are exactly the component-failure moves; repairs travel the other
//! way and keep their natural rates.

use std::borrow::Cow;

use arcade_core::{ArcadeError, CompiledQuotient};
use arcade_telemetry::Recorder;
use ctmc::exec::map_ordered;
use rand::rngs::StdRng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::alias::AliasTable;
use crate::rng::{exp_draw, replication_rng};
use crate::simulator::SimulationOptions;
use crate::stats::{Estimate, RunningStats, Tail, TailEstimate};

/// Tolerance for "strictly worse" comparisons in the failure classifier.
const CLASS_EPS: f64 = 1e-9;

/// A Monte-Carlo measure with its optional tail-risk view and, for
/// importance-sampled runs, the likelihood-ratio certificate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasureReport {
    /// The (likelihood-reweighted) mean estimate with 95% half-width.
    pub estimate: Estimate,
    /// VaR/CVaR of the per-replication loss, when the measure has a tail.
    pub tail: Option<TailEstimate>,
    /// Mean of the likelihood ratios — present only under biasing, where it
    /// must be ≈ 1 (its CI containing 1 certifies the reweighting).
    pub lr_mean: Option<Estimate>,
}

/// Per-block scalars of the flattened sampler set. 32-byte aligned so one
/// block never straddles two cache lines.
#[derive(Debug, Clone, Copy)]
#[repr(align(32))]
struct BlockScalars {
    /// Exit rate under the biased dynamics (equal to the natural exit rate
    /// when unbiased).
    exit_bias: f64,
    /// `1 / exit_bias`, precomputed so the hot loop multiplies instead of
    /// dividing (zero for absorbing blocks, where it is never used).
    inv_exit_bias: f64,
    /// `exit_bias − exit_orig`: the sojourn likelihood-ratio exponent per
    /// unit time (exactly zero when unbiased).
    delta_exit: f64,
    /// First slot of this block's alias row in [`SamplerSet::slots`].
    row: u32,
    /// Number of slots in the row (the block's out-degree).
    len: u32,
}

/// One packed alias slot: the acceptance threshold plus *both* possible
/// destinations, so the unbiased jump reads exactly one 16-byte slot.
#[derive(Debug, Clone, Copy)]
struct PackedSlot {
    /// Acceptance threshold of the slot.
    prob: f64,
    /// Destination block when the draw accepts the slot.
    target_accept: u32,
    /// Destination block when the draw falls through to the alias partner.
    target_alias: u32,
}

/// The sampler state for one bias factor, flattened CSR-style: per-block
/// scalars index into one contiguous slot array, so a jump costs one scalar
/// read (L1-resident for solver-sized quotients) plus one slot read instead
/// of chasing per-block heap allocations.
#[derive(Debug, Clone)]
struct SamplerSet {
    blocks: Vec<BlockScalars>,
    slots: Vec<PackedSlot>,
    /// Absolute index of each slot's alias partner — only the biased
    /// likelihood-ratio lookup needs it.
    alias_index: Vec<u32>,
    /// `ln(r_orig / r_bias)` per absolute slot; empty when unbiased.
    log_rate_ratio: Vec<f64>,
}

/// One trajectory over the quotient, advanced jump by jump. Measure bodies
/// drive it through [`Walk::step`] and read the block projections.
pub struct Walk<'a> {
    set: &'a SamplerSet,
    operational: &'a [bool],
    service: &'a [f64],
    cost: &'a [f64],
    state: usize,
    time: f64,
    log_lr: f64,
    rng: StdRng,
}

impl Walk<'_> {
    /// The current block.
    pub fn state(&self) -> usize {
        self.state
    }

    /// Simulated time so far.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Whether the current block is fully operational.
    pub fn operational(&self) -> bool {
        self.operational[self.state]
    }

    /// Service level of the current block.
    pub fn service_level(&self) -> f64 {
        self.service[self.state]
    }

    /// Cost rate of the current block.
    pub fn cost_rate(&self) -> f64 {
        self.cost[self.state]
    }

    /// The accumulated likelihood ratio `dP_orig/dP_bias` of the path so far
    /// (exactly 1 for unbiased runs, where the exponent never moves off 0).
    pub fn weight(&self) -> f64 {
        if self.log_lr == 0.0 {
            1.0
        } else {
            self.log_lr.exp()
        }
    }

    /// Advances by one jump, or to `horizon` if the next jump would overshoot
    /// (or the block is absorbing). Returns the elapsed time. The sojourn is
    /// a ziggurat `Exp(1)` draw ([`crate::rng::exp_draw`]) scaled by the
    /// precomputed inverse exit rate — no logarithm or division on the hot
    /// path. The likelihood ratio picks up the sojourn factor
    /// `exp((λ_bias − λ_orig)·τ)` and, on a jump, the transition factor
    /// `r_orig/r_bias` — including the truncated final sojourn, so the path
    /// weight is exact for horizon-capped trajectories.
    #[inline]
    pub fn step(&mut self, horizon: f64) -> f64 {
        let b = self.set.blocks[self.state];
        if b.exit_bias <= 0.0 {
            // Absorbing under both dynamics (biasing scales rates, it never
            // creates or removes transitions): sit out the horizon.
            let elapsed = horizon - self.time;
            self.time = horizon;
            return elapsed;
        }
        let sojourn = exp_draw(&mut self.rng) * b.inv_exit_bias;
        let next = self.time + sojourn;
        if next >= horizon {
            let elapsed = horizon - self.time;
            self.log_lr += b.delta_exit * elapsed;
            self.time = horizon;
            return elapsed;
        }
        self.log_lr += b.delta_exit * sojourn;
        // The O(1) alias jump from a single 64-bit draw: the high half picks
        // the slot (Lemire reduction), the low half is the acceptance
        // fraction.
        let r = self.rng.next_u64();
        let k = (((r >> 32) * b.len as u64) >> 32) as u32;
        let idx = (b.row + k) as usize;
        let slot = self.set.slots[idx];
        let frac = (r & 0xFFFF_FFFF) as f64 * (1.0 / 4_294_967_296.0);
        let accept = frac <= slot.prob;
        if !self.set.log_rate_ratio.is_empty() {
            let chosen = if accept {
                idx
            } else {
                self.set.alias_index[idx] as usize
            };
            self.log_lr += self.set.log_rate_ratio[chosen];
        }
        self.state = if accept {
            slot.target_accept
        } else {
            slot.target_alias
        } as usize;
        self.time = next;
        sojourn
    }
}

/// Ordered per-replication outputs plus the streaming statistics merged in
/// replication order.
struct ReplicationSet {
    /// `(loss, likelihood weight)` per replication, in replication order.
    samples: Vec<(f64, f64)>,
    /// Streaming stats of the reweighted samples `w·x`.
    weighted: RunningStats,
    /// Streaming stats of the weights `w` (the certificate).
    weights: RunningStats,
}

/// Monte-Carlo estimator running on the lumped quotient chain.
#[derive(Debug, Clone)]
pub struct QuotientSimulator<'a> {
    quotient: &'a CompiledQuotient,
    /// Unbiased sampler set, built once at construction.
    natural: SamplerSet,
}

impl<'a> QuotientSimulator<'a> {
    /// Builds the simulator and its unbiased alias tables (O(transitions),
    /// deterministic: tables follow the chain's CSR order).
    pub fn new(quotient: &'a CompiledQuotient) -> QuotientSimulator<'a> {
        let natural = build_samplers(quotient, 1.0);
        QuotientSimulator { quotient, natural }
    }

    /// The quotient being simulated.
    pub fn quotient(&self) -> &CompiledQuotient {
        self.quotient
    }

    /// Estimates interval unavailability: the expected fraction of `[0,
    /// horizon]` spent in non-operational blocks, starting from the initial
    /// block. For horizons well past mixing this converges to `1 −
    /// steady-state availability`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive horizons and invalid options.
    pub fn unavailability(
        &self,
        horizon: f64,
        options: &SimulationOptions,
    ) -> Result<MeasureReport, ArcadeError> {
        check_horizon(horizon)?;
        let start = self.quotient.initial();
        let set = self.replicate(options, start, false, |walk| {
            let mut down = 0.0;
            while walk.time() < horizon {
                let was_down = !walk.operational();
                let elapsed = walk.step(horizon);
                if was_down {
                    down += elapsed;
                }
            }
            down / horizon
        })?;
        Ok(self.report(set, None, options))
    }

    /// Estimates the time to first failure (entry into a non-operational
    /// block), capped at `horizon`. The tail view is the *lower* tail: the
    /// `alpha`-VaR is the time such that failure strikes earlier with
    /// probability `1 − alpha`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive horizons, `alpha` outside `(0, 1)` and invalid
    /// options.
    pub fn time_to_failure(
        &self,
        horizon: f64,
        alpha: f64,
        options: &SimulationOptions,
    ) -> Result<MeasureReport, ArcadeError> {
        check_horizon(horizon)?;
        check_alpha(alpha)?;
        let start = self.quotient.initial();
        let set = self.replicate(options, start, true, |walk| loop {
            if !walk.operational() {
                return walk.time();
            }
            if walk.time() >= horizon {
                return horizon;
            }
            walk.step(horizon);
        })?;
        Ok(self.report(set, Some((alpha, Tail::Lower)), options))
    }

    /// Estimates the cost accumulated over `[0, horizon]`, optionally
    /// starting right after a named disaster. The tail view is the *upper*
    /// tail: cost-VaR/CVaR per the sorted-loss estimator.
    ///
    /// # Errors
    ///
    /// Rejects unknown disasters, non-positive horizons, `alpha` outside
    /// `(0, 1)` and invalid options.
    pub fn accumulated_cost(
        &self,
        disaster: Option<&str>,
        horizon: f64,
        alpha: f64,
        options: &SimulationOptions,
    ) -> Result<MeasureReport, ArcadeError> {
        check_horizon(horizon)?;
        check_alpha(alpha)?;
        let start = self.quotient.start_for(disaster)?;
        let set = self.replicate(options, start, true, |walk| {
            let mut cost = 0.0;
            while walk.time() < horizon {
                let rate = walk.cost_rate();
                let elapsed = walk.step(horizon);
                cost += rate * elapsed;
            }
            cost
        })?;
        Ok(self.report(set, Some((alpha, Tail::Upper)), options))
    }

    /// Estimates survivability: the probability of reaching a service level
    /// of at least `service_level` within `deadline` hours after `disaster`.
    ///
    /// # Errors
    ///
    /// Rejects unknown disasters, negative deadlines and invalid options.
    pub fn survivability(
        &self,
        disaster: &str,
        service_level: f64,
        deadline: f64,
        options: &SimulationOptions,
    ) -> Result<MeasureReport, ArcadeError> {
        if !(deadline.is_finite() && deadline >= 0.0) {
            return Err(ArcadeError::InvalidParameter {
                reason: format!("survivability deadline must be finite and >= 0, got {deadline}"),
            });
        }
        let start = self.quotient.start_for(Some(disaster))?;
        let set = self.replicate(options, start, false, |walk| loop {
            if walk.service_level() >= service_level - 1e-12 {
                return 1.0;
            }
            if walk.time() >= deadline {
                return 0.0;
            }
            walk.step(deadline);
        })?;
        Ok(self.report(set, None, options))
    }

    /// The sampler set for a bias factor: the precomputed natural tables when
    /// unbiased, a freshly built biased set otherwise.
    fn sampler_set(&self, bias: f64) -> Cow<'_, SamplerSet> {
        if bias == 1.0 {
            Cow::Borrowed(&self.natural)
        } else {
            Cow::Owned(build_samplers(self.quotient, bias))
        }
    }

    /// Runs `options.replications` trajectories from block `start` in batches
    /// of `options.batch` over the `options.exec` worker pool. Per-batch
    /// statistics accumulate serially and merge in batch order, so the result
    /// depends only on `(seed, replications, batch)`. Per-replication losses
    /// are retained only when `want_tail` asks for them (the tail estimator
    /// sorts them); weight statistics only under biasing, where the
    /// certificate needs them.
    fn replicate<F>(
        &self,
        options: &SimulationOptions,
        start: usize,
        want_tail: bool,
        body: F,
    ) -> Result<ReplicationSet, ArcadeError>
    where
        F: Fn(&mut Walk<'_>) -> f64 + Sync,
    {
        check_options(options)?;
        let recorder = Recorder::current();
        let mut span = recorder.span("simulate");
        span.count("replications", options.replications as u64);
        span.count("states", self.quotient.num_states() as u64);
        let biased = options.bias != 1.0;
        let set = self.sampler_set(options.bias);
        let set: &SamplerSet = &set;
        let operational = self.quotient.operational_mask();
        let service = self.quotient.service_levels();
        let cost = self.quotient.cost_rewards().state_rewards();

        let ranges = batch_ranges(options.replications, options.batch);
        span.count("batches", ranges.len() as u64);
        struct BatchOutput {
            samples: Vec<(f64, f64)>,
            weighted: RunningStats,
            weights: RunningStats,
        }
        let outputs = map_ordered(&ranges, options.exec, |range| {
            let mut samples = Vec::with_capacity(if want_tail { range.len() } else { 0 });
            let mut weighted = RunningStats::new();
            let mut weights = RunningStats::new();
            for replication in range.clone() {
                let mut walk = Walk {
                    set,
                    operational,
                    service,
                    cost,
                    state: start,
                    time: 0.0,
                    log_lr: 0.0,
                    rng: replication_rng(options.seed, replication as u64),
                };
                let x = body(&mut walk);
                let w = walk.weight();
                weighted.push(w * x);
                if biased {
                    weights.push(w);
                }
                if want_tail {
                    samples.push((x, w));
                }
            }
            BatchOutput {
                samples,
                weighted,
                weights,
            }
        });

        let mut merged = ReplicationSet {
            samples: Vec::with_capacity(if want_tail { options.replications } else { 0 }),
            weighted: RunningStats::new(),
            weights: RunningStats::new(),
        };
        // The LR-certificate trajectory: the running mean of the likelihood
        // ratios after each batch merge (it must drift to 1 as replications
        // accumulate — see `MeasureReport::lr_mean`). Only read under bias;
        // the unbiased path skips the weight statistics entirely.
        let mut probe = recorder.probe("lr-certificate", "biased");
        for output in outputs {
            merged.samples.extend(output.samples);
            merged.weighted.merge(&output.weighted);
            merged.weights.merge(&output.weights);
            if biased && probe.is_active() {
                probe.record(merged.weights.mean());
            }
        }
        Ok(merged)
    }

    fn report(
        &self,
        set: ReplicationSet,
        tail: Option<(f64, Tail)>,
        options: &SimulationOptions,
    ) -> MeasureReport {
        MeasureReport {
            estimate: set.weighted.estimate(),
            tail: tail.map(|(alpha, t)| TailEstimate::from_weighted_losses(&set.samples, alpha, t)),
            lr_mean: (options.bias != 1.0).then(|| set.weights.estimate()),
        }
    }
}

/// Splits `0..replications` into consecutive ranges of at most `batch`.
fn batch_ranges(replications: usize, batch: usize) -> Vec<std::ops::Range<usize>> {
    let batch = batch.max(1);
    (0..replications.div_ceil(batch))
        .map(|b| (b * batch)..((b + 1) * batch).min(replications))
        .collect()
}

/// Whether the quotient transition `from → to` belongs to the failure class:
/// it makes the block strictly worse in at least one projection.
fn is_failure_transition(
    from: usize,
    to: usize,
    operational: &[bool],
    service: &[f64],
    cost: &[f64],
) -> bool {
    cost[to] > cost[from] + CLASS_EPS
        || service[to] < service[from] - CLASS_EPS
        || (operational[from] && !operational[to])
}

/// Builds the flattened sampler set for a bias factor. Deterministic: rows
/// in state order, slots in the chain's CSR column order (each row's alias
/// structure comes from the deterministic [`AliasTable`] construction).
fn build_samplers(quotient: &CompiledQuotient, bias: f64) -> SamplerSet {
    let chain = quotient.chain();
    let matrix = chain.rate_matrix();
    let operational = quotient.operational_mask();
    let service = quotient.service_levels();
    let cost = quotient.cost_rewards().state_rewards();
    let biased = bias != 1.0;
    let mut set = SamplerSet {
        blocks: Vec::with_capacity(chain.num_states()),
        slots: Vec::new(),
        alias_index: Vec::new(),
        log_rate_ratio: Vec::new(),
    };
    for from in 0..chain.num_states() {
        let (cols, rates) = matrix.row(from);
        let mut transitions = Vec::with_capacity(cols.len());
        let mut exit_orig = 0.0;
        let mut exit_bias = 0.0;
        for (&to, &rate) in cols.iter().zip(rates) {
            let factor = if biased && is_failure_transition(from, to, operational, service, cost) {
                bias
            } else {
                1.0
            };
            let biased_rate = rate * factor;
            exit_orig += rate;
            exit_bias += biased_rate;
            transitions.push((to, biased_rate));
            if biased {
                set.log_rate_ratio.push(-factor.ln());
            }
        }
        let row = set.slots.len() as u32;
        set.blocks.push(BlockScalars {
            exit_bias,
            inv_exit_bias: if exit_bias > 0.0 {
                1.0 / exit_bias
            } else {
                0.0
            },
            delta_exit: exit_bias - exit_orig,
            row,
            len: transitions.len() as u32,
        });
        let table = AliasTable::new(&transitions);
        for k in 0..table.len() {
            let partner = table.alias_of(k);
            set.slots.push(PackedSlot {
                prob: table.acceptance(k),
                target_accept: table.target(k) as u32,
                target_alias: table.target(partner) as u32,
            });
            set.alias_index.push(row + partner as u32);
        }
    }
    set
}

fn check_horizon(horizon: f64) -> Result<(), ArcadeError> {
    if horizon.is_finite() && horizon > 0.0 {
        Ok(())
    } else {
        Err(ArcadeError::InvalidParameter {
            reason: format!("simulation horizon must be finite and > 0, got {horizon}"),
        })
    }
}

fn check_alpha(alpha: f64) -> Result<(), ArcadeError> {
    if alpha > 0.0 && alpha < 1.0 {
        Ok(())
    } else {
        Err(ArcadeError::InvalidParameter {
            reason: format!("tail level alpha must lie in (0, 1), got {alpha}"),
        })
    }
}

fn check_options(options: &SimulationOptions) -> Result<(), ArcadeError> {
    if options.batch == 0 {
        return Err(ArcadeError::InvalidParameter {
            reason: "simulation batch size must be at least 1".into(),
        });
    }
    if !(options.bias.is_finite() && options.bias > 0.0) {
        return Err(ArcadeError::InvalidParameter {
            reason: format!(
                "failure-biasing factor must be finite and > 0, got {}",
                options.bias
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcade_core::{
        ArcadeModel, BasicComponent, ComposerOptions, Disaster, RepairStrategy, RepairUnit,
    };
    use ctmc::ExecOptions;
    use fault_tree::{StructureNode, SystemStructure};

    fn pump_model(mttf: f64) -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::component("pump"));
        ArcadeModel::builder("pump", structure)
            .component(
                BasicComponent::from_mttf_mttr("pump", mttf, 1.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["pump"])
                    .with_idle_cost(1.0),
            )
            .disaster(Disaster::new("down", ["pump"]).unwrap())
            .build()
            .unwrap()
    }

    fn quotient_of(model: &ArcadeModel) -> CompiledQuotient {
        CompiledQuotient::of_model(model, ComposerOptions::default()).unwrap()
    }

    fn options(replications: usize) -> SimulationOptions {
        SimulationOptions {
            replications,
            seed: 42,
            exec: ExecOptions::with_threads(2),
            ..Default::default()
        }
    }

    #[test]
    fn unavailability_matches_the_two_state_formula() {
        let model = pump_model(100.0);
        let quotient = quotient_of(&model);
        let sim = QuotientSimulator::new(&quotient);
        let report = sim.unavailability(5000.0, &options(400)).unwrap();
        let expected = 1.0 / 101.0;
        assert!(
            report.estimate.contains_with_slack(expected, 0.005),
            "{report:?}"
        );
        assert!(report.lr_mean.is_none());
    }

    #[test]
    fn survivability_is_the_repair_cdf() {
        let model = pump_model(100.0);
        let quotient = quotient_of(&model);
        let sim = QuotientSimulator::new(&quotient);
        let report = sim.survivability("down", 1.0, 2.0, &options(4000)).unwrap();
        let expected = 1.0 - (-2.0f64).exp();
        assert!(
            report.estimate.contains_with_slack(expected, 0.03),
            "{report:?}"
        );
    }

    #[test]
    fn accumulated_cost_reports_an_upper_tail() {
        let model = pump_model(100.0);
        let quotient = quotient_of(&model);
        let sim = QuotientSimulator::new(&quotient);
        let report = sim
            .accumulated_cost(Some("down"), 1.0, 0.9, &options(2000))
            .unwrap();
        // Starting failed with failed-cost 3 and idle-cost 1: the cost over
        // one hour lies in (1, 3).
        assert!(
            report.estimate.mean > 1.0 && report.estimate.mean < 3.0,
            "{report:?}"
        );
        let tail = report.tail.unwrap();
        assert!(tail.cvar >= tail.var, "{tail:?}");
        assert!(tail.var >= report.estimate.mean, "{tail:?}");
    }

    #[test]
    fn time_to_failure_matches_the_exponential_quantiles() {
        let model = pump_model(100.0);
        let quotient = quotient_of(&model);
        let sim = QuotientSimulator::new(&quotient);
        let report = sim
            .time_to_failure(100_000.0, 0.95, &options(4000))
            .unwrap();
        // TTF ~ Exp(1/100): mean 100; the lower-tail 0.95-VaR is the 5%
        // quantile, −100·ln(0.95) ≈ 5.13.
        assert!(
            report.estimate.contains_with_slack(100.0, 5.0),
            "{report:?}"
        );
        let tail = report.tail.unwrap();
        assert!((tail.var - 5.13).abs() < 1.5, "{tail:?}");
        // The risky tail of a TTF is the *short* lifetimes.
        assert!(tail.cvar <= tail.var, "{tail:?}");
    }

    #[test]
    fn biased_runs_stay_unbiased_and_certify_it() {
        // A genuinely rare failure (mttf 1e5, horizon 10): naive sampling sees
        // essentially no events, biasing by 100 sees ~1% of paths fail while
        // the likelihood ratio stays well-conditioned.
        let model = pump_model(1e5);
        let quotient = quotient_of(&model);
        let sim = QuotientSimulator::new(&quotient);
        let unbiased = sim.unavailability(10.0, &options(3000)).unwrap();
        let mut biased_options = options(3000);
        biased_options.bias = 100.0;
        let biased = sim.unavailability(10.0, &biased_options).unwrap();
        // The biased run actually observes the rare event...
        assert!(biased.estimate.mean > 0.0, "{biased:?}");
        // ...estimates the same quantity (intervals overlap)...
        assert!(
            (biased.estimate.mean - unbiased.estimate.mean).abs()
                <= biased.estimate.half_width + unbiased.estimate.half_width + 1e-4,
            "unbiased {unbiased:?} vs biased {biased:?}"
        );
        // ...and the likelihood-ratio certificate covers 1.
        let lr = biased.lr_mean.unwrap();
        assert!(lr.contains_with_slack(1.0, 0.02), "{lr:?}");
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let model = pump_model(100.0);
        let quotient = quotient_of(&model);
        let sim = QuotientSimulator::new(&quotient);
        let mut reference = None;
        for threads in [1usize, 2, 4, 8] {
            let mut opts = options(700);
            opts.exec = ExecOptions::with_threads(threads);
            opts.bias = 25.0;
            let report = sim.unavailability(150.0, &opts).unwrap();
            let bits = (
                report.estimate.mean.to_bits(),
                report.estimate.half_width.to_bits(),
                report.lr_mean.unwrap().mean.to_bits(),
            );
            match &reference {
                None => reference = Some(bits),
                Some(expected) => assert_eq!(*expected, bits, "threads {threads}"),
            }
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let model = pump_model(100.0);
        let quotient = quotient_of(&model);
        let sim = QuotientSimulator::new(&quotient);
        assert!(sim.unavailability(0.0, &options(10)).is_err());
        assert!(sim.time_to_failure(10.0, 1.0, &options(10)).is_err());
        let mut bad = options(10);
        bad.bias = 0.0;
        assert!(sim.unavailability(10.0, &bad).is_err());
        let mut bad = options(10);
        bad.batch = 0;
        assert!(sim.unavailability(10.0, &bad).is_err());
        assert!(sim.survivability("ghost", 1.0, 1.0, &options(10)).is_err());
    }
}
