//! The public simulation API: replicated estimators for the paper's measures.

use arcade_core::{ArcadeError, ArcadeModel, Disaster};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::engine::Trajectory;
use crate::stats::Estimate;

/// Options shared by all estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationOptions {
    /// Number of independent replications.
    pub replications: usize,
    /// Base random seed; replication `i` uses `seed + i`.
    pub seed: u64,
    /// Number of worker threads (`1` disables parallelism).
    pub threads: usize,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            replications: 10_000,
            seed: 0x5EED,
            threads: 4,
        }
    }
}

/// Monte-Carlo estimator for the dependability measures of an Arcade model.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    model: &'a ArcadeModel,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given model.
    ///
    /// # Errors
    ///
    /// Returns an error if a trajectory cannot be prepared for the model.
    pub fn new(model: &'a ArcadeModel) -> Result<Self, ArcadeError> {
        // Fail fast on models the engine cannot handle.
        Trajectory::new(model)?;
        Ok(Simulator { model })
    }

    /// The model being simulated.
    pub fn model(&self) -> &ArcadeModel {
        self.model
    }

    /// Estimates reliability: the probability that the system never leaves the
    /// fully-operational states within the mission time.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation errors.
    pub fn reliability(
        &self,
        mission_time: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, None, move |trajectory, rng| {
            while trajectory.time() < mission_time {
                if !trajectory.is_fully_operational() {
                    return 0.0;
                }
                trajectory.step(mission_time, rng);
            }
            if trajectory.is_fully_operational() {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Estimates the probability that the system is fully operational at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation errors.
    pub fn point_availability(
        &self,
        t: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, None, move |trajectory, rng| {
            while trajectory.time() < t {
                trajectory.step(t, rng);
            }
            if trajectory.is_fully_operational() {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Estimates long-run availability as the fraction of time the system is
    /// fully operational during `[0, horizon]` (each replication contributes
    /// one time-average).
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation errors.
    pub fn steady_state_availability(
        &self,
        horizon: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, None, move |trajectory, rng| {
            let mut up_time = 0.0;
            while trajectory.time() < horizon {
                let was_up = trajectory.is_fully_operational();
                let elapsed = trajectory.step(horizon, rng);
                if was_up {
                    up_time += elapsed;
                }
            }
            up_time / horizon
        })
    }

    /// Estimates survivability: the probability of reaching a service level of
    /// at least `service_level` within `deadline` hours after the disaster.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation and disaster errors.
    pub fn survivability(
        &self,
        disaster: &Disaster,
        service_level: f64,
        deadline: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, Some(disaster), move |trajectory, rng| loop {
            if trajectory.service_level() >= service_level - 1e-12 {
                return 1.0;
            }
            if trajectory.time() >= deadline {
                return 0.0;
            }
            trajectory.step(deadline, rng);
        })
    }

    /// Estimates the expected accumulated repair cost over `[0, horizon]`,
    /// optionally starting right after a disaster.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation and disaster errors.
    pub fn accumulated_cost(
        &self,
        disaster: Option<&Disaster>,
        horizon: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, disaster, move |trajectory, rng| {
            let mut cost = 0.0;
            while trajectory.time() < horizon {
                let rate = trajectory.cost_rate();
                let elapsed = trajectory.step(horizon, rng);
                cost += rate * elapsed;
            }
            cost
        })
    }

    /// Estimates the expected instantaneous cost rate at time `t`, optionally
    /// starting right after a disaster.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation and disaster errors.
    pub fn instantaneous_cost(
        &self,
        disaster: Option<&Disaster>,
        t: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, disaster, move |trajectory, rng| {
            while trajectory.time() < t {
                trajectory.step(t, rng);
            }
            trajectory.cost_rate()
        })
    }

    /// Runs `options.replications` independent replications of `body`, in
    /// parallel across `options.threads` workers, and aggregates the samples.
    fn replicate<F>(
        &self,
        options: &SimulationOptions,
        disaster: Option<&Disaster>,
        body: F,
    ) -> Result<Estimate, ArcadeError>
    where
        F: Fn(&mut Trajectory<'_>, &mut StdRng) -> f64 + Sync,
    {
        let threads = options.threads.max(1);
        let replications = options.replications;
        if replications == 0 {
            return Ok(Estimate::from_samples(&[]));
        }

        // Validate the disaster once up front so worker threads cannot fail.
        if let Some(d) = disaster {
            Trajectory::new(self.model)?.reset_to_disaster(d)?;
        }

        let run_range = |range: std::ops::Range<usize>| -> Result<Vec<f64>, ArcadeError> {
            let mut samples = Vec::with_capacity(range.len());
            let mut trajectory = Trajectory::new(self.model)?;
            for replication in range {
                let mut rng = StdRng::seed_from_u64(options.seed.wrapping_add(replication as u64));
                match disaster {
                    Some(d) => trajectory.reset_to_disaster(d)?,
                    None => trajectory.reset(),
                }
                samples.push(body(&mut trajectory, &mut rng));
            }
            Ok(samples)
        };

        if threads == 1 {
            let samples = run_range(0..replications)?;
            return Ok(Estimate::from_samples(&samples));
        }

        let chunk = replications.div_ceil(threads);
        let results = std::sync::Mutex::new(Vec::with_capacity(replications));
        let first_error = std::sync::Mutex::new(None::<ArcadeError>);
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let start = worker * chunk;
                let end = ((worker + 1) * chunk).min(replications);
                if start >= end {
                    continue;
                }
                let results = &results;
                let first_error = &first_error;
                let run_range = &run_range;
                scope.spawn(move || match run_range(start..end) {
                    Ok(samples) => results.lock().expect("no worker panicked").extend(samples),
                    Err(err) => {
                        let mut slot = first_error.lock().expect("no worker panicked");
                        if slot.is_none() {
                            *slot = Some(err);
                        }
                    }
                });
            }
        });
        if let Some(err) = first_error.into_inner().expect("no worker panicked") {
            return Err(err);
        }
        let samples = results.into_inner().expect("no worker panicked");
        Ok(Estimate::from_samples(&samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcade_core::{BasicComponent, RepairStrategy, RepairUnit};
    use fault_tree::{StructureNode, SystemStructure};

    fn pump_model() -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::component("pump"));
        ArcadeModel::builder("pump", structure)
            .component(
                BasicComponent::from_mttf_mttr("pump", 100.0, 1.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["pump"])
                    .with_idle_cost(1.0),
            )
            .disaster(Disaster::new("down", ["pump"]).unwrap())
            .build()
            .unwrap()
    }

    fn options(replications: usize) -> SimulationOptions {
        SimulationOptions {
            replications,
            seed: 42,
            threads: 2,
        }
    }

    #[test]
    fn reliability_matches_exponential_lifetime() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let estimate = simulator.reliability(50.0, &options(4000)).unwrap();
        let expected = (-50.0f64 / 100.0).exp();
        assert!(
            estimate.contains_with_slack(expected, 0.02),
            "estimate {estimate:?} vs expected {expected}"
        );
    }

    #[test]
    fn point_availability_approaches_steady_state() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let estimate = simulator.point_availability(500.0, &options(4000)).unwrap();
        let expected = 100.0 / 101.0;
        assert!(estimate.contains_with_slack(expected, 0.02), "{estimate:?}");
    }

    #[test]
    fn long_run_availability_time_average() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let estimate = simulator
            .steady_state_availability(2000.0, &options(300))
            .unwrap();
        let expected = 100.0 / 101.0;
        assert!(estimate.contains_with_slack(expected, 0.01), "{estimate:?}");
    }

    #[test]
    fn survivability_is_the_repair_cdf() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let disaster = model.disaster("down").unwrap();
        let estimate = simulator
            .survivability(disaster, 1.0, 2.0, &options(4000))
            .unwrap();
        let expected = 1.0 - (-2.0f64).exp();
        assert!(estimate.contains_with_slack(expected, 0.03), "{estimate:?}");
        // Service level 0 is reached immediately.
        let trivially = simulator
            .survivability(disaster, 0.0, 0.0, &options(100))
            .unwrap();
        assert_eq!(trivially.mean, 1.0);
    }

    #[test]
    fn costs_after_disaster() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let disaster = model.disaster("down").unwrap();
        let instant = simulator
            .instantaneous_cost(Some(disaster), 0.0, &options(100))
            .unwrap();
        assert_eq!(instant.mean, 3.0);
        let accumulated = simulator
            .accumulated_cost(Some(disaster), 1.0, &options(2000))
            .unwrap();
        assert!(
            accumulated.mean > 1.0 && accumulated.mean < 3.0,
            "{accumulated:?}"
        );
    }

    #[test]
    fn zero_replications_yield_empty_estimate() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let estimate = simulator.reliability(10.0, &options(0)).unwrap();
        assert_eq!(estimate.replications, 0);
    }

    #[test]
    fn single_threaded_and_parallel_agree() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let serial = SimulationOptions {
            replications: 500,
            seed: 7,
            threads: 1,
        };
        let parallel = SimulationOptions {
            replications: 500,
            seed: 7,
            threads: 4,
        };
        let a = simulator.reliability(30.0, &serial).unwrap();
        let b = simulator.reliability(30.0, &parallel).unwrap();
        // Same seeds per replication index, so the samples are identical.
        assert!((a.mean - b.mean).abs() < 1e-12);
    }

    #[test]
    fn unknown_disaster_is_rejected() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let rogue = Disaster::new("rogue", ["ghost"]).unwrap();
        assert!(simulator
            .survivability(&rogue, 1.0, 1.0, &options(10))
            .is_err());
    }
}
