//! The public simulation API: replicated estimators for the paper's measures.

use arcade_core::{ArcadeError, ArcadeModel, Disaster};
use ctmc::exec::map_ordered;
use ctmc::ExecOptions;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::engine::Trajectory;
use crate::rng::replication_rng;
use crate::stats::{Estimate, RunningStats};

/// Options shared by all estimators (flat and quotient-resident).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationOptions {
    /// Number of independent replications.
    pub replications: usize,
    /// Base random seed; replication `i` draws from the counter-based stream
    /// [`crate::rng::stream_key`]`(seed, i)`.
    pub seed: u64,
    /// Worker pool for the replication batches — the same knob every other
    /// engine in the workspace uses (`ARCADE_THREADS` respected via
    /// [`ExecOptions::default`]). Results are bit-identical for any thread
    /// count.
    pub exec: ExecOptions,
    /// Replications per batch: the scheduling granule handed to the worker
    /// pool. Statistics merge in batch order, so the value changes rounding
    /// only through the (deterministic) merge tree, never through scheduling.
    pub batch: usize,
    /// Failure-biasing factor for importance sampling: rates of failure-class
    /// transitions are multiplied by this factor and estimates reweighted by
    /// the trajectory likelihood ratio. `1.0` disables biasing. Only the
    /// quotient-resident engine supports biasing; the flat [`Simulator`]
    /// rejects any other value.
    pub bias: f64,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            replications: 10_000,
            seed: 0x5EED,
            exec: ExecOptions::default(),
            batch: 512,
            bias: 1.0,
        }
    }
}

impl SimulationOptions {
    /// Convenience constructor mirroring the old `threads` field: an explicit
    /// worker count with everything else at its default.
    pub fn with_threads(threads: usize) -> Self {
        SimulationOptions {
            exec: ExecOptions::with_threads(threads),
            ..Default::default()
        }
    }
}

/// Monte-Carlo estimator for the dependability measures of an Arcade model.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    model: &'a ArcadeModel,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given model.
    ///
    /// # Errors
    ///
    /// Returns an error if a trajectory cannot be prepared for the model.
    pub fn new(model: &'a ArcadeModel) -> Result<Self, ArcadeError> {
        // Fail fast on models the engine cannot handle.
        Trajectory::new(model)?;
        Ok(Simulator { model })
    }

    /// The model being simulated.
    pub fn model(&self) -> &ArcadeModel {
        self.model
    }

    /// Estimates reliability: the probability that the system never leaves the
    /// fully-operational states within the mission time.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation errors.
    pub fn reliability(
        &self,
        mission_time: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, None, move |trajectory, rng| {
            while trajectory.time() < mission_time {
                if !trajectory.is_fully_operational() {
                    return 0.0;
                }
                trajectory.step(mission_time, rng);
            }
            if trajectory.is_fully_operational() {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Estimates the probability that the system is fully operational at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation errors.
    pub fn point_availability(
        &self,
        t: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, None, move |trajectory, rng| {
            while trajectory.time() < t {
                trajectory.step(t, rng);
            }
            if trajectory.is_fully_operational() {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Estimates long-run availability as the fraction of time the system is
    /// fully operational during `[0, horizon]` (each replication contributes
    /// one time-average).
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation errors.
    pub fn steady_state_availability(
        &self,
        horizon: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, None, move |trajectory, rng| {
            let mut up_time = 0.0;
            while trajectory.time() < horizon {
                let was_up = trajectory.is_fully_operational();
                let elapsed = trajectory.step(horizon, rng);
                if was_up {
                    up_time += elapsed;
                }
            }
            up_time / horizon
        })
    }

    /// Estimates survivability: the probability of reaching a service level of
    /// at least `service_level` within `deadline` hours after the disaster.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation and disaster errors.
    pub fn survivability(
        &self,
        disaster: &Disaster,
        service_level: f64,
        deadline: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, Some(disaster), move |trajectory, rng| loop {
            if trajectory.service_level() >= service_level - 1e-12 {
                return 1.0;
            }
            if trajectory.time() >= deadline {
                return 0.0;
            }
            trajectory.step(deadline, rng);
        })
    }

    /// Estimates the expected accumulated repair cost over `[0, horizon]`,
    /// optionally starting right after a disaster.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation and disaster errors.
    pub fn accumulated_cost(
        &self,
        disaster: Option<&Disaster>,
        horizon: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, disaster, move |trajectory, rng| {
            let mut cost = 0.0;
            while trajectory.time() < horizon {
                let rate = trajectory.cost_rate();
                let elapsed = trajectory.step(horizon, rng);
                cost += rate * elapsed;
            }
            cost
        })
    }

    /// Estimates the expected instantaneous cost rate at time `t`, optionally
    /// starting right after a disaster.
    ///
    /// # Errors
    ///
    /// Propagates trajectory preparation and disaster errors.
    pub fn instantaneous_cost(
        &self,
        disaster: Option<&Disaster>,
        t: f64,
        options: &SimulationOptions,
    ) -> Result<Estimate, ArcadeError> {
        self.replicate(options, disaster, move |trajectory, rng| {
            while trajectory.time() < t {
                trajectory.step(t, rng);
            }
            trajectory.cost_rate()
        })
    }

    /// Runs `options.replications` independent replications of `body` in
    /// fixed-size batches over the `options.exec` worker pool and merges the
    /// per-batch statistics in batch order. Replication `i` always draws from
    /// the counter-based stream keyed by `(seed, i)`, so the result is
    /// bit-identical for any thread count.
    fn replicate<F>(
        &self,
        options: &SimulationOptions,
        disaster: Option<&Disaster>,
        body: F,
    ) -> Result<Estimate, ArcadeError>
    where
        F: Fn(&mut Trajectory<'_>, &mut StdRng) -> f64 + Sync,
    {
        if options.bias != 1.0 {
            return Err(ArcadeError::UnsupportedMeasure {
                reason: format!(
                    "the flat simulator has no failure biasing (bias = {}); \
                     use the quotient-resident QuotientSimulator for importance sampling",
                    options.bias
                ),
            });
        }
        if options.batch == 0 {
            return Err(ArcadeError::InvalidParameter {
                reason: "simulation batch size must be at least 1".into(),
            });
        }
        let replications = options.replications;
        if replications == 0 {
            return Ok(Estimate::from_samples(&[]));
        }

        // Validate the disaster once up front so worker closures cannot fail.
        if let Some(d) = disaster {
            Trajectory::new(self.model)?.reset_to_disaster(d)?;
        }

        let batch = options.batch;
        let ranges: Vec<std::ops::Range<usize>> = (0..replications.div_ceil(batch))
            .map(|b| (b * batch)..((b + 1) * batch).min(replications))
            .collect();
        let outputs = map_ordered(
            &ranges,
            options.exec,
            |range| -> Result<RunningStats, ArcadeError> {
                let mut trajectory = Trajectory::new(self.model)?;
                let mut stats = RunningStats::new();
                for replication in range.clone() {
                    let mut rng = replication_rng(options.seed, replication as u64);
                    match disaster {
                        Some(d) => trajectory.reset_to_disaster(d)?,
                        None => trajectory.reset(),
                    }
                    stats.push(body(&mut trajectory, &mut rng));
                }
                Ok(stats)
            },
        );

        let mut merged = RunningStats::new();
        for output in outputs {
            merged.merge(&output?);
        }
        Ok(merged.estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcade_core::{BasicComponent, RepairStrategy, RepairUnit};
    use fault_tree::{StructureNode, SystemStructure};

    fn pump_model() -> ArcadeModel {
        let structure = SystemStructure::new(StructureNode::component("pump"));
        ArcadeModel::builder("pump", structure)
            .component(
                BasicComponent::from_mttf_mttr("pump", 100.0, 1.0)
                    .unwrap()
                    .with_failed_cost(3.0),
            )
            .repair_unit(
                RepairUnit::new("ru", RepairStrategy::FirstComeFirstServe, 1)
                    .unwrap()
                    .responsible_for(["pump"])
                    .with_idle_cost(1.0),
            )
            .disaster(Disaster::new("down", ["pump"]).unwrap())
            .build()
            .unwrap()
    }

    fn options(replications: usize) -> SimulationOptions {
        SimulationOptions {
            replications,
            seed: 42,
            exec: ExecOptions::with_threads(2),
            ..Default::default()
        }
    }

    #[test]
    fn reliability_matches_exponential_lifetime() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let estimate = simulator.reliability(50.0, &options(4000)).unwrap();
        let expected = (-50.0f64 / 100.0).exp();
        assert!(
            estimate.contains_with_slack(expected, 0.02),
            "estimate {estimate:?} vs expected {expected}"
        );
    }

    #[test]
    fn point_availability_approaches_steady_state() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let estimate = simulator.point_availability(500.0, &options(4000)).unwrap();
        let expected = 100.0 / 101.0;
        assert!(estimate.contains_with_slack(expected, 0.02), "{estimate:?}");
    }

    #[test]
    fn long_run_availability_time_average() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let estimate = simulator
            .steady_state_availability(2000.0, &options(300))
            .unwrap();
        let expected = 100.0 / 101.0;
        assert!(estimate.contains_with_slack(expected, 0.01), "{estimate:?}");
    }

    #[test]
    fn survivability_is_the_repair_cdf() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let disaster = model.disaster("down").unwrap();
        let estimate = simulator
            .survivability(disaster, 1.0, 2.0, &options(4000))
            .unwrap();
        let expected = 1.0 - (-2.0f64).exp();
        assert!(estimate.contains_with_slack(expected, 0.03), "{estimate:?}");
        // Service level 0 is reached immediately.
        let trivially = simulator
            .survivability(disaster, 0.0, 0.0, &options(100))
            .unwrap();
        assert_eq!(trivially.mean, 1.0);
    }

    #[test]
    fn costs_after_disaster() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let disaster = model.disaster("down").unwrap();
        let instant = simulator
            .instantaneous_cost(Some(disaster), 0.0, &options(100))
            .unwrap();
        assert_eq!(instant.mean, 3.0);
        let accumulated = simulator
            .accumulated_cost(Some(disaster), 1.0, &options(2000))
            .unwrap();
        assert!(
            accumulated.mean > 1.0 && accumulated.mean < 3.0,
            "{accumulated:?}"
        );
    }

    #[test]
    fn zero_replications_yield_empty_estimate() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let estimate = simulator.reliability(10.0, &options(0)).unwrap();
        assert_eq!(estimate.replications, 0);
    }

    #[test]
    fn single_threaded_and_parallel_are_bit_identical() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let mut reference = None;
        for threads in [1usize, 2, 4, 8] {
            let opts = SimulationOptions {
                replications: 500,
                seed: 7,
                exec: ExecOptions::with_threads(threads),
                ..Default::default()
            };
            let e = simulator.reliability(30.0, &opts).unwrap();
            // Streams depend only on (seed, replication) and batch statistics
            // merge in batch order: the estimate is byte-equal at any thread
            // count.
            let bits = (e.mean.to_bits(), e.half_width.to_bits());
            match &reference {
                None => reference = Some(bits),
                Some(expected) => assert_eq!(*expected, bits, "threads {threads}"),
            }
        }
    }

    #[test]
    fn unknown_disaster_is_rejected() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let rogue = Disaster::new("rogue", ["ghost"]).unwrap();
        assert!(simulator
            .survivability(&rogue, 1.0, 1.0, &options(10))
            .is_err());
    }

    #[test]
    fn flat_engine_rejects_failure_biasing() {
        let model = pump_model();
        let simulator = Simulator::new(&model).unwrap();
        let mut opts = options(10);
        opts.bias = 100.0;
        let err = simulator.reliability(10.0, &opts).unwrap_err();
        assert!(
            matches!(err, ArcadeError::UnsupportedMeasure { .. }),
            "{err:?}"
        );
        let mut opts = options(10);
        opts.batch = 0;
        assert!(simulator.reliability(10.0, &opts).is_err());
    }
}
