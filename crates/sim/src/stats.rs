//! Point estimates with confidence intervals.

use serde::{Deserialize, Serialize};

/// A Monte-Carlo estimate: sample mean, 95% confidence half-width and sample size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// The sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (normal approximation).
    pub half_width: f64,
    /// Number of replications the estimate is based on.
    pub replications: usize,
}

impl Estimate {
    /// Builds an estimate from raw samples.
    ///
    /// An empty sample yields a zero estimate with zero replications.
    pub fn from_samples(samples: &[f64]) -> Estimate {
        let n = samples.len();
        if n == 0 {
            return Estimate {
                mean: 0.0,
                half_width: 0.0,
                replications: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Estimate {
                mean,
                half_width: f64::INFINITY,
                replications: 1,
            };
        }
        let variance =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        let std_error = (variance / n as f64).sqrt();
        Estimate {
            mean,
            half_width: 1.96 * std_error,
            replications: n,
        }
    }

    /// Whether a reference value lies inside the confidence interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.mean - value).abs() <= self.half_width
    }

    /// Whether a reference value lies within the confidence interval widened by
    /// `slack` (useful for very tight intervals around discrete estimators).
    pub fn contains_with_slack(&self, value: f64, slack: f64) -> bool {
        (self.mean - value).abs() <= self.half_width + slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_samples() {
        let e = Estimate::from_samples(&[]);
        assert_eq!(e.replications, 0);
        assert_eq!(e.mean, 0.0);
        let e = Estimate::from_samples(&[4.0]);
        assert_eq!(e.mean, 4.0);
        assert!(e.half_width.is_infinite());
    }

    #[test]
    fn mean_and_interval_of_known_samples() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let e = Estimate::from_samples(&samples);
        assert!((e.mean - 50.5).abs() < 1e-12);
        assert_eq!(e.replications, 100);
        // Standard deviation of 1..=100 is about 29.0; the 95% half width is
        // therefore about 1.96 * 29.0 / 10 = 5.7.
        assert!((e.half_width - 5.69).abs() < 0.1);
        assert!(e.contains(50.0));
        assert!(!e.contains(70.0));
        assert!(e.contains_with_slack(56.5, 1.0));
    }

    #[test]
    fn constant_samples_have_zero_width() {
        let e = Estimate::from_samples(&[2.0; 50]);
        assert_eq!(e.mean, 2.0);
        assert_eq!(e.half_width, 0.0);
        assert!(e.contains(2.0));
    }
}
