//! Point estimates with confidence intervals, streaming batch statistics and
//! tail-risk (VaR/CVaR) estimators over sorted loss samples.

use serde::{Deserialize, Serialize};

/// A Monte-Carlo estimate: sample mean, 95% confidence half-width and sample size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// The sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (normal approximation).
    pub half_width: f64,
    /// Number of replications the estimate is based on.
    pub replications: usize,
}

impl Estimate {
    /// Builds an estimate from raw samples.
    ///
    /// An empty sample yields a zero estimate with zero replications.
    pub fn from_samples(samples: &[f64]) -> Estimate {
        let n = samples.len();
        if n == 0 {
            return Estimate {
                mean: 0.0,
                half_width: 0.0,
                replications: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Estimate {
                mean,
                half_width: f64::INFINITY,
                replications: 1,
            };
        }
        let variance =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        let std_error = (variance / n as f64).sqrt();
        Estimate {
            mean,
            half_width: 1.96 * std_error,
            replications: n,
        }
    }

    /// Whether a reference value lies inside the confidence interval.
    pub fn contains(&self, value: f64) -> bool {
        (self.mean - value).abs() <= self.half_width
    }

    /// Whether a reference value lies within the confidence interval widened by
    /// `slack` (useful for very tight intervals around discrete estimators).
    pub fn contains_with_slack(&self, value: f64, slack: f64) -> bool {
        (self.mean - value).abs() <= self.half_width + slack
    }

    /// The half-width relative to the mean (`inf` when the mean is zero and
    /// the width is not, `0` when both are zero). The rare-event acceptance
    /// tests compare estimators through this quantity.
    pub fn relative_half_width(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Streaming sample statistics (Welford count/mean/M2) that can be merged.
///
/// Each replication batch accumulates its own `RunningStats` serially; the
/// caller merges the per-batch values **in batch order** (Chan's pairwise
/// update), so the final estimate depends only on `(seed, replications,
/// batch)` — never on how batches were scheduled across worker threads. This
/// is the piece that makes parallel replication bit-identical for any thread
/// count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: usize,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> RunningStats {
        RunningStats::default()
    }

    /// Adds one sample (Welford update).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    /// Merging is performed in a fixed order by all callers, so the result is
    /// deterministic.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }

    /// Number of samples accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased sample variance (zero for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Converts the accumulated statistics into a 95% [`Estimate`].
    pub fn estimate(&self) -> Estimate {
        if self.count == 0 {
            return Estimate {
                mean: 0.0,
                half_width: 0.0,
                replications: 0,
            };
        }
        if self.count == 1 {
            return Estimate {
                mean: self.mean,
                half_width: f64::INFINITY,
                replications: 1,
            };
        }
        let std_error = (self.variance() / self.count as f64).sqrt();
        Estimate {
            mean: self.mean,
            half_width: 1.96 * std_error,
            replications: self.count,
        }
    }
}

/// Which end of the loss distribution carries the risk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tail {
    /// Large values are bad (accumulated cost): VaR is the upper quantile.
    Upper,
    /// Small values are bad (time to failure): VaR is the lower quantile.
    Lower,
}

/// Value-at-Risk and Conditional-Value-at-Risk of a loss sample, with normal
/// / order-statistic confidence half-widths.
///
/// Following the sorted-loss estimator: for the upper tail at level `alpha`,
/// `VaR` is the empirical `alpha`-quantile of the losses and `CVaR` is the
/// mean of the losses at or beyond it. Importance-sampled runs pass
/// likelihood weights; the quantile is then taken in the *weighted* empirical
/// distribution (weights normalised to the sample), which keeps the estimator
/// consistent under failure biasing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TailEstimate {
    /// The tail level (e.g. `0.95`).
    pub alpha: f64,
    /// Which tail the risk sits in.
    pub tail: Tail,
    /// Value-at-Risk: the empirical `alpha`-quantile of the loss.
    pub var: f64,
    /// Half-width of the VaR confidence interval (order-statistic bracketing
    /// of the quantile rank at ±1.96 binomial standard deviations).
    pub var_half_width: f64,
    /// Conditional Value-at-Risk: mean loss beyond the VaR.
    pub cvar: f64,
    /// Half-width of the CVaR confidence interval (normal approximation over
    /// the tail sample).
    pub cvar_half_width: f64,
    /// Number of replications behind the estimate.
    pub replications: usize,
}

impl TailEstimate {
    /// Builds the tail estimate from `(loss, weight)` replication samples.
    /// Unbiased runs pass weight `1.0` for every sample. An empty sample (or
    /// one with zero total weight) yields a zero estimate.
    pub fn from_weighted_losses(samples: &[(f64, f64)], alpha: f64, tail: Tail) -> TailEstimate {
        let zero = TailEstimate {
            alpha,
            tail,
            var: 0.0,
            var_half_width: 0.0,
            cvar: 0.0,
            cvar_half_width: 0.0,
            replications: samples.len(),
        };
        let total_weight: f64 = samples.iter().map(|&(_, w)| w).sum();
        if samples.is_empty() || total_weight <= 0.0 {
            return zero;
        }
        // Reduce the lower tail to the upper tail of the negated loss; the
        // sort below is then always ascending towards the risky end.
        let mut ordered: Vec<(f64, f64)> = match tail {
            Tail::Upper => samples.to_vec(),
            Tail::Lower => samples.iter().map(|&(x, w)| (-x, w)).collect(),
        };
        ordered.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

        // Weighted empirical quantile: the first loss whose cumulative
        // normalised weight reaches `alpha`.
        let quantile_at = |level: f64| -> f64 {
            let target = level.clamp(0.0, 1.0) * total_weight;
            let mut cumulative = 0.0;
            for &(x, w) in &ordered {
                cumulative += w;
                if cumulative >= target {
                    return x;
                }
            }
            ordered.last().expect("non-empty sample").0
        };
        let var = quantile_at(alpha);

        // Order-statistic bracket for the VaR: the quantile rank has binomial
        // standard deviation sqrt(n·α·(1−α)); bracket the quantile at
        // ±1.96 of it (in weight space for weighted samples).
        let n = samples.len() as f64;
        let rank_sd = (alpha * (1.0 - alpha) / n).sqrt();
        let lo = quantile_at(alpha - 1.96 * rank_sd);
        let hi = quantile_at(alpha + 1.96 * rank_sd);
        let var_half_width = 0.5 * (hi - lo);

        // CVaR: weighted mean of losses at or beyond the VaR, with a normal
        // CI over the (weighted) tail sample.
        let mut tail_stats = RunningStats::new();
        let mut tail_weight = 0.0;
        let mut tail_sum = 0.0;
        for &(x, w) in &ordered {
            if x >= var {
                tail_stats.push(x);
                tail_weight += w;
                tail_sum += w * x;
            }
        }
        let cvar = if tail_weight > 0.0 {
            tail_sum / tail_weight
        } else {
            var
        };
        let cvar_half_width = if tail_stats.count() >= 2 {
            1.96 * (tail_stats.variance() / tail_stats.count() as f64).sqrt()
        } else {
            f64::INFINITY
        };

        let (var, cvar) = match tail {
            Tail::Upper => (var, cvar),
            Tail::Lower => (-var, -cvar),
        };
        TailEstimate {
            alpha,
            tail,
            var,
            var_half_width,
            cvar,
            cvar_half_width,
            replications: samples.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single_samples() {
        let e = Estimate::from_samples(&[]);
        assert_eq!(e.replications, 0);
        assert_eq!(e.mean, 0.0);
        let e = Estimate::from_samples(&[4.0]);
        assert_eq!(e.mean, 4.0);
        assert!(e.half_width.is_infinite());
    }

    #[test]
    fn mean_and_interval_of_known_samples() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let e = Estimate::from_samples(&samples);
        assert!((e.mean - 50.5).abs() < 1e-12);
        assert_eq!(e.replications, 100);
        // Standard deviation of 1..=100 is about 29.0; the 95% half width is
        // therefore about 1.96 * 29.0 / 10 = 5.7.
        assert!((e.half_width - 5.69).abs() < 0.1);
        assert!(e.contains(50.0));
        assert!(!e.contains(70.0));
        assert!(e.contains_with_slack(56.5, 1.0));
    }

    #[test]
    fn constant_samples_have_zero_width() {
        let e = Estimate::from_samples(&[2.0; 50]);
        assert_eq!(e.mean, 2.0);
        assert_eq!(e.half_width, 0.0);
        assert!(e.contains(2.0));
    }

    #[test]
    fn running_stats_match_the_batch_formula() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let mut stats = RunningStats::new();
        for &x in &samples {
            stats.push(x);
        }
        let direct = Estimate::from_samples(&samples);
        let streamed = stats.estimate();
        assert!((streamed.mean - direct.mean).abs() < 1e-12);
        assert!((streamed.half_width - direct.half_width).abs() < 1e-9);
        assert_eq!(streamed.replications, 100);
    }

    #[test]
    fn merging_batches_is_equivalent_to_one_pass() {
        let samples: Vec<f64> = (0..997)
            .map(|i| ((i * 37) % 101) as f64 * 0.25 - 3.0)
            .collect();
        let mut whole = RunningStats::new();
        for &x in &samples {
            whole.push(x);
        }
        // Merge per-batch stats in batch order, as the simulator does.
        for batch in [1usize, 7, 64, 256, 2048] {
            let mut merged = RunningStats::new();
            for chunk in samples.chunks(batch) {
                let mut b = RunningStats::new();
                for &x in chunk {
                    b.push(x);
                }
                merged.merge(&b);
            }
            assert_eq!(merged.count(), whole.count());
            assert!(
                (merged.mean() - whole.mean()).abs() < 1e-10,
                "batch {batch}"
            );
            assert!(
                (merged.variance() - whole.variance()).abs() < 1e-8,
                "batch {batch}"
            );
        }
        // Merging in a fixed order is reproducible bit-for-bit.
        let run = |batch: usize| {
            let mut merged = RunningStats::new();
            for chunk in samples.chunks(batch) {
                let mut b = RunningStats::new();
                for &x in chunk {
                    b.push(x);
                }
                merged.merge(&b);
            }
            (merged.mean().to_bits(), merged.variance().to_bits())
        };
        assert_eq!(run(64), run(64));
    }

    #[test]
    fn relative_half_width_edge_cases() {
        let zero = Estimate::from_samples(&[]);
        assert_eq!(zero.relative_half_width(), 0.0);
        let degenerate = Estimate {
            mean: 0.0,
            half_width: 0.1,
            replications: 10,
        };
        assert!(degenerate.relative_half_width().is_infinite());
        let normal = Estimate {
            mean: 2.0,
            half_width: 0.5,
            replications: 10,
        };
        assert!((normal.relative_half_width() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn upper_tail_var_cvar_of_a_known_sample() {
        // Losses 1..=100, uniform weight: the 0.95-VaR is 95 and the CVaR is
        // the mean of {95..=100} = 97.5.
        let samples: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64, 1.0)).collect();
        let t = TailEstimate::from_weighted_losses(&samples, 0.95, Tail::Upper);
        assert_eq!(t.var, 95.0);
        assert!((t.cvar - 97.5).abs() < 1e-12, "{t:?}");
        assert!(t.var_half_width > 0.0 && t.var_half_width < 10.0);
        assert_eq!(t.replications, 100);
    }

    #[test]
    fn lower_tail_mirrors_the_upper_tail() {
        let samples: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64, 1.0)).collect();
        let t = TailEstimate::from_weighted_losses(&samples, 0.95, Tail::Lower);
        // The risky 5% are the *smallest* times: VaR 6, CVaR mean{1..=6}... the
        // 0.95-quantile of the negated sample is -6, so VaR = 6 and the CVaR
        // averages {1..=6} = 3.5.
        assert_eq!(t.var, 6.0);
        assert!((t.cvar - 3.5).abs() < 1e-12, "{t:?}");
    }

    #[test]
    fn weights_shift_the_quantile() {
        // Two losses; the heavy one dominates the distribution.
        let samples = [(1.0, 0.01), (10.0, 0.99)];
        let t = TailEstimate::from_weighted_losses(&samples, 0.5, Tail::Upper);
        assert_eq!(t.var, 10.0);
        // And an empty / zero-weight sample degrades gracefully.
        let empty = TailEstimate::from_weighted_losses(&[], 0.95, Tail::Upper);
        assert_eq!(empty.var, 0.0);
        let dead = TailEstimate::from_weighted_losses(&[(3.0, 0.0)], 0.95, Tail::Upper);
        assert_eq!(dead.var, 0.0);
    }
}
