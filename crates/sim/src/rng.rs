//! Counter-based per-replication random streams.
//!
//! Replication `i` of a run with base seed `s` draws from a generator seeded
//! by a SplitMix64-style mix of the *pair* `(s, i)` — not by `s + i`. The
//! additive scheme the simulator originally used makes adjacent seeds share
//! almost all of their replication streams: seed `s` replication `i + 1`
//! and seed `s + 1` replication `i` collapse onto the same generator, so two
//! "independent" studies run at neighbouring seeds are correlated almost
//! everywhere. Mixing the pair through two SplitMix64 rounds (one keyed by
//! the seed, one by the replication counter) gives streams that are pairwise
//! distinct across any practical grid of seeds and replication indices.
//!
//! The stream depends only on `(seed, replication)` — never on which worker
//! thread runs the replication — which is what makes batched parallel
//! replication bit-identical for every thread count.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// One SplitMix64 output step: the finaliser of the standard generator.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 64-bit stream key of replication `replication` under base seed
/// `seed`: two chained SplitMix64 rounds so no affine relation between
/// `(seed, replication)` pairs survives into the key.
pub fn stream_key(seed: u64, replication: u64) -> u64 {
    splitmix64(splitmix64(seed) ^ splitmix64(replication ^ 0xA5A5_A5A5_A5A5_A5A5))
}

/// The random generator of one replication. Deterministic in
/// `(seed, replication)` and independent of thread count and scheduling.
pub fn replication_rng(seed: u64, replication: u64) -> StdRng {
    StdRng::seed_from_u64(stream_key(seed, replication))
}

/// `x[1]` of the 256-strip exponential ziggurat (Marsaglia & Tsang 2000):
/// the right edge of the topmost full rectangle.
const ZIG_R: f64 = 7.697_117_470_131_05;
/// Area of each of the 256 strips.
const ZIG_V: f64 = 0.003_949_659_822_581_557;

struct ZigTables {
    /// Strip right edges, `x[0] = V/f(R) > x[1] = R > … > x[256] = 0`.
    x: [f64; 257],
    /// `f[i] = exp(-x[i])`.
    f: [f64; 257],
}

/// The ziggurat tables, computed once per process from `(R, V)` — a pure
/// function of the constants, so every replication stream sees the same
/// tables.
fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0f64; 257];
        x[0] = ZIG_V * ZIG_R.exp();
        x[1] = ZIG_R;
        for i in 2..256 {
            let prev = x[i - 1];
            x[i] = -(ZIG_V / prev + (-prev).exp()).ln();
        }
        x[256] = 0.0;
        let mut f = [0.0f64; 257];
        for (fi, &xi) in f.iter_mut().zip(x.iter()) {
            *fi = (-xi).exp();
        }
        ZigTables { x, f }
    })
}

/// One `Exp(1)` variate via the 256-strip ziggurat: on ~99% of draws a single
/// `next_u64` (low 8 bits pick the strip, the top 53 the position) and two
/// table reads — no logarithm. The wedge and the tail beyond `R` fall back to
/// an extra uniform (and, for the tail, one `ln`). Exponential sojourns are
/// the quotient walk's per-jump cost, so this path is deliberately
/// branch-light.
#[inline]
pub fn exp_draw(rng: &mut StdRng) -> f64 {
    let t = zig_tables();
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = u * t.x[i];
        if x < t.x[i + 1] {
            return x;
        }
        if i == 0 {
            // Tail beyond R: memorylessness gives R + Exp(1) by inversion.
            let u2: f64 = rng.gen();
            return ZIG_R - (1.0 - u2).ln();
        }
        let u2: f64 = rng.gen();
        if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * u2 < (-x).exp() {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn adjacent_seeds_no_longer_share_streams() {
        // The old `seed + i` scheme had stream(s, i + 1) == stream(s + 1, i).
        for seed in [0u64, 1, 42, u64::MAX - 8] {
            for i in 0..8u64 {
                assert_ne!(
                    stream_key(seed, i + 1),
                    stream_key(seed.wrapping_add(1), i),
                    "seed {seed} rep {i}: the additive collision is back"
                );
            }
        }
    }

    #[test]
    fn stream_keys_are_pairwise_distinct_over_a_grid() {
        let mut keys = std::collections::HashSet::new();
        for seed in 0..32u64 {
            for rep in 0..256u64 {
                assert!(
                    keys.insert(stream_key(seed, rep)),
                    "collision at seed {seed} rep {rep}"
                );
            }
        }
    }

    #[test]
    fn ziggurat_tables_are_monotone_and_positive() {
        let t = zig_tables();
        for i in 0..256 {
            assert!(t.x[i] > t.x[i + 1], "x not decreasing at {i}");
            assert!(t.f[i] < t.f[i + 1], "f not increasing at {i}");
        }
        assert_eq!(t.x[256], 0.0);
        assert_eq!(t.f[256], 1.0);
        assert!((t.x[1] - ZIG_R).abs() < 1e-15);
    }

    #[test]
    fn exp_draw_matches_the_exponential_distribution() {
        let mut rng = replication_rng(123, 0);
        let n = 400_000usize;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let mut below_ln2 = 0usize;
        let mut beyond_r = 0usize;
        for _ in 0..n {
            let x = exp_draw(&mut rng);
            assert!(x.is_finite() && x >= 0.0, "{x}");
            sum += x;
            sumsq += x * x;
            if x < std::f64::consts::LN_2 {
                below_ln2 += 1;
            }
            if x > ZIG_R {
                beyond_r += 1;
            }
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.008, "mean {mean}");
        assert!((var - 1.0).abs() < 0.035, "variance {var}");
        // The median of Exp(1) is ln 2.
        let frac = below_ln2 as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.005, "median fraction {frac}");
        // The tail branch beyond R actually fires, with mass ≈ e^{-R}.
        let expect = (-ZIG_R).exp();
        let got = beyond_r as f64 / n as f64;
        assert!(
            got > 0.3 * expect && got < 3.0 * expect,
            "tail mass {got} vs {expect}"
        );
    }

    #[test]
    fn replication_rng_is_a_pure_function_of_the_pair() {
        let mut a = replication_rng(7, 3);
        let mut b = replication_rng(7, 3);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = replication_rng(7, 4);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }
}
