//! O(1) categorical sampling: Walker/Vose alias tables per quotient block.
//!
//! Each state of the solver chain gets an alias table over its outgoing
//! transition rates, so sampling the next block of a trajectory is one
//! uniform draw and two array reads — independent of the state's out-degree —
//! instead of the linear CDF scan the flat engine performs on every jump.
//!
//! Construction is deterministic: transitions enter the table in the chain's
//! CSR column order and the small/large worklists are consumed
//! last-in-first-out from index-ordered pushes, so the same chain always
//! produces byte-identical tables (and therefore byte-identical trajectories
//! for a given random stream) regardless of thread count or build order.

use rand::rngs::StdRng;
use rand::Rng;

/// A Walker/Vose alias table over one state's outgoing transitions.
///
/// `prob[k]` is the acceptance threshold of slot `k`; on rejection the draw
/// falls through to `alias[k]`. `targets[k]` maps slot `k` back to the
/// destination state of the underlying transition.
#[derive(Debug, Clone)]
pub struct AliasTable {
    targets: Vec<u32>,
    alias: Vec<u32>,
    prob: Vec<f64>,
}

impl AliasTable {
    /// Builds the table for one state from `(target, rate)` transition pairs
    /// (rates need not be normalised). An empty slice yields an empty table
    /// (an absorbing state; [`AliasTable::sample`] must not be called on it).
    pub fn new(transitions: &[(usize, f64)]) -> AliasTable {
        let n = transitions.len();
        let mut targets = Vec::with_capacity(n);
        let mut prob = vec![0.0; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        if n == 0 {
            return AliasTable {
                targets,
                alias,
                prob,
            };
        }
        let total: f64 = transitions.iter().map(|&(_, r)| r).sum();
        // Scaled probabilities: mean 1 across slots.
        let mut scaled: Vec<f64> = Vec::with_capacity(n);
        for &(target, rate) in transitions {
            targets.push(target as u32);
            scaled.push(rate * n as f64 / total);
        }
        // Index-ordered worklists, consumed from the back: deterministic.
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (k, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(k);
            } else {
                large.push(k);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers on either list saturate to probability one.
        for k in small.into_iter().chain(large) {
            prob[k] = 1.0;
        }
        AliasTable {
            targets,
            alias,
            prob,
        }
    }

    /// Number of transitions the table covers.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the state is absorbing (no outgoing transitions).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Samples a transition slot with one uniform draw; returns
    /// `(slot, target state)`. Must not be called on an empty table.
    #[inline]
    pub fn sample(&self, rng: &mut StdRng) -> (usize, usize) {
        let u = rng.gen::<f64>() * self.len() as f64;
        let slot = (u as usize).min(self.len() - 1);
        let chosen = if u - slot as f64 <= self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        };
        (chosen, self.targets[chosen] as usize)
    }

    /// The destination state of transition slot `k`.
    pub fn target(&self, k: usize) -> usize {
        self.targets[k] as usize
    }

    /// The acceptance threshold of slot `k` (the draw falls through to the
    /// alias partner above it).
    pub fn acceptance(&self, k: usize) -> f64 {
        self.prob[k]
    }

    /// The alias partner of slot `k`: the slot a rejected draw falls to.
    pub fn alias_of(&self, k: usize) -> usize {
        self.alias[k] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn empty_and_singleton_tables() {
        let empty = AliasTable::new(&[]);
        assert!(empty.is_empty());
        let single = AliasTable::new(&[(7, 2.5)]);
        assert_eq!(single.len(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(single.sample(&mut rng).1, 7);
        }
    }

    #[test]
    fn sampling_frequencies_match_the_rates() {
        // Rates 1:2:5 over targets 10, 11, 12.
        let table = AliasTable::new(&[(10, 1.0), (11, 2.0), (12, 5.0)]);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 3];
        let n = 400_000;
        for _ in 0..n {
            let (_, target) = table.sample(&mut rng);
            counts[target - 10] += 1;
        }
        let freq = |c: usize| c as f64 / n as f64;
        assert!((freq(counts[0]) - 1.0 / 8.0).abs() < 5e-3, "{counts:?}");
        assert!((freq(counts[1]) - 2.0 / 8.0).abs() < 5e-3, "{counts:?}");
        assert!((freq(counts[2]) - 5.0 / 8.0).abs() < 5e-3, "{counts:?}");
    }

    #[test]
    fn construction_is_deterministic() {
        let transitions: Vec<(usize, f64)> =
            (0..57).map(|k| (k, 0.1 + (k as f64) * 0.37)).collect();
        let a = AliasTable::new(&transitions);
        let b = AliasTable::new(&transitions);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.alias, b.alias);
        assert_eq!(
            a.prob.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            b.prob.iter().map(|p| p.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn probabilities_partition_to_one_per_slot() {
        // Every slot's acceptance probability lies in [0, 1], and the table
        // conserves total mass: sum over slots of (prob + spillover) = n.
        let table = AliasTable::new(&[(0, 0.3), (1, 0.3), (2, 0.1), (3, 9.0)]);
        for &p in &table.prob {
            assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
    }
}
