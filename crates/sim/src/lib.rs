//! # arcade-sim — Monte-Carlo simulation of Arcade models
//!
//! Two trajectory engines over the same model semantics:
//!
//! * the **flat engine** ([`Trajectory`]/[`Simulator`]) replays the
//!   component-level failure/repair/spare semantics independently of the
//!   analytic composer — agreement between simulated and model-checked
//!   measures validates both implementations;
//! * the **quotient-resident engine** ([`QuotientSimulator`]) samples the
//!   lumped [`arcade_core::CompiledQuotient`] the exact solvers use, with
//!   O(1) Walker/Vose alias jumps, deterministic parallel replication
//!   batches, and importance sampling via failure biasing for rare-event
//!   measures — unavailability, time-to-failure and accumulated-cost
//!   VaR/CVaR with confidence intervals.
//!
//! Replications ride the workspace-wide [`ctmc::ExecOptions`] worker pool in
//! fixed-size batches with counter-based per-replication random streams, so
//! every estimate is bit-identical for any thread count.
//!
//! ```no_run
//! use arcade_sim::{SimulationOptions, Simulator};
//! # use arcade_core::{ArcadeModel, BasicComponent, RepairStrategy, RepairUnit};
//! # use fault_tree::{StructureNode, SystemStructure};
//! # fn main() -> Result<(), arcade_core::ArcadeError> {
//! # let structure = SystemStructure::new(StructureNode::component("pump"));
//! # let model = ArcadeModel::builder("demo", structure)
//! #     .component(BasicComponent::from_mttf_mttr("pump", 500.0, 1.0)?)
//! #     .repair_unit(RepairUnit::new("ru", RepairStrategy::Dedicated, 1)?.responsible_for(["pump"]))
//! #     .build()?;
//! let simulator = Simulator::new(&model)?;
//! let options = SimulationOptions { replications: 10_000, ..Default::default() };
//! let reliability = simulator.reliability(1000.0, &options)?;
//! println!("R(1000h) ≈ {} ± {}", reliability.mean, reliability.half_width);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod engine;
pub mod quotient;
pub mod rng;
pub mod stats;

mod simulator;

pub use alias::AliasTable;
pub use engine::Trajectory;
pub use quotient::{MeasureReport, QuotientSimulator, Walk};
pub use simulator::{SimulationOptions, Simulator};
pub use stats::{Estimate, RunningStats, Tail, TailEstimate};
