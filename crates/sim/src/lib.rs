//! # arcade-sim — Monte-Carlo simulation of Arcade models
//!
//! A discrete-event simulator that executes the same failure/repair/spare
//! semantics as the analytic state-space composer of [`arcade_core`], but by
//! sampling trajectories instead of enumerating states. It serves two purposes:
//!
//! * **cross-validation** — the simulator is an independent implementation of
//!   the Arcade semantics, so agreement between simulated and model-checked
//!   measures (availability, reliability, survivability, costs) validates both
//!   the composer and the numerical engines;
//! * **scalability** — trajectories can be sampled from models whose state
//!   space would be too large to enumerate.
//!
//! Replications run in parallel worker threads (via `crossbeam`) and return
//! mean estimates with 95% confidence half-widths.
//!
//! ```no_run
//! use arcade_sim::{SimulationOptions, Simulator};
//! # use arcade_core::{ArcadeModel, BasicComponent, RepairStrategy, RepairUnit};
//! # use fault_tree::{StructureNode, SystemStructure};
//! # fn main() -> Result<(), arcade_core::ArcadeError> {
//! # let structure = SystemStructure::new(StructureNode::component("pump"));
//! # let model = ArcadeModel::builder("demo", structure)
//! #     .component(BasicComponent::from_mttf_mttr("pump", 500.0, 1.0)?)
//! #     .repair_unit(RepairUnit::new("ru", RepairStrategy::Dedicated, 1)?.responsible_for(["pump"]))
//! #     .build()?;
//! let simulator = Simulator::new(&model)?;
//! let options = SimulationOptions { replications: 10_000, ..Default::default() };
//! let reliability = simulator.reliability(1000.0, &options)?;
//! println!("R(1000h) ≈ {} ± {}", reliability.mean, reliability.half_width);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod stats;

mod simulator;

pub use engine::Trajectory;
pub use simulator::{SimulationOptions, Simulator};
pub use stats::Estimate;
