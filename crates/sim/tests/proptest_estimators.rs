//! Property-based cross-validation of the quotient Monte-Carlo estimators.
//!
//! On small random repairable models, every estimator of
//! [`arcade_sim::QuotientSimulator`] must agree with an *exact* reference
//! within its own confidence interval (widened by a small slack for the
//! reference's discretisation, where one exists):
//!
//! * interval unavailability vs. the exact accumulated down-time reward
//!   (`RewardSolver::accumulated_until` with a down-state indicator reward);
//! * mean time to failure (capped) vs. `∫₀ᴴ R(t) dt` over the exact
//!   reliability curve, and the lower-tail VaR vs. the exact reliability
//!   quantile;
//! * survivability and accumulated cost vs. [`arcade_core::Analysis`];
//! * importance-sampled runs vs. unbiased runs, with the likelihood-ratio
//!   certificate `E[W] ≈ 1`.

use arcade_core::{
    Analysis, ArcadeModel, BasicComponent, CompiledQuotient, ComposerOptions, Disaster,
    RepairStrategy, RepairUnit,
};
use arcade_sim::{QuotientSimulator, SimulationOptions};
use ctmc::{ExecOptions, RewardSolver, RewardStructure};
use fault_tree::{StructureNode, SystemStructure};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomModel {
    mttfs: Vec<f64>,
    mttrs: Vec<f64>,
    /// Put the first two components behind a redundant gate instead of in
    /// series — failures then need a coincidence, the mildly-rare regime.
    redundant_pair: bool,
    /// Add a third component in series with the pair.
    third: bool,
    strategy: RepairStrategy,
    crews: usize,
}

fn arbitrary_model() -> impl Strategy<Value = RandomModel> {
    (
        proptest::collection::vec(40.0f64..250.0, 3),
        proptest::collection::vec(0.5f64..3.0, 3),
        any::<bool>(),
        any::<bool>(),
        prop_oneof![
            Just(RepairStrategy::Dedicated),
            Just(RepairStrategy::FirstComeFirstServe),
            Just(RepairStrategy::FastestRepairFirst),
        ],
        1usize..=2,
    )
        .prop_map(
            |(mttfs, mttrs, redundant_pair, third, strategy, crews)| RandomModel {
                mttfs,
                mttrs,
                redundant_pair,
                third,
                strategy,
                crews,
            },
        )
}

fn build_model(spec: &RandomModel) -> ArcadeModel {
    let mut names = vec!["c0".to_string(), "c1".to_string()];
    let pair = vec![
        StructureNode::component("c0"),
        StructureNode::component("c1"),
    ];
    let mut subtrees = vec![if spec.redundant_pair {
        StructureNode::redundant(pair)
    } else {
        StructureNode::series(pair)
    }];
    if spec.third {
        subtrees.push(StructureNode::component("c2"));
        names.push("c2".to_string());
    }
    let structure = SystemStructure::new(StructureNode::series(subtrees));

    let mut builder = ArcadeModel::builder("random-sim-model", structure);
    for (k, name) in names.iter().enumerate() {
        builder = builder.component(
            BasicComponent::from_mttf_mttr(name, spec.mttfs[k], spec.mttrs[k])
                .unwrap()
                .with_failed_cost(3.0),
        );
    }
    builder
        .repair_unit(
            RepairUnit::new("ru", spec.strategy.clone(), spec.crews)
                .unwrap()
                .responsible_for(names.clone())
                .with_idle_cost(1.0),
        )
        .disaster(Disaster::new("all-down", names).unwrap())
        .build()
        .unwrap()
}

fn options(replications: usize, seed: u64) -> SimulationOptions {
    SimulationOptions {
        replications,
        seed,
        exec: ExecOptions::with_threads(2),
        ..Default::default()
    }
}

/// Composite Simpson over equally spaced samples (`values.len()` odd).
fn simpson(values: &[f64], step: f64) -> f64 {
    let n = values.len() - 1;
    assert!(n >= 2 && n.is_multiple_of(2), "need an even interval count");
    let mut sum = values[0] + values[n];
    for (i, v) in values.iter().enumerate().take(n).skip(1) {
        sum += if i % 2 == 1 { 4.0 * v } else { 2.0 * v };
    }
    sum * step / 3.0
}

/// Exact interval unavailability over `[0, horizon]` from the initial block:
/// the accumulated down-state sojourn reward divided by the horizon.
fn exact_unavailability(quotient: &CompiledQuotient, horizon: f64) -> f64 {
    let chain = quotient
        .chain()
        .with_initial_state(quotient.initial())
        .unwrap();
    let down: Vec<f64> = quotient
        .operational_mask()
        .iter()
        .map(|&op| if op { 0.0 } else { 1.0 })
        .collect();
    let rewards = RewardStructure::new("down", down).unwrap();
    let solver = RewardSolver::new(&chain, &rewards).unwrap();
    solver.accumulated_until(horizon).unwrap() / horizon
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Interval unavailability matches the exact accumulated down-time.
    #[test]
    fn unavailability_matches_the_exact_down_time(spec in arbitrary_model()) {
        let model = build_model(&spec);
        let quotient = CompiledQuotient::of_model(&model, ComposerOptions::default()).unwrap();
        let sim = QuotientSimulator::new(&quotient);
        let horizon = 80.0;
        let exact = exact_unavailability(&quotient, horizon);
        let report = sim.unavailability(horizon, &options(1000, 7)).unwrap();
        prop_assert!(report.lr_mean.is_none());
        prop_assert!(
            (report.estimate.mean - exact).abs()
                <= 4.0 * report.estimate.half_width + 0.005,
            "exact {exact} vs {:?}",
            report.estimate
        );
    }

    /// Capped mean time to failure matches `∫₀ᴴ R(t) dt`, and the lower-tail
    /// VaR matches the exact reliability quantile.
    #[test]
    fn time_to_failure_matches_the_reliability_curve(spec in arbitrary_model()) {
        let model = build_model(&spec);
        let quotient = CompiledQuotient::of_model(&model, ComposerOptions::default()).unwrap();
        let analysis = Analysis::new(&model).unwrap();
        let sim = QuotientSimulator::new(&quotient);

        let horizon = 400.0;
        let alpha = 0.95;
        let intervals = 200usize;
        let step = horizon / intervals as f64;
        let times: Vec<f64> = (0..=intervals).map(|i| i as f64 * step).collect();
        let curve = analysis.reliability_curve(&times).unwrap();
        let values: Vec<f64> = curve.iter().map(|&(_, r)| r).collect();
        // E[min(TTF, H)] = ∫₀ᴴ R(t) dt for the capped first-passage time.
        let exact_mean = simpson(&values, step);
        // The lower-tail VaR is the t with R(t) = alpha (capped at H);
        // linear interpolation between grid points of the smooth curve.
        let exact_var = match values.iter().position(|&r| r <= alpha) {
            None => horizon,
            Some(0) => 0.0,
            Some(i) => {
                let (r0, r1) = (values[i - 1], values[i]);
                times[i - 1] + step * ((r0 - alpha) / (r0 - r1))
            }
        };

        let report = sim.time_to_failure(horizon, alpha, &options(800, 11)).unwrap();
        prop_assert!(
            (report.estimate.mean - exact_mean).abs()
                <= 4.0 * report.estimate.half_width + 0.01 * exact_mean + 1.0,
            "exact {exact_mean} vs {:?}",
            report.estimate
        );
        let tail = report.tail.unwrap();
        prop_assert!(
            (tail.var - exact_var).abs()
                <= 4.0 * tail.var_half_width + 0.05 * exact_var + 1.0,
            "exact VaR {exact_var} vs {tail:?}"
        );
    }

    /// Survivability after the all-down disaster and the accumulated recovery
    /// cost both match the exact transient analysis.
    #[test]
    fn disaster_measures_match_the_exact_analysis(spec in arbitrary_model()) {
        let model = build_model(&spec);
        let quotient = CompiledQuotient::of_model(&model, ComposerOptions::default()).unwrap();
        let analysis = Analysis::new(&model).unwrap();
        let sim = QuotientSimulator::new(&quotient);
        let disaster = model.disaster("all-down").unwrap();

        let deadline = 8.0;
        let exact = analysis.survivability(disaster, 1.0, deadline).unwrap();
        let report = sim
            .survivability("all-down", 1.0, deadline, &options(1200, 13))
            .unwrap();
        prop_assert!(
            (report.estimate.mean - exact).abs()
                <= 4.0 * report.estimate.half_width + 0.02,
            "exact {exact} vs {:?}",
            report.estimate
        );

        let horizon = 12.0;
        let exact = analysis
            .accumulated_cost_curve(Some(disaster), &[horizon])
            .unwrap()[0]
            .1;
        let report = sim
            .accumulated_cost(Some("all-down"), horizon, 0.9, &options(1000, 17))
            .unwrap();
        prop_assert!(
            (report.estimate.mean - exact).abs()
                <= 4.0 * report.estimate.half_width + 0.02 * exact + 0.05,
            "exact {exact} vs {:?}",
            report.estimate
        );
        let tail = report.tail.unwrap();
        prop_assert!(tail.cvar >= tail.var - 1e-12, "{tail:?}");
    }

    /// Failure biasing leaves every estimate unbiased: the biased and the
    /// unbiased run agree, and the likelihood-ratio certificate covers 1.
    #[test]
    fn importance_sampling_agrees_with_the_unbiased_run(spec in arbitrary_model()) {
        let model = build_model(&spec);
        let quotient = CompiledQuotient::of_model(&model, ComposerOptions::default()).unwrap();
        let sim = QuotientSimulator::new(&quotient);
        let horizon = 15.0;

        let unbiased = sim.unavailability(horizon, &options(1500, 23)).unwrap();
        let mut biased_options = options(1500, 29);
        biased_options.bias = 3.0;
        let biased = sim.unavailability(horizon, &biased_options).unwrap();

        prop_assert!(
            (biased.estimate.mean - unbiased.estimate.mean).abs()
                <= 4.0 * (biased.estimate.half_width + unbiased.estimate.half_width) + 0.01,
            "unbiased {:?} vs biased {:?}",
            unbiased.estimate,
            biased.estimate
        );
        let lr = biased.lr_mean.unwrap();
        prop_assert!(lr.contains_with_slack(1.0, 0.15), "{lr:?}");
    }
}
