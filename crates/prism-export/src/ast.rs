//! Abstract syntax of the PRISM language subset emitted by the exporter.

use serde::{Deserialize, Serialize};

/// A complete PRISM model in CTMC mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrismModel {
    /// Leading comment lines (without the `//` prefix).
    pub comments: Vec<String>,
    /// Named numeric constants.
    pub constants: Vec<(String, f64)>,
    /// The modules of the model.
    pub modules: Vec<Module>,
    /// Labels: `label "name" = expression;`.
    pub labels: Vec<(String, String)>,
    /// Reward structures.
    pub rewards: Vec<Reward>,
    /// Optional explicit initial-state expression (`init ... endinit`).
    pub init: Option<String>,
}

impl PrismModel {
    /// Creates an empty CTMC model.
    pub fn new() -> Self {
        PrismModel {
            comments: Vec::new(),
            constants: Vec::new(),
            modules: Vec::new(),
            labels: Vec::new(),
            rewards: Vec::new(),
            init: None,
        }
    }

    /// Renders the model as PRISM source text.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for comment in &self.comments {
            out.push_str("// ");
            out.push_str(comment);
            out.push('\n');
        }
        out.push_str("ctmc\n\n");
        for (name, value) in &self.constants {
            out.push_str(&format!("const double {name} = {value};\n"));
        }
        if !self.constants.is_empty() {
            out.push('\n');
        }
        for module in &self.modules {
            out.push_str(&module.to_source());
            out.push('\n');
        }
        for (name, expression) in &self.labels {
            out.push_str(&format!("label \"{name}\" = {expression};\n"));
        }
        if !self.labels.is_empty() {
            out.push('\n');
        }
        for reward in &self.rewards {
            out.push_str(&reward.to_source());
            out.push('\n');
        }
        if let Some(init) = &self.init {
            out.push_str(&format!("init\n  {init}\nendinit\n"));
        }
        out
    }
}

impl Default for PrismModel {
    fn default() -> Self {
        PrismModel::new()
    }
}

/// A PRISM module: bounded integer variables plus guarded commands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Variables: `(name, lower, upper, initial)`.
    pub variables: Vec<(String, i64, i64, i64)>,
    /// Guarded commands.
    pub commands: Vec<Command>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            variables: Vec::new(),
            commands: Vec::new(),
        }
    }

    /// Renders the module as PRISM source text.
    pub fn to_source(&self) -> String {
        let mut out = format!("module {}\n", self.name);
        for (name, lower, upper, initial) in &self.variables {
            out.push_str(&format!("  {name} : [{lower}..{upper}] init {initial};\n"));
        }
        for command in &self.commands {
            out.push_str(&format!("  {}\n", command.to_source()));
        }
        out.push_str("endmodule\n");
        out
    }
}

/// A guarded command `[action] guard -> rate_1:update_1 + ... ;`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Optional synchronisation action label.
    pub action: Option<String>,
    /// The boolean guard expression.
    pub guard: String,
    /// The rate-weighted updates.
    pub updates: Vec<Update>,
}

impl Command {
    /// Renders the command as PRISM source text.
    pub fn to_source(&self) -> String {
        let action = self.action.as_deref().unwrap_or("");
        let updates = self
            .updates
            .iter()
            .map(Update::to_source)
            .collect::<Vec<_>>()
            .join(" + ");
        format!("[{action}] {} -> {updates};", self.guard)
    }
}

/// A single `rate : (var'=value) & ...` update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Update {
    /// The transition rate (CTMC mode).
    pub rate: String,
    /// Variable assignments `(name, expression)`.
    pub assignments: Vec<(String, String)>,
}

impl Update {
    /// Renders the update as PRISM source text.
    pub fn to_source(&self) -> String {
        if self.assignments.is_empty() {
            return format!("{} : true", self.rate);
        }
        let assignments = self
            .assignments
            .iter()
            .map(|(name, value)| format!("({name}'={value})"))
            .collect::<Vec<_>>()
            .join(" & ");
        format!("{} : {assignments}", self.rate)
    }
}

/// A PRISM reward structure (state rewards only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reward {
    /// Name of the reward structure.
    pub name: String,
    /// State-reward items `(guard, value-expression)`.
    pub items: Vec<(String, String)>,
}

impl Reward {
    /// Renders the reward structure as PRISM source text.
    pub fn to_source(&self) -> String {
        let mut out = format!("rewards \"{}\"\n", self.name);
        for (guard, value) in &self.items {
            out.push_str(&format!("  {guard} : {value};\n"));
        }
        out.push_str("endrewards\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_rendering() {
        let command = Command {
            action: None,
            guard: "x=0".to_string(),
            updates: vec![Update {
                rate: "0.002".to_string(),
                assignments: vec![("x".to_string(), "1".to_string())],
            }],
        };
        assert_eq!(command.to_source(), "[] x=0 -> 0.002 : (x'=1);");
        let command = Command {
            action: Some("sync".to_string()),
            guard: "true".to_string(),
            updates: vec![Update {
                rate: "1".to_string(),
                assignments: vec![],
            }],
        };
        assert_eq!(command.to_source(), "[sync] true -> 1 : true;");
    }

    #[test]
    fn module_and_model_rendering() {
        let mut module = Module::new("pump");
        module.variables.push(("pump_failed".to_string(), 0, 1, 0));
        module.commands.push(Command {
            action: None,
            guard: "pump_failed=0".to_string(),
            updates: vec![Update {
                rate: "1/500".to_string(),
                assignments: vec![("pump_failed".to_string(), "1".to_string())],
            }],
        });
        let mut model = PrismModel::new();
        model.comments.push("generated".to_string());
        model.constants.push(("PUMP_MTTF".to_string(), 500.0));
        model.modules.push(module);
        model
            .labels
            .push(("down".to_string(), "pump_failed=1".to_string()));
        model.rewards.push(Reward {
            name: "cost".to_string(),
            items: vec![("pump_failed=1".to_string(), "3".to_string())],
        });
        let source = model.to_source();
        assert!(source.starts_with("// generated\nctmc"));
        assert!(source.contains("module pump"));
        assert!(source.contains("pump_failed : [0..1] init 0;"));
        assert!(source.contains("label \"down\" = pump_failed=1;"));
        assert!(source.contains("rewards \"cost\""));
        assert!(source.contains("endmodule"));
        assert!(source.contains("endrewards"));
    }

    #[test]
    fn multi_update_commands_join_with_plus() {
        let command = Command {
            action: None,
            guard: "s=0".to_string(),
            updates: vec![
                Update {
                    rate: "2".to_string(),
                    assignments: vec![("s".to_string(), "1".to_string())],
                },
                Update {
                    rate: "3".to_string(),
                    assignments: vec![("s".to_string(), "2".to_string())],
                },
            ],
        };
        assert_eq!(command.to_source(), "[] s=0 -> 2 : (s'=1) + 3 : (s'=2);");
    }

    #[test]
    fn default_model_is_empty_ctmc() {
        let model = PrismModel::default();
        assert_eq!(model.to_source(), "ctmc\n\n");
    }
}
