//! Error type for the PRISM exporter.

use std::fmt;

/// Errors produced while translating an Arcade model to PRISM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrismExportError {
    /// The modular translation only supports contention-free repair (dedicated
    /// strategy or one crew per component); other strategies need the flat
    /// translation of the composed CTMC.
    UnsupportedStrategy {
        /// The repair unit using the unsupported strategy.
        repair_unit: String,
        /// The strategy's short name.
        strategy: String,
    },
    /// An identifier is not representable in PRISM (empty or starts with a digit).
    InvalidIdentifier {
        /// The offending identifier.
        identifier: String,
    },
}

impl fmt::Display for PrismExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrismExportError::UnsupportedStrategy {
                repair_unit,
                strategy,
            } => write!(
                f,
                "repair unit `{repair_unit}` uses strategy {strategy}, which the modular PRISM \
                 translation does not support; use the flat translation instead"
            ),
            PrismExportError::InvalidIdentifier { identifier } => {
                write!(f, "`{identifier}` is not a valid PRISM identifier")
            }
        }
    }
}

impl std::error::Error for PrismExportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PrismExportError::UnsupportedStrategy {
            repair_unit: "ru".into(),
            strategy: "FRF".into(),
        };
        assert!(e.to_string().contains("FRF"));
        assert!(PrismExportError::InvalidIdentifier {
            identifier: "1x".into()
        }
        .to_string()
        .contains("1x"));
    }
}
