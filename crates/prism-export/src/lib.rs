//! # prism-export — PRISM reactive-modules output for Arcade models
//!
//! The tool chain of the DSN 2010 paper translates Arcade architectural models
//! into the input language of the PRISM model checker (reactive modules in CTMC
//! mode) together with CSL/CSRL property files. This crate reproduces that
//! pipeline stage:
//!
//! * [`ast`] — a small abstract syntax tree of the PRISM language subset used;
//! * [`translate`] — two translations of an Arcade model:
//!   * a **modular** translation (one PRISM module per basic component) for
//!     models whose repair behaviour is contention-free (dedicated repair),
//!     mirroring the compositional translation in the paper, and
//!   * a **flat** translation of the composed CTMC (one state variable, one
//!     command per transition), which is exact for every repair strategy and
//!     lets any PRISM installation re-check the numbers reported here;
//! * [`properties`] — emission of the paper's measures as a PRISM properties
//!   file (CSL/CSRL).
//!
//! ```no_run
//! use arcade_core::{ArcadeModel, BasicComponent, RepairStrategy, RepairUnit, CompiledModel};
//! use fault_tree::{StructureNode, SystemStructure};
//! use prism_export::translate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let structure = SystemStructure::new(StructureNode::component("pump"));
//! # let model = ArcadeModel::builder("demo", structure)
//! #     .component(BasicComponent::from_mttf_mttr("pump", 500.0, 1.0)?)
//! #     .repair_unit(RepairUnit::new("ru", RepairStrategy::Dedicated, 1)?.responsible_for(["pump"]))
//! #     .build()?;
//! let prism_source = translate::modular(&model)?.to_source();
//! let compiled = CompiledModel::compile(&model)?;
//! let flat_source = translate::flat(&model, &compiled).to_source();
//! println!("{prism_source}\n{flat_source}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod properties;
pub mod translate;

pub use ast::{Command, Module, PrismModel, Reward, Update};
pub use error::PrismExportError;
