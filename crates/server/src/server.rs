//! The TCP daemon: newline-delimited JSON over `std::net::TcpListener`.
//!
//! One connection-handler thread per client; all handlers share one
//! [`AnalysisService`] (and therefore one cache, one coalescer, one stats
//! block). A `shutdown` request acknowledges, then stops the accept loop;
//! in-flight connections are joined before [`serve`] returns.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::{Request, Response};
use crate::service::AnalysisService;

/// How long the accept loop sleeps between polls while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read timeout on connections: how often an idle handler re-checks the
/// shutdown flag, so joining the daemon never waits on a silent client.
const READ_POLL: Duration = Duration::from_millis(50);

/// A running daemon: its bound address plus the shutdown controls.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on (with the ephemeral port
    /// resolved — bind to port `0` to let the OS pick one).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins the daemon thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Blocks until something else stops the daemon — a client's `shutdown`
    /// request — and the accept loop has exited (the foreground-daemon
    /// mode of `wt-experiments serve`).
    pub fn join_until_shutdown(mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Binds `addr` and serves it on a background thread.
///
/// # Errors
///
/// Propagates bind errors (address in use, permission).
pub fn spawn<A: ToSocketAddrs>(
    addr: A,
    service: Arc<AnalysisService>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::spawn(move || serve(listener, service, flag));
    Ok(ServerHandle {
        addr,
        shutdown,
        thread: Some(thread),
    })
}

/// Runs the accept loop until `shutdown` is set (by a `shutdown` request or
/// externally), then joins every connection handler.
pub fn serve(listener: TcpListener, service: Arc<AnalysisService>, shutdown: Arc<AtomicBool>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(&service);
                let flag = Arc::clone(&shutdown);
                let handler =
                    std::thread::spawn(move || handle_connection(stream, &service, &flag));
                let mut guard = handlers.lock().unwrap();
                guard.push(handler);
                // Reap finished handlers so the vector stays small on
                // long-lived daemons.
                guard.retain(|h| !h.is_finished());
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
    for handler in handlers.into_inner().unwrap() {
        let _ = handler.join();
    }
}

/// Serves one connection: one JSON request per line, one JSON response per
/// line, until the peer closes or requests shutdown.
fn handle_connection(stream: TcpStream, service: &AnalysisService, shutdown: &AtomicBool) {
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            // A read timeout: `read_line` has appended any partial bytes to
            // `line`, so keep accumulating — just re-check the flag first.
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            line.clear();
            continue;
        }
        let (response, stop) = match Request::parse_line(trimmed) {
            Ok(request) => {
                let stop = request == Request::Shutdown;
                (service.handle(&request), stop)
            }
            Err(err) => (Response::Err(format!("bad request: {err}")), false),
        };
        line.clear();
        if writeln!(writer, "{}", response.to_json()).is_err() || writer.flush().is_err() {
            return;
        }
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}
