//! # arcade-server — analysis as a service
//!
//! A persistent solver daemon for the Arcade water-treatment models: clients
//! name models by registry spec (`line1/ded`, `facility/ded+ded`,
//! `line2/frf-1@1.05`, …) and query availability, survivability curves and
//! cost curves over newline-delimited JSON on TCP. Three mechanisms make the
//! daemon fast where a batch run recompiles and resolves from scratch:
//!
//! * **Presentation-code quotient caching** ([`cache`]) — compiled
//!   [`arcade_core::CompiledQuotient`] artifacts are interned by
//!   `chain_presentation_code`-derived fingerprints, confirmed by exact
//!   equality so hash collisions cannot poison the cache.
//! * **Warm-started solves** ([`service`]) — a rate-perturbed variant of an
//!   already-solved chain starts Gauss–Seidel from the sibling's stationary
//!   vector instead of uniform.
//! * **Query coalescing** ([`coalesce`]) — concurrent identical queries
//!   share one solve / one batched Fox–Glynn pass, and every waiter receives
//!   bit-identical results.
//!
//! The service core is transport-agnostic: the daemon ([`server`]), the
//! blocking [`client`], and in-process callers all drive
//! [`AnalysisService::handle`], so a daemon response is byte-for-byte the
//! JSON of the equivalent in-process call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod coalesce;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;
pub mod stats;

pub use cache::{CacheEntry, QuotientCache};
pub use client::{AvailabilityReply, Client, ClientError};
pub use coalesce::{Coalescer, Role};
pub use json::Json;
pub use protocol::{CostKind, Request, Response, SimMeasure};
pub use server::{serve, spawn, ServerHandle};
pub use service::AnalysisService;
pub use stats::{QueryOp, ServiceStats, StatsSnapshot};
