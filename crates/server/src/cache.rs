//! The quotient cache: compiled artifacts interned by presentation code.
//!
//! Artifacts are keyed two ways:
//!
//! * **by spec** — the canonical registry spec string, so a repeated query
//!   skips recompilation entirely;
//! * **by presentation code** — [`CompiledQuotient::presentation_code`], so
//!   two specs that compile to the *same presentation* share one artifact
//!   (and its solved stationary vector). The code is a 64-bit hash; a lookup
//!   candidate is only shared after [`CompiledQuotient::identical`]
//!   **confirms** exact equality, so a hash collision can never poison the
//!   cache — colliding-but-different artifacts live side by side under one
//!   code. [`QuotientCache::intern_with_code`] exposes the code as an
//!   explicit parameter so tests can force collisions.
//!
//! Entries also carry the model *family* (the spec minus its rate scale) and
//! memoise their stationary distribution once solved;
//! [`QuotientCache::warm_donor`] hands out a solved vector of a same-family,
//! same-dimension sibling as the warm start for a rate-perturbed variant.
//!
//! The cache is **bounded**: [`QuotientCache::with_capacity`] caps the number
//! of registered spec keys, evicting the least-recently-used spec (and any
//! artifact no surviving spec references) when the cap is exceeded. The
//! default cache is unbounded, preserving the original daemon behaviour;
//! eviction only discards memoised work, never correctness — a re-queried
//! evicted spec recompiles to a bit-identical artifact.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use arcade_core::CompiledQuotient;

/// One interned artifact plus its solve state.
pub struct CacheEntry {
    code: u64,
    family: String,
    quotient: Arc<CompiledQuotient>,
    stationary: Mutex<Option<Arc<Vec<f64>>>>,
}

impl CacheEntry {
    /// The presentation code this entry is interned under.
    pub fn code(&self) -> u64 {
        self.code
    }

    /// The model family (spec minus rate scale) this entry belongs to.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The artifact.
    pub fn quotient(&self) -> &Arc<CompiledQuotient> {
        &self.quotient
    }

    /// The memoised stationary distribution, if it has been solved.
    pub fn stationary(&self) -> Option<Arc<Vec<f64>>> {
        self.stationary.lock().unwrap().clone()
    }

    /// Memoises the solved stationary distribution.
    pub fn set_stationary(&self, pi: Arc<Vec<f64>>) {
        *self.stationary.lock().unwrap() = Some(pi);
    }
}

#[derive(Default)]
struct CacheInner {
    /// Spec key → (entry, last-used tick). The tick drives the LRU order.
    by_spec: HashMap<String, (Arc<CacheEntry>, u64)>,
    /// Collision chain per presentation code: distinct artifacts that share
    /// a code (expected length 1).
    by_code: HashMap<u64, Vec<Arc<CacheEntry>>>,
    /// Monotonic access clock backing the LRU order.
    tick: u64,
    /// Evicted spec keys (and codes whose chains emptied) not yet drained by
    /// [`QuotientCache::drain_evicted`] — the service uses them to release
    /// its memoised computation slots.
    pending_evictions: (Vec<String>, Vec<u64>),
}

impl CacheInner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Evicts least-recently-used specs until at most `capacity` remain,
    /// then drops artifacts no surviving spec references. Returns the number
    /// of spec keys evicted and records them (plus any code whose collision
    /// chain emptied) for [`QuotientCache::drain_evicted`].
    fn enforce_capacity(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0u64;
        while self.by_spec.len() > capacity {
            let oldest = self
                .by_spec
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(spec, _)| spec.clone())
                .expect("non-empty over capacity");
            self.by_spec.remove(&oldest);
            self.pending_evictions.0.push(oldest);
            evicted += 1;
        }
        if evicted > 0 {
            // Garbage-collect artifacts that lost their last spec reference
            // so `warm_donor` never hands out vectors of evicted entries.
            let by_spec = &self.by_spec;
            let emptied = &mut self.pending_evictions.1;
            self.by_code.retain(|code, chain| {
                chain.retain(|artifact| {
                    by_spec
                        .values()
                        .any(|(entry, _)| Arc::ptr_eq(entry, artifact))
                });
                if chain.is_empty() {
                    emptied.push(*code);
                }
                !chain.is_empty()
            });
        }
        evicted
    }
}

/// The interning cache (see the module docs). All methods are thread-safe.
#[derive(Default)]
pub struct QuotientCache {
    inner: Mutex<CacheInner>,
    /// Maximum number of registered spec keys (`None` = unbounded).
    capacity: Option<usize>,
    /// Spec keys evicted so far.
    evictions: AtomicU64,
}

impl QuotientCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        QuotientCache::default()
    }

    /// An empty cache holding at most `capacity` spec keys: exceeding the
    /// cap evicts the least-recently-used spec and any artifact no surviving
    /// spec references.
    pub fn with_capacity(capacity: usize) -> Self {
        QuotientCache {
            capacity: Some(capacity),
            ..QuotientCache::default()
        }
    }

    /// The spec-key cap (`None` for an unbounded cache).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of spec keys evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Takes the spec keys evicted since the last drain, plus the codes
    /// whose collision chains emptied with them. The service uses these to
    /// release its memoised build/solve slots, so eviction actually frees
    /// the artifact memory instead of leaving it pinned elsewhere.
    pub fn drain_evicted(&self) -> (Vec<String>, Vec<u64>) {
        std::mem::take(&mut self.inner.lock().unwrap().pending_evictions)
    }

    /// The entry registered under a canonical spec string, if any. A hit
    /// refreshes the spec's LRU position.
    pub fn get(&self, spec: &str) -> Option<Arc<CacheEntry>> {
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        let slot = inner.by_spec.get_mut(spec)?;
        slot.1 = tick;
        Some(Arc::clone(&slot.0))
    }

    /// Interns a freshly compiled artifact under `spec`, using the
    /// artifact's own presentation code. Returns the entry to use and
    /// whether an already-cached identical artifact was shared (`true`)
    /// rather than this one stored (`false`).
    pub fn insert(
        &self,
        spec: &str,
        family: &str,
        quotient: CompiledQuotient,
    ) -> (Arc<CacheEntry>, bool) {
        let code = quotient.presentation_code();
        self.intern_with_code(spec, family, code, quotient)
    }

    /// [`QuotientCache::insert`] with an explicit presentation code — the
    /// collision-hardening seam: candidates under `code` are only shared
    /// after [`CompiledQuotient::identical`] confirms them, so passing the
    /// same code for two different artifacts (as the collision regression
    /// test does) keeps them separate instead of conflating them.
    pub fn intern_with_code(
        &self,
        spec: &str,
        family: &str,
        code: u64,
        quotient: CompiledQuotient,
    ) -> (Arc<CacheEntry>, bool) {
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        let chain = inner.by_code.entry(code).or_default();
        let (entry, shared) = match chain
            .iter()
            .find(|entry| entry.quotient.identical(&quotient))
        {
            Some(existing) => (Arc::clone(existing), true),
            None => {
                let entry = Arc::new(CacheEntry {
                    code,
                    family: family.to_string(),
                    quotient: Arc::new(quotient),
                    stationary: Mutex::new(None),
                });
                chain.push(Arc::clone(&entry));
                (entry, false)
            }
        };
        inner
            .by_spec
            .insert(spec.to_string(), (Arc::clone(&entry), tick));
        if let Some(capacity) = self.capacity {
            let evicted = inner.enforce_capacity(capacity);
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        (entry, shared)
    }

    /// A solved stationary vector of a same-family entry with the given
    /// state count, excluding `exclude_code` (the asking entry itself) — the
    /// warm-start donor for a rate-perturbed variant. Dimensions are checked
    /// here so the guess always fits the asking chain.
    pub fn warm_donor(
        &self,
        family: &str,
        states: usize,
        exclude_code: u64,
    ) -> Option<Arc<Vec<f64>>> {
        let inner = self.inner.lock().unwrap();
        inner
            .by_code
            .values()
            .flatten()
            .filter(|entry| {
                entry.code != exclude_code
                    && entry.family == family
                    && entry.quotient.num_states() == states
            })
            .find_map(|entry| entry.stationary())
    }

    /// Number of distinct interned artifacts.
    pub fn num_artifacts(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .by_code
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Number of registered spec keys.
    pub fn num_specs(&self) -> usize {
        self.inner.lock().unwrap().by_spec.len()
    }
}
