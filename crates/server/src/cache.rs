//! The quotient cache: compiled artifacts interned by presentation code.
//!
//! Artifacts are keyed two ways:
//!
//! * **by spec** — the canonical registry spec string, so a repeated query
//!   skips recompilation entirely;
//! * **by presentation code** — [`CompiledQuotient::presentation_code`], so
//!   two specs that compile to the *same presentation* share one artifact
//!   (and its solved stationary vector). The code is a 64-bit hash; a lookup
//!   candidate is only shared after [`CompiledQuotient::identical`]
//!   **confirms** exact equality, so a hash collision can never poison the
//!   cache — colliding-but-different artifacts live side by side under one
//!   code. [`QuotientCache::intern_with_code`] exposes the code as an
//!   explicit parameter so tests can force collisions.
//!
//! Entries also carry the model *family* (the spec minus its rate scale) and
//! memoise their stationary distribution once solved;
//! [`QuotientCache::warm_donor`] hands out a solved vector of a same-family,
//! same-dimension sibling as the warm start for a rate-perturbed variant.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use arcade_core::CompiledQuotient;

/// One interned artifact plus its solve state.
pub struct CacheEntry {
    code: u64,
    family: String,
    quotient: Arc<CompiledQuotient>,
    stationary: Mutex<Option<Arc<Vec<f64>>>>,
}

impl CacheEntry {
    /// The presentation code this entry is interned under.
    pub fn code(&self) -> u64 {
        self.code
    }

    /// The model family (spec minus rate scale) this entry belongs to.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The artifact.
    pub fn quotient(&self) -> &Arc<CompiledQuotient> {
        &self.quotient
    }

    /// The memoised stationary distribution, if it has been solved.
    pub fn stationary(&self) -> Option<Arc<Vec<f64>>> {
        self.stationary.lock().unwrap().clone()
    }

    /// Memoises the solved stationary distribution.
    pub fn set_stationary(&self, pi: Arc<Vec<f64>>) {
        *self.stationary.lock().unwrap() = Some(pi);
    }
}

#[derive(Default)]
struct CacheInner {
    by_spec: HashMap<String, Arc<CacheEntry>>,
    /// Collision chain per presentation code: distinct artifacts that share
    /// a code (expected length 1).
    by_code: HashMap<u64, Vec<Arc<CacheEntry>>>,
}

/// The interning cache (see the module docs). All methods are thread-safe.
#[derive(Default)]
pub struct QuotientCache {
    inner: Mutex<CacheInner>,
}

impl QuotientCache {
    /// An empty cache.
    pub fn new() -> Self {
        QuotientCache::default()
    }

    /// The entry registered under a canonical spec string, if any.
    pub fn get(&self, spec: &str) -> Option<Arc<CacheEntry>> {
        self.inner.lock().unwrap().by_spec.get(spec).cloned()
    }

    /// Interns a freshly compiled artifact under `spec`, using the
    /// artifact's own presentation code. Returns the entry to use and
    /// whether an already-cached identical artifact was shared (`true`)
    /// rather than this one stored (`false`).
    pub fn insert(
        &self,
        spec: &str,
        family: &str,
        quotient: CompiledQuotient,
    ) -> (Arc<CacheEntry>, bool) {
        let code = quotient.presentation_code();
        self.intern_with_code(spec, family, code, quotient)
    }

    /// [`QuotientCache::insert`] with an explicit presentation code — the
    /// collision-hardening seam: candidates under `code` are only shared
    /// after [`CompiledQuotient::identical`] confirms them, so passing the
    /// same code for two different artifacts (as the collision regression
    /// test does) keeps them separate instead of conflating them.
    pub fn intern_with_code(
        &self,
        spec: &str,
        family: &str,
        code: u64,
        quotient: CompiledQuotient,
    ) -> (Arc<CacheEntry>, bool) {
        let mut inner = self.inner.lock().unwrap();
        let chain = inner.by_code.entry(code).or_default();
        if let Some(existing) = chain
            .iter()
            .find(|entry| entry.quotient.identical(&quotient))
        {
            let entry = Arc::clone(existing);
            inner.by_spec.insert(spec.to_string(), Arc::clone(&entry));
            return (entry, true);
        }
        let entry = Arc::new(CacheEntry {
            code,
            family: family.to_string(),
            quotient: Arc::new(quotient),
            stationary: Mutex::new(None),
        });
        chain.push(Arc::clone(&entry));
        inner.by_spec.insert(spec.to_string(), Arc::clone(&entry));
        (entry, false)
    }

    /// A solved stationary vector of a same-family entry with the given
    /// state count, excluding `exclude_code` (the asking entry itself) — the
    /// warm-start donor for a rate-perturbed variant. Dimensions are checked
    /// here so the guess always fits the asking chain.
    pub fn warm_donor(
        &self,
        family: &str,
        states: usize,
        exclude_code: u64,
    ) -> Option<Arc<Vec<f64>>> {
        let inner = self.inner.lock().unwrap();
        inner
            .by_code
            .values()
            .flatten()
            .filter(|entry| {
                entry.code != exclude_code
                    && entry.family == family
                    && entry.quotient.num_states() == states
            })
            .find_map(|entry| entry.stationary())
    }

    /// Number of distinct interned artifacts.
    pub fn num_artifacts(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .by_code
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Number of registered spec keys.
    pub fn num_specs(&self) -> usize {
        self.inner.lock().unwrap().by_spec.len()
    }
}
