//! The analysis service: protocol requests in, measure payloads out.
//!
//! [`AnalysisService`] is transport-agnostic — the TCP daemon
//! ([`crate::server`]) and in-process callers (tests, benches) drive the
//! same [`AnalysisService::handle`] entry point, which is what makes
//! "daemon responses are bit-identical to in-process results" a structural
//! property rather than a numerical accident: both paths execute the same
//! [`CompiledQuotient`] methods.
//!
//! Per query the service:
//!
//! 1. resolves the model spec in the [`QuotientCache`] (compiling at most
//!    once per spec, interning identical artifacts by presentation code),
//! 2. coalesces concurrent identical computations — one stationary solve
//!    per chain, one batched Fox–Glynn pass per distinct curve query — with
//!    every waiter receiving bit-identical results,
//! 3. warm-starts stationary solves from a solved same-family,
//!    same-dimension sibling (a rate-perturbed variant of a chain already
//!    solved), which shortens the Gauss–Seidel iteration without moving the
//!    fixed point beyond solver tolerance.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use arcade_core::{ArcadeError, ComposerOptions, ExecOptions};
use arcade_sim::{QuotientSimulator, SimulationOptions};
use arcade_telemetry::Recorder;
use watertreatment::ModelSpec;

use crate::cache::{CacheEntry, QuotientCache};
use crate::coalesce::{Coalescer, Role};
use crate::json::Json;
use crate::protocol::{CostKind, Request, Response, SimMeasure};
use crate::stats::{QueryOp, ServiceStats, StatsSnapshot};

/// How many per-query trace files the flight recorder keeps on disk: writing
/// trace `n` deletes trace `n - TRACE_RING`, so a long-running daemon holds a
/// bounded ring of the most recent queries.
const TRACE_RING: u64 = 64;

/// The result of one stationary solve, shared by every coalesced waiter.
#[derive(Clone)]
struct StationarySolve {
    pi: Arc<Vec<f64>>,
    iterations: usize,
    warm: bool,
}

/// Exact identity of a curve query (bitwise on the floats): the coalescing
/// unit for transient passes.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CurveKey {
    code: u64,
    op: &'static str,
    disaster: Option<String>,
    level_bits: u64,
    times_bits: Vec<u64>,
}

impl CurveKey {
    fn new(code: u64, op: &'static str, disaster: Option<&str>, level: f64, times: &[f64]) -> Self {
        CurveKey {
            code,
            op,
            disaster: disaster.map(str::to_string),
            level_bits: level.to_bits(),
            times_bits: times.iter().map(|t| t.to_bits()).collect(),
        }
    }
}

/// The persistent solver service (see the module docs).
pub struct AnalysisService {
    exec: ExecOptions,
    cache: QuotientCache,
    stats: ServiceStats,
    builds: Coalescer<String, Result<Arc<CacheEntry>, ArcadeError>>,
    stationary: Coalescer<u64, Result<StationarySolve, ArcadeError>>,
    curves: Coalescer<CurveKey, Result<Vec<(f64, f64)>, ArcadeError>>,
    trace_dir: Option<PathBuf>,
    query_ids: AtomicU64,
}

impl AnalysisService {
    /// A fresh service whose solves run on the given worker pool, with an
    /// unbounded quotient cache.
    pub fn new(exec: ExecOptions) -> Self {
        AnalysisService::with_cache(exec, QuotientCache::new())
    }

    /// A fresh service whose quotient cache holds at most `capacity` spec
    /// keys, evicting the least-recently-used spec beyond that (see
    /// [`QuotientCache::with_capacity`]). Eviction trades memoised work for
    /// memory; answers stay bit-identical because evicted specs recompile to
    /// identical artifacts.
    pub fn with_cache_capacity(exec: ExecOptions, capacity: usize) -> Self {
        AnalysisService::with_cache(exec, QuotientCache::with_capacity(capacity))
    }

    fn with_cache(exec: ExecOptions, cache: QuotientCache) -> Self {
        AnalysisService {
            exec,
            cache,
            stats: ServiceStats::new(),
            builds: Coalescer::new(),
            stationary: Coalescer::new(),
            curves: Coalescer::new(),
            trace_dir: None,
            query_ids: AtomicU64::new(0),
        }
    }

    /// Turns on the flight recorder: every query runs under its own enabled
    /// [`Recorder`] (probes included), its Chrome-trace JSON is written to
    /// `dir/query-NNNNNN.json`, only the most recent [`TRACE_RING`] files are
    /// kept, and successful payloads carry the `query_id` the file is named
    /// after. Tracing never changes results — spans observe, they do not
    /// steer.
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// The worker pool queries run on.
    pub fn exec(&self) -> ExecOptions {
        self.exec
    }

    /// A point-in-time snapshot of the service counters, including the
    /// cache's eviction count.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snapshot = self.stats.snapshot();
        snapshot.evictions = self.cache.evictions();
        snapshot
    }

    /// The quotient cache (exposed for tests and benches).
    pub fn cache(&self) -> &QuotientCache {
        &self.cache
    }

    /// Handles one request, never panicking on bad input: every failure is a
    /// [`Response::Err`]. Query ops are timed into the per-op latency
    /// histograms; with a trace dir configured each query additionally runs
    /// under its own recorder and lands in the flight-recorder ring.
    pub fn handle(&self, request: &Request) -> Response {
        self.stats.query();
        let op = op_of(request);
        let start = Instant::now();
        let response = match &self.trace_dir {
            None => self.dispatch(request),
            Some(dir) => {
                let id = self.query_ids.fetch_add(1, Ordering::Relaxed);
                let recorder = Recorder::with_probes();
                let response = {
                    let _scope = recorder.enter();
                    self.dispatch(request)
                };
                self.write_trace(dir, id, &recorder);
                match response {
                    Response::Ok(Json::Object(mut fields)) => {
                        fields.push(("query_id".to_string(), Json::from(id)));
                        Response::Ok(Json::Object(fields))
                    }
                    other => other,
                }
            }
        };
        if let Some(op) = op {
            self.stats.op_served(op, start.elapsed().as_micros() as u64);
        }
        response
    }

    /// Writes one flight-recorder trace and prunes the ring. IO failures are
    /// swallowed: tracing must never fail a query.
    fn write_trace(&self, dir: &Path, id: u64, recorder: &Recorder) {
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(
            dir.join(format!("query-{id:06}.json")),
            recorder.chrome_trace(),
        );
        if id >= TRACE_RING {
            let _ = std::fs::remove_file(dir.join(format!("query-{:06}.json", id - TRACE_RING)));
        }
    }

    fn dispatch(&self, request: &Request) -> Response {
        let result = match request {
            Request::Ping => Ok(Json::object(vec![("pong", Json::Bool(true))])),
            Request::Stats => Ok(self.stats().to_json()),
            Request::Metrics => Ok(Json::object(vec![(
                "metrics",
                Json::from(self.stats().to_prometheus()),
            )])),
            Request::Shutdown => Ok(Json::object(vec![("stopping", Json::Bool(true))])),
            Request::Availability { model } => self.availability(model),
            Request::Survivability {
                model,
                disaster,
                level,
                times,
            } => self.survivability(model, disaster, *level, times),
            Request::Cost {
                model,
                kind,
                disaster,
                times,
            } => self.cost(model, *kind, disaster.as_deref(), times),
            Request::Simulate {
                model,
                measure,
                disaster,
                horizon,
                replications,
                seed,
                bias,
                alpha,
            } => self.simulate(
                model,
                *measure,
                disaster.as_deref(),
                *horizon,
                *replications,
                *seed,
                *bias,
                *alpha,
            ),
        };
        match result {
            Ok(payload) => Response::Ok(payload),
            Err(err) => Response::Err(err.to_string()),
        }
    }

    /// Steady-state availability of `model` (cached, coalesced,
    /// warm-started).
    ///
    /// # Errors
    ///
    /// Propagates spec, compilation and solver errors.
    pub fn availability(&self, model: &str) -> Result<Json, ArcadeError> {
        let entry = self.entry(model)?;
        let solve = self.stationary(&entry)?;
        let availability = entry.quotient().availability_of(&solve.pi);
        Ok(Json::object(vec![
            ("model", Json::from(ModelSpec::parse(model)?.canonical())),
            ("availability", Json::Number(availability)),
            ("states", Json::from(entry.quotient().num_states())),
            (
                "source_states",
                Json::from(entry.quotient().source_states()),
            ),
            ("iterations", Json::from(solve.iterations)),
            ("warm_started", Json::Bool(solve.warm)),
            // The daemon always solves the cached materialised quotient; the
            // matrix-free tiers live in the facility experiments.
            ("solver_tier", Json::from("gs-materialised")),
        ]))
    }

    /// Survivability curve of `model` after `disaster` (cached artifact, one
    /// coalesced Fox–Glynn pass per distinct query).
    ///
    /// # Errors
    ///
    /// Propagates spec, compilation, lookup and solver errors.
    pub fn survivability(
        &self,
        model: &str,
        disaster: &str,
        level: f64,
        times: &[f64],
    ) -> Result<Json, ArcadeError> {
        let entry = self.entry(model)?;
        let key = CurveKey::new(entry.code(), "surv", Some(disaster), level, times);
        let curve = self.curve(key, || {
            entry
                .quotient()
                .survivability_curve(disaster, level, times, self.exec)
        })?;
        Ok(Json::object(vec![
            ("model", Json::from(ModelSpec::parse(model)?.canonical())),
            ("disaster", Json::from(disaster)),
            ("level", Json::Number(level)),
            ("curve", Json::curve(&curve)),
        ]))
    }

    /// Cost curve of `model` (instantaneous rate or accumulated), optionally
    /// after a disaster.
    ///
    /// # Errors
    ///
    /// Propagates spec, compilation, lookup and solver errors.
    pub fn cost(
        &self,
        model: &str,
        kind: CostKind,
        disaster: Option<&str>,
        times: &[f64],
    ) -> Result<Json, ArcadeError> {
        let entry = self.entry(model)?;
        let key = CurveKey::new(entry.code(), kind.wire_name(), disaster, 0.0, times);
        let curve = self.curve(key, || match kind {
            CostKind::Instantaneous => entry
                .quotient()
                .instantaneous_cost_curve(disaster, times, self.exec),
            CostKind::Accumulated => entry
                .quotient()
                .accumulated_cost_curve(disaster, times, self.exec),
        })?;
        Ok(Json::object(vec![
            ("model", Json::from(ModelSpec::parse(model)?.canonical())),
            ("kind", Json::from(kind.wire_name())),
            (
                "disaster",
                match disaster {
                    Some(name) => Json::from(name),
                    None => Json::Null,
                },
            ),
            ("curve", Json::curve(&curve)),
        ]))
    }

    /// Monte-Carlo estimate of `measure` on the cached quotient of `model`
    /// (quotient-resident trajectories, O(1) alias jumps, optional failure
    /// biasing). The replication batches ride the service's worker pool;
    /// results are bit-identical for any thread count and depend only on
    /// `(seed, replications)`.
    ///
    /// # Errors
    ///
    /// Propagates spec, compilation, lookup and parameter errors.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate(
        &self,
        model: &str,
        measure: SimMeasure,
        disaster: Option<&str>,
        horizon: f64,
        replications: usize,
        seed: u64,
        bias: f64,
        alpha: f64,
    ) -> Result<Json, ArcadeError> {
        if disaster.is_some() && measure != SimMeasure::Cost {
            return Err(ArcadeError::UnsupportedMeasure {
                reason: format!(
                    "a disaster start applies to the `cost` measure only, not `{}`",
                    measure.wire_name()
                ),
            });
        }
        let entry = self.entry(model)?;
        let quotient = entry.quotient();
        let simulator = QuotientSimulator::new(quotient);
        let options = SimulationOptions {
            replications,
            seed,
            exec: self.exec,
            bias,
            ..Default::default()
        };
        let report = match measure {
            SimMeasure::Unavailability => simulator.unavailability(horizon, &options)?,
            SimMeasure::TimeToFailure => simulator.time_to_failure(horizon, alpha, &options)?,
            SimMeasure::Cost => simulator.accumulated_cost(disaster, horizon, alpha, &options)?,
        };
        let batches = replications.div_ceil(options.batch.max(1));
        self.stats.simulate_run(replications, batches);

        let mut fields = vec![
            ("model", Json::from(ModelSpec::parse(model)?.canonical())),
            ("measure", Json::from(measure.wire_name())),
            (
                "disaster",
                match disaster {
                    Some(name) => Json::from(name),
                    None => Json::Null,
                },
            ),
            ("horizon", Json::Number(horizon)),
            ("replications", Json::from(replications)),
            ("seed", Json::from(seed)),
            ("bias", Json::Number(bias)),
            ("blocks", Json::from(quotient.num_states())),
            ("source_states", Json::from(quotient.source_states())),
            ("mean", Json::Number(report.estimate.mean)),
            ("half_width", Json::Number(report.estimate.half_width)),
        ];
        if let Some(tail) = report.tail {
            fields.push(("alpha", Json::Number(tail.alpha)));
            fields.push(("var", Json::Number(tail.var)));
            fields.push(("var_half_width", Json::Number(tail.var_half_width)));
            fields.push(("cvar", Json::Number(tail.cvar)));
            fields.push(("cvar_half_width", Json::Number(tail.cvar_half_width)));
        }
        if let Some(lr) = report.lr_mean {
            fields.push(("lr_mean", Json::Number(lr.mean)));
            fields.push(("lr_half_width", Json::Number(lr.half_width)));
        }
        Ok(Json::object(fields))
    }

    /// Resolves a model spec to its cached (or freshly compiled and
    /// interned) artifact entry. Concurrent first queries of one spec
    /// compile once.
    fn entry(&self, model: &str) -> Result<Arc<CacheEntry>, ArcadeError> {
        let spec = ModelSpec::parse(model)?;
        let key = spec.canonical();
        if let Some(entry) = self.cache.get(&key) {
            self.stats.cache_hit();
            return Ok(entry);
        }
        let (result, role) = self.builds.run(key.clone(), || {
            let quotient = spec.build_quotient(self.composer_options())?;
            let (entry, shared) = self.cache.insert(&key, &spec.family(), quotient);
            if shared {
                self.stats.interned_shared();
            }
            Ok(entry)
        });
        match role {
            Role::Leader => self.stats.cache_miss(),
            Role::Follower => self.stats.cache_hit(),
        }
        self.reap_evictions();
        result
    }

    /// Releases the memoised build and solve slots of whatever the bounded
    /// cache just evicted, so eviction actually frees the artifact memory
    /// instead of leaving it pinned by the coalescers. A later query of an
    /// evicted spec recompiles and re-solves to bit-identical numbers.
    fn reap_evictions(&self) {
        let (specs, codes) = self.cache.drain_evicted();
        if specs.is_empty() && codes.is_empty() {
            return;
        }
        self.builds.forget_matching(|spec| specs.contains(spec));
        self.stationary.forget_matching(|code| codes.contains(code));
        self.curves.forget_matching(|key| codes.contains(&key.code));
    }

    /// The (coalesced, memoised, warm-started) stationary solve of an
    /// entry's chain.
    fn stationary(&self, entry: &Arc<CacheEntry>) -> Result<StationarySolve, ArcadeError> {
        let (result, role) = self.stationary.run(entry.code(), || {
            let quotient = entry.quotient();
            let donor = self
                .cache
                .warm_donor(entry.family(), quotient.num_states(), entry.code());
            let guess = donor.as_ref().map(|pi| pi.as_slice());
            let (pi, iterations) = quotient.stationary_counted(guess, self.exec)?;
            let pi = Arc::new(pi);
            entry.set_stationary(Arc::clone(&pi));
            let warm = donor.is_some();
            self.stats.stationary_solve(warm, iterations);
            self.stats.tier_solve("gs-materialised");
            Ok(StationarySolve {
                pi,
                iterations,
                warm,
            })
        });
        if role == Role::Follower {
            self.stats.coalesced();
        }
        result
    }

    /// One coalesced transient pass per distinct curve query.
    fn curve(
        &self,
        key: CurveKey,
        compute: impl FnOnce() -> Result<Vec<(f64, f64)>, ArcadeError>,
    ) -> Result<Vec<(f64, f64)>, ArcadeError> {
        let (result, role) = self.curves.run(key, || {
            let curve = compute()?;
            self.stats.transient_pass();
            Ok(curve)
        });
        if role == Role::Follower {
            self.stats.coalesced();
        }
        result
    }

    fn composer_options(&self) -> ComposerOptions {
        ComposerOptions {
            exec: self.exec,
            ..ComposerOptions::default()
        }
    }
}

/// The tracked query op of a request (`None` for ping/shutdown control
/// traffic).
fn op_of(request: &Request) -> Option<QueryOp> {
    match request {
        Request::Availability { .. } => Some(QueryOp::Availability),
        Request::Survivability { .. } => Some(QueryOp::Survivability),
        Request::Cost { .. } => Some(QueryOp::Cost),
        Request::Simulate { .. } => Some(QueryOp::Simulate),
        Request::Stats => Some(QueryOp::Stats),
        Request::Metrics => Some(QueryOp::Metrics),
        Request::Ping | Request::Shutdown => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcade_core::Analysis;
    use watertreatment::facility::{line_model, DISASTER_ALL_PUMPS};
    use watertreatment::{strategies, Line};

    fn service() -> AnalysisService {
        AnalysisService::new(ExecOptions::serial())
    }

    #[test]
    fn availability_matches_the_in_process_analysis_bit_for_bit() {
        let service = service();
        let response = service.handle(&Request::Availability {
            model: "line2/ded".into(),
        });
        let payload = match response {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("query failed: {err}"),
        };
        let model = line_model(Line::Line2, &strategies::dedicated()).unwrap();
        let reference = Analysis::new(&model)
            .unwrap()
            .steady_state_availability()
            .unwrap();
        let served = payload.get("availability").unwrap().as_f64().unwrap();
        assert_eq!(served.to_bits(), reference.to_bits());
        assert!(!payload.get("warm_started").unwrap().as_bool().unwrap());
        assert_eq!(
            payload.get("solver_tier").unwrap().as_str(),
            Some("gs-materialised")
        );
        assert_eq!(service.stats().gs_materialised_solves, 1);
    }

    #[test]
    fn repeat_queries_hit_the_cache_and_memoised_solve() {
        let service = service();
        let request = Request::Availability {
            model: "line2/frf-1".into(),
        };
        let first = service.handle(&request);
        let second = service.handle(&request);
        assert_eq!(first, second, "memoised replies are bit-identical");
        let stats = service.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.stationary_solves, 1, "the solve ran once");
        assert_eq!(stats.coalesced_queries, 1, "the repeat was coalesced");
    }

    #[test]
    fn rate_perturbed_variants_warm_start_from_the_nominal_solution() {
        let service = service();
        let cold = service.handle(&Request::Availability {
            model: "line2/ded".into(),
        });
        assert!(matches!(cold, Response::Ok(_)));
        let warm = service.handle(&Request::Availability {
            model: "line2/ded@1.02".into(),
        });
        let payload = match warm {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("warm query failed: {err}"),
        };
        assert!(payload.get("warm_started").unwrap().as_bool().unwrap());
        let stats = service.stats();
        assert_eq!(stats.warm_solves, 1);
        assert!(
            stats.mean_warm_iterations().unwrap() <= stats.mean_cold_iterations().unwrap(),
            "warm start must not lengthen the iteration: {stats:?}"
        );
    }

    #[test]
    fn curves_match_the_in_process_analysis_and_coalesce() {
        let service = service();
        let times = vec![0.0, 5.0, 20.0];
        let request = Request::Survivability {
            model: "line1/ded".into(),
            disaster: DISASTER_ALL_PUMPS.into(),
            level: 1.0,
            times: times.clone(),
        };
        let payload = match service.handle(&request) {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("query failed: {err}"),
        };
        let model = line_model(Line::Line1, &strategies::dedicated()).unwrap();
        let analysis = Analysis::new(&model).unwrap();
        let reference = analysis
            .survivability_curve(model.disaster(DISASTER_ALL_PUMPS).unwrap(), 1.0, &times)
            .unwrap();
        assert_eq!(payload.get("curve").unwrap().to_curve().unwrap(), reference);
        assert_eq!(service.handle(&request), Response::Ok(payload));
        let stats = service.stats();
        assert_eq!(stats.transient_passes, 1, "one Fox–Glynn pass");
        assert_eq!(stats.coalesced_queries, 1);
    }

    #[test]
    fn capped_cache_answers_bit_identically_after_eviction() {
        let unbounded = service();
        let capped = AnalysisService::with_cache_capacity(ExecOptions::serial(), 1);
        let ded = Request::Availability {
            model: "line2/ded".into(),
        };
        let frf = Request::Availability {
            model: "line2/frf-1".into(),
        };

        let reference = match unbounded.handle(&ded) {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("query failed: {err}"),
        };
        let first = capped.handle(&ded);
        assert!(matches!(capped.handle(&frf), Response::Ok(_)), "evicts ded");
        assert_eq!(capped.cache().num_specs(), 1, "the cap holds");
        let again = match capped.handle(&ded) {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("re-query after eviction failed: {err}"),
        };

        // The evicted spec recompiles and re-solves to bit-identical
        // numbers — eviction trades memoised work, never correctness.
        let bits = |payload: &Json| {
            payload
                .get("availability")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits()
        };
        assert_eq!(bits(&again), bits(&reference));
        match first {
            Response::Ok(payload) => assert_eq!(bits(&again), bits(&payload)),
            Response::Err(err) => panic!("first capped query failed: {err}"),
        }

        let stats = capped.stats();
        assert!(
            stats.evictions >= 1,
            "evictions surface in stats: {stats:?}"
        );
        assert_eq!(
            stats.cache_misses, 3,
            "the evicted spec recompiled instead of riding a pinned memo: {stats:?}"
        );
        assert_eq!(
            stats.stationary_solves, 3,
            "the evicted chain re-solved from scratch: {stats:?}"
        );
        assert_eq!(unbounded.stats().evictions, 0, "unbounded never evicts");
        // The wire-level Stats reply carries the counter too.
        let wire = match capped.handle(&Request::Stats) {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("stats failed: {err}"),
        };
        let snapshot = StatsSnapshot::from_json(&wire).unwrap();
        assert_eq!(snapshot.evictions, capped.cache().evictions());
    }

    #[test]
    fn simulate_serves_bit_identical_json_with_counters() {
        let service = service();
        let request = Request::Simulate {
            model: "line2/ded".into(),
            measure: SimMeasure::Unavailability,
            disaster: None,
            horizon: 500.0,
            replications: 400,
            seed: 11,
            bias: 1.0,
            alpha: 0.95,
        };
        let payload = match service.handle(&request) {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("simulate failed: {err}"),
        };
        // Repeats are bit-identical (same seed, same replication streams).
        assert_eq!(service.handle(&request), Response::Ok(payload.clone()));
        // The payload survives a print/parse round trip exactly — the json
        // module's f64 formatting is bit-exact.
        let reparsed = Json::parse(&payload.to_string()).unwrap();
        assert_eq!(reparsed, payload);
        let mean = payload.get("mean").unwrap().as_f64().unwrap();
        assert!((0.0..1.0).contains(&mean), "{payload}");
        assert!(payload.get("lr_mean").is_none(), "unbiased run has no LR");
        let stats = service.stats();
        assert_eq!(stats.simulate_runs, 2);
        assert_eq!(stats.simulate_replications, 800);
    }

    #[test]
    fn simulate_reports_tails_and_the_lr_certificate() {
        let service = service();
        let request = Request::Simulate {
            model: "line2/ded".into(),
            measure: SimMeasure::Cost,
            disaster: Some(watertreatment::facility::DISASTER_LINE2_MIXED.into()),
            horizon: 24.0,
            replications: 300,
            seed: 3,
            bias: 2.0,
            alpha: 0.9,
        };
        let payload = match service.handle(&request) {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("simulate failed: {err}"),
        };
        for field in [
            "var",
            "cvar",
            "var_half_width",
            "cvar_half_width",
            "lr_mean",
        ] {
            assert!(payload.get(field).is_some(), "missing `{field}`: {payload}");
        }
        let var = payload.get("var").unwrap().as_f64().unwrap();
        let cvar = payload.get("cvar").unwrap().as_f64().unwrap();
        assert!(cvar >= var, "{payload}");
    }

    #[test]
    fn simulate_rejects_bad_parameters_cleanly() {
        let service = service();
        let base = |measure: SimMeasure, disaster: Option<String>, bias: f64| Request::Simulate {
            model: "line2/ded".into(),
            measure,
            disaster,
            horizon: 10.0,
            replications: 10,
            seed: 1,
            bias,
            alpha: 0.95,
        };
        // A disaster start only applies to the cost measure.
        let bad = base(
            SimMeasure::Unavailability,
            Some(DISASTER_ALL_PUMPS.into()),
            1.0,
        );
        assert!(matches!(service.handle(&bad), Response::Err(_)));
        // Non-positive bias is rejected by the engine.
        let bad = base(SimMeasure::Unavailability, None, 0.0);
        assert!(matches!(service.handle(&bad), Response::Err(_)));
        // Unknown disasters fail cleanly.
        let bad = base(SimMeasure::Cost, Some("no-such-disaster".into()), 1.0);
        assert!(matches!(service.handle(&bad), Response::Err(_)));
    }

    #[test]
    fn per_op_latency_histograms_fill_as_queries_run() {
        let service = service();
        let availability = Request::Availability {
            model: "line2/ded".into(),
        };
        assert!(matches!(service.handle(&availability), Response::Ok(_)));
        assert!(matches!(service.handle(&availability), Response::Ok(_)));
        assert!(matches!(service.handle(&Request::Stats), Response::Ok(_)));
        assert!(matches!(service.handle(&Request::Ping), Response::Ok(_)));
        let stats = service.stats();
        assert_eq!(stats.availability_queries, 2);
        assert_eq!(stats.stats_queries, 1);
        assert_eq!(stats.latency_availability.count, 2);
        assert!(stats.latency_availability.p50().is_some());
        assert_eq!(stats.queries, 4, "ping counts as a query…");
        let tracked: u64 = crate::stats::QueryOp::ALL
            .iter()
            .map(|op| stats.queries_of(*op))
            .sum();
        assert_eq!(tracked, 3, "…but has no per-op histogram");
    }

    #[test]
    fn metrics_op_returns_parseable_prometheus_text_agreeing_with_stats() {
        let service = service();
        assert!(matches!(
            service.handle(&Request::Availability {
                model: "line2/ded".into(),
            }),
            Response::Ok(_)
        ));
        let payload = match service.handle(&Request::Metrics) {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("metrics failed: {err}"),
        };
        let text = payload.get("metrics").unwrap().as_str().unwrap();
        let value_of = |name: &str| -> Option<f64> {
            text.lines()
                .find(|line| line.split(' ').next() == Some(name))
                .and_then(|line| line.split(' ').nth(1))
                .and_then(|v| v.parse().ok())
        };
        // The metrics query itself is already counted by the time the
        // exposition renders.
        assert_eq!(value_of("arcade_queries_total"), Some(2.0));
        assert_eq!(
            value_of("arcade_queries_op_total{op=\"availability\"}"),
            Some(1.0)
        );
        assert_eq!(value_of("arcade_stationary_solves_total"), Some(1.0));
        assert_eq!(
            value_of("arcade_tier_solves_total{tier=\"gs-materialised\"}"),
            Some(1.0)
        );
        // The exposition agrees with the structured snapshot taken after it.
        let stats = service.stats();
        assert_eq!(stats.stationary_solves, 1);
        assert_eq!(stats.metrics_queries, 1);
    }

    #[test]
    fn flight_recorder_writes_ring_traces_and_echoes_query_ids() {
        let dir = std::env::temp_dir().join(format!(
            "arcade-flight-recorder-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = AnalysisService::new(ExecOptions::serial()).with_trace_dir(&dir);
        let untraced = AnalysisService::new(ExecOptions::serial());
        let request = Request::Availability {
            model: "line2/ded".into(),
        };
        let traced_payload = match service.handle(&request) {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("traced query failed: {err}"),
        };
        assert_eq!(
            traced_payload.get("query_id").and_then(Json::as_usize),
            Some(0),
            "the first query is trace 0: {traced_payload}"
        );
        // Tracing never perturbs numerics: same bits as an untraced service.
        let reference = match untraced.handle(&request) {
            Response::Ok(payload) => payload,
            Response::Err(err) => panic!("untraced query failed: {err}"),
        };
        let bits = |p: &Json| p.get("availability").unwrap().as_f64().unwrap().to_bits();
        assert_eq!(bits(&traced_payload), bits(&reference));
        // The trace file exists, parses as JSON and carries the solve span.
        let trace = std::fs::read_to_string(dir.join("query-000000.json")).unwrap();
        let parsed = Json::parse(&trace).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("solve")),
            "trace lacks the solve span: {trace}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_become_protocol_errors_not_panics() {
        let service = service();
        for request in [
            Request::Availability {
                model: "line9/ded".into(),
            },
            Request::Survivability {
                model: "line1/ded".into(),
                disaster: "no-such-disaster".into(),
                level: 1.0,
                times: vec![1.0],
            },
            Request::Survivability {
                model: "line1/ded".into(),
                disaster: DISASTER_ALL_PUMPS.into(),
                level: 2.0,
                times: vec![1.0],
            },
        ] {
            assert!(
                matches!(service.handle(&request), Response::Err(_)),
                "{request:?} must fail cleanly"
            );
        }
    }
}
