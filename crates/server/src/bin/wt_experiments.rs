//! Command-line runner for the paper's experiments and the analysis daemon.
//!
//! ```text
//! wt-experiments all                # run every table and figure
//! wt-experiments --threads 4 all    # same, on a 4-worker pool
//! wt-experiments --line 1 all       # only Line 1 experiments
//! wt-experiments --json table2      # the same results as JSON
//! wt-experiments table1             # state-space sizes
//! wt-experiments table2             # steady-state availability
//! wt-experiments facility           # two-line facility: product vs joint chain
//! wt-experiments fig3               # reliability over time
//! wt-experiments fig4 fig5          # survivability Line 1, Disaster 1
//! wt-experiments fig6 fig7          # costs Line 1, Disaster 1
//! wt-experiments fig8 fig9          # survivability Line 2, Disaster 2
//! wt-experiments fig10 fig11        # costs Line 2, Disaster 2
//!
//! wt-experiments facility --k 2,3,4,8       # k-line reduction ladder
//! wt-experiments facility --k 4 --strategy frf-1
//! wt-experiments facility --lines ded,ded,frf-1
//!
//! wt-experiments simulate line1/frf-1 --replications 2000   # quotient Monte-Carlo
//! wt-experiments simulate line2/ded --measure cost --disaster disaster-2-mixed \
//!     --horizon 48 --bias 100 --json
//!
//! wt-experiments --trace out.json facility --k 3   # Chrome-trace any command
//!
//! wt-experiments serve --port 7411          # run the analysis daemon
//! wt-experiments serve --trace-dir traces/  # …with the per-query flight recorder
//! wt-experiments query --port 7411 availability line1/ded
//! wt-experiments query --port 7411 survivability line2/ded \
//!     disaster-2-mixed 1.0 0,20,40,60
//! wt-experiments query --port 7411 cost accumulated facility/ded+ded \
//!     facility-all-pumps 0,50,100
//! wt-experiments query --port 7411 stats    # counter + latency table
//! wt-experiments query --port 7411 metrics  # Prometheus text exposition
//! wt-experiments query --port 7411 shutdown
//! ```
//!
//! `--threads N` sizes the worker pool shared by the frontier exploration,
//! the solver kernels and the per-strategy experiment sweeps; `--threads 1`
//! is the serial path and `--threads 0` (the default) auto-detects. Results
//! are identical for every thread count.
//!
//! `--line` selects the process line(s) by index (`--line 2`, `--line 1,2`,
//! `--line all`; `both` is accepted as an alias of `all`): tables report only
//! the selected lines and line-specific figures (figs. 4–7 are Line 1, figs.
//! 8–11 are Line 2) are skipped when their line is deselected. Indices beyond
//! the loaded model's line count are rejected with the model's actual size.
//! The `facility` experiment needs both lines and is skipped otherwise.
//!
//! `facility --k K0,K1,...` prints the **k-line reduction ladder**: for each
//! homogeneous bank of `k` identical twin lines (strategy `--strategy`,
//! default `ded`) the flat, product and orbit rungs and the availability from
//! the cheapest exact tier — the joint solve on the materialised orbit fold
//! where the product fits, the lazy orbit enumeration where only the orbit
//! bound does (the flat k-product is never materialised), the counts-only
//! product form beyond that. `facility --lines s0,s1,...` runs one
//! heterogeneous bank through the same ladder via the registry spec
//! `facility/s0+s1+...`.
//!
//! `--symmetric-only` restricts the `facility` experiment to the symmetric
//! strategy pairs and prints the symmetry engine's reduction ladder (product
//! blocks → sorted-tuple orbit representatives → solved blocks, plus the
//! exact-lumping minimality certificate) instead of the full figure sweep.
//!
//! `--json` prints every requested table and figure as one JSON document per
//! experiment instead of the text rendering. `query` replies are always the
//! daemon's JSON payload, one document per line.

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::Arc;

use arcade_core::ExecOptions;
use arcade_server::{
    server, AnalysisService, Client, CostKind, Json, QueryOp, Request, Response, SimMeasure,
    StatsSnapshot,
};
use arcade_telemetry::Recorder;
use watertreatment::experiments::{
    self, grids, Figure, KLineReductionRow, SymmetryReductionRow, Table1Row, Table2Row,
    TableFacilityRow,
};
use watertreatment::{Line, LineSelection, ModelSpec};

const USAGE: &str = "usage: wt-experiments [--trace FILE] [--threads N] [--line I0,I1|all] \
     [--symmetric-only] \
     [--json] [all|table1|table2|facility|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11]...\n\
     |  wt-experiments facility [--k K0,K1,..] [--strategy S] [--lines S0,S1,..] \
     [--threads N] [--json]\n\
     |  wt-experiments simulate MODEL [--measure unavailability|ttf|cost] [--disaster D] \
     [--horizon H] [--replications N] [--seed S] [--bias B] [--alpha A] [--threads N] [--json]\n\
     |  wt-experiments serve [--port N] [--threads N] [--cache-cap N] [--trace-dir DIR]\n\
     |  wt-experiments query [--port N] [--json] \
     <ping|stats|metrics|shutdown|availability MODEL|simulate MODEL|\
survivability MODEL DISASTER LEVEL T0,T1,..|\
cost instantaneous|accumulated MODEL DISASTER|- T0,T1,..>";

const DEFAULT_PORT: u16 = 7411;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--trace FILE` wraps any subcommand: install a process-global recorder
    // (spans + probes), run the command, write the Chrome-trace JSON.
    let trace_file = match extract_trace_flag(&mut args) {
        Ok(path) => path,
        Err(message) => return usage_error(&message),
    };
    let recorder = trace_file.as_ref().map(|_| {
        let recorder = Recorder::with_probes();
        Recorder::install_global(recorder.clone());
        recorder
    });
    let code = match args.first().map(String::as_str) {
        Some("serve") => serve_main(&args[1..]),
        Some("query") => query_main(&args[1..]),
        Some("simulate") => simulate_main(&args[1..]),
        _ => experiments_main(&args),
    };
    if let (Some(path), Some(recorder)) = (trace_file, recorder) {
        match std::fs::write(&path, recorder.chrome_trace()) {
            Ok(()) => eprintln!(
                "trace: {} spans written to {path} (chrome://tracing, Perfetto)",
                recorder.spans().len()
            ),
            Err(err) => {
                eprintln!("cannot write trace file `{path}`: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    code
}

/// Removes `--trace FILE` / `--trace=FILE` from `args`, returning the file.
fn extract_trace_flag(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(position) = args
        .iter()
        .position(|arg| arg == "--trace" || arg.starts_with("--trace="))
    else {
        return Ok(None);
    };
    let arg = args.remove(position);
    if let Some(value) = arg.strip_prefix("--trace=") {
        return Ok(Some(value.to_string()));
    }
    if position < args.len() {
        return Ok(Some(args.remove(position)));
    }
    Err("--trace expects a file path".to_string())
}

/// `serve [--port N] [--threads N] [--cache-cap N] [--trace-dir DIR]`: run
/// the daemon in the foreground. `--cache-cap` bounds the quotient cache to
/// N spec keys with least-recently-used eviction (unbounded by default);
/// `--trace-dir` turns on the flight recorder (a bounded ring of per-query
/// Chrome-trace files, query ids echoed in replies).
fn serve_main(args: &[String]) -> ExitCode {
    let mut port = DEFAULT_PORT;
    let mut exec = ExecOptions::default();
    let mut cache_cap: Option<usize> = None;
    let mut trace_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(result) = flag_value(arg, "--port", &mut iter) {
            match result.and_then(|value| {
                value
                    .parse::<u16>()
                    .map_err(|_| format!("invalid --port value `{value}`"))
            }) {
                Ok(p) => port = p,
                Err(message) => return usage_error(&message),
            }
        } else if let Some(result) = flag_value(arg, "--threads", &mut iter) {
            match result.and_then(|value| {
                value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --threads value `{value}`"))
            }) {
                Ok(threads) => exec = ExecOptions::with_threads(threads),
                Err(message) => return usage_error(&message),
            }
        } else if let Some(result) = flag_value(arg, "--cache-cap", &mut iter) {
            match result.and_then(|value| {
                value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --cache-cap value `{value}`"))
            }) {
                Ok(cap) => cache_cap = Some(cap),
                Err(message) => return usage_error(&message),
            }
        } else if let Some(result) = flag_value(arg, "--trace-dir", &mut iter) {
            match result {
                Ok(dir) => trace_dir = Some(dir),
                Err(message) => return usage_error(&message),
            }
        } else {
            return usage_error(&format!("unknown serve option `{arg}`"));
        }
    }
    let mut service = match cache_cap {
        Some(cap) => AnalysisService::with_cache_capacity(exec, cap),
        None => AnalysisService::new(exec),
    };
    if let Some(dir) = &trace_dir {
        service = service.with_trace_dir(dir);
        println!("flight recorder on: per-query traces in {dir}/query-NNNNNN.json");
    }
    let service = Arc::new(service);
    let handle = match server::spawn(("127.0.0.1", port), service) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("wt-experiments daemon listening on {}", handle.addr());
    println!(
        "stop with: wt-experiments query --port {} shutdown",
        handle.addr().port()
    );
    handle.join_until_shutdown();
    println!("daemon stopped");
    ExitCode::SUCCESS
}

/// `query [--port N] [--json] <op> [args...]`: one request. Most ops print
/// the JSON payload; `stats` renders a counter/latency table and `metrics`
/// prints the Prometheus text unless `--json` asks for the raw payload.
fn query_main(args: &[String]) -> ExitCode {
    let mut port = DEFAULT_PORT;
    let mut json = false;
    let mut rest: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(result) = flag_value(arg, "--port", &mut iter) {
            match result.and_then(|value| {
                value
                    .parse::<u16>()
                    .map_err(|_| format!("invalid --port value `{value}`"))
            }) {
                Ok(p) => port = p,
                Err(message) => return usage_error(&message),
            }
        } else if arg == "--json" {
            json = true;
        } else {
            rest.push(arg);
        }
    }
    let request = match parse_query(&rest) {
        Ok(request) => request,
        Err(message) => return usage_error(&message),
    };
    let mut client = match Client::connect(("127.0.0.1", port)) {
        Ok(client) => client,
        Err(err) => {
            eprintln!("cannot reach the daemon on 127.0.0.1:{port}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let payload = match client.request(&request) {
        Ok(payload) => payload,
        Err(err) => {
            eprintln!("query failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    match request {
        Request::Stats if !json => match StatsSnapshot::from_json(&payload) {
            Ok(snapshot) => print!("{}", format_stats(&snapshot)),
            Err(err) => {
                eprintln!("malformed stats payload: {err}");
                return ExitCode::FAILURE;
            }
        },
        Request::Metrics if !json => match payload.get("metrics").and_then(Json::as_str) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("reply lacks a `metrics` text field: {payload}");
                return ExitCode::FAILURE;
            }
        },
        _ => println!("{payload}"),
    }
    ExitCode::SUCCESS
}

/// The human rendering of a stats snapshot: the scalar counters followed by
/// an aligned per-op latency percentile table.
fn format_stats(snapshot: &StatsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "uptime {} s  queries {}  cache {}/{} hit/miss (evictions {})  coalesced {}\n",
        snapshot.uptime_seconds,
        snapshot.queries,
        snapshot.cache_hits,
        snapshot.cache_misses,
        snapshot.evictions,
        snapshot.coalesced_queries,
    ));
    out.push_str(&format!(
        "solves {} ({} warm)  tiers gs/jacobi/krylov {}/{}/{}  transient passes {}\n",
        snapshot.stationary_solves,
        snapshot.warm_solves,
        snapshot.gs_materialised_solves,
        snapshot.jacobi_operator_solves,
        snapshot.krylov_operator_solves,
        snapshot.transient_passes,
    ));
    out.push_str(&format!(
        "simulate {} runs / {} replications\n\n",
        snapshot.simulate_runs, snapshot.simulate_replications,
    ));
    out.push_str(&format!(
        "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
        "op", "count", "p50(us)", "p90(us)", "p99(us)", "max(us)"
    ));
    let quantile = |value: Option<u64>| value.map_or("-".to_string(), |v| v.to_string());
    for op in QueryOp::ALL {
        let hist = snapshot.latency_of(op);
        out.push_str(&format!(
            "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
            op.name(),
            snapshot.queries_of(op),
            quantile(hist.p50()),
            quantile(hist.p90()),
            quantile(hist.p99()),
            if hist.count > 0 {
                hist.max.to_string()
            } else {
                "-".to_string()
            },
        ));
    }
    for (label, hist) in [
        ("solve-iters", &snapshot.solve_iterations_hist),
        ("sim-batches", &snapshot.replication_batches_hist),
    ] {
        out.push_str(&format!(
            "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9}\n",
            label,
            hist.count,
            quantile(hist.p50()),
            quantile(hist.p90()),
            quantile(hist.p99()),
            if hist.count > 0 {
                hist.max.to_string()
            } else {
                "-".to_string()
            },
        ));
    }
    out
}

/// `simulate MODEL [--measure M] [--disaster D] [--horizon H]
/// [--replications N] [--seed S] [--bias B] [--alpha A] [--threads N]
/// [--json]`: one in-process Monte-Carlo estimate on the model's quotient.
///
/// The command drives the same [`AnalysisService::handle`] entry point as the
/// daemon, so `--json` prints byte-for-byte the payload a daemon `simulate`
/// query would return (the `json` module's f64 rendering is bit-exact).
fn simulate_main(args: &[String]) -> ExitCode {
    let mut model: Option<String> = None;
    let mut measure = SimMeasure::Unavailability;
    let mut disaster: Option<String> = None;
    let mut horizon = 1000.0;
    let mut replications = 10_000usize;
    let mut seed = arcade_server::protocol::DEFAULT_SIM_SEED;
    let mut bias = 1.0;
    let mut alpha = arcade_server::protocol::DEFAULT_SIM_ALPHA;
    let mut exec = ExecOptions::default();
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        macro_rules! numeric_flag {
            ($flag:literal, $target:ident, $ty:ty) => {
                if let Some(result) = flag_value(arg, $flag, &mut iter) {
                    match result.and_then(|value| {
                        value
                            .parse::<$ty>()
                            .map_err(|_| format!(concat!("invalid ", $flag, " value `{}`"), value))
                    }) {
                        Ok(value) => $target = value,
                        Err(message) => return usage_error(&message),
                    }
                    continue;
                }
            };
        }
        numeric_flag!("--horizon", horizon, f64);
        numeric_flag!("--replications", replications, usize);
        numeric_flag!("--seed", seed, u64);
        numeric_flag!("--bias", bias, f64);
        numeric_flag!("--alpha", alpha, f64);
        if let Some(result) = flag_value(arg, "--measure", &mut iter) {
            match result.and_then(|value| {
                SimMeasure::parse(&value.to_lowercase())
                    .ok_or_else(|| format!("invalid --measure value `{value}`"))
            }) {
                Ok(value) => measure = value,
                Err(message) => return usage_error(&message),
            }
        } else if let Some(result) = flag_value(arg, "--disaster", &mut iter) {
            match result {
                Ok(value) => disaster = Some(value),
                Err(message) => return usage_error(&message),
            }
        } else if let Some(result) = flag_value(arg, "--threads", &mut iter) {
            match result.and_then(|value| {
                value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid --threads value `{value}`"))
            }) {
                Ok(threads) => exec = ExecOptions::with_threads(threads),
                Err(message) => return usage_error(&message),
            }
        } else if arg == "--json" {
            json = true;
        } else if arg.starts_with('-') {
            return usage_error(&format!("unknown simulate option `{arg}`"));
        } else if model.is_none() {
            model = Some(arg.clone());
        } else {
            return usage_error(&format!("unexpected simulate argument `{arg}`"));
        }
    }
    let Some(model) = model else {
        return usage_error("simulate needs a MODEL spec (e.g. line1/frf-1)");
    };

    let service = AnalysisService::new(exec);
    let request = Request::Simulate {
        model,
        measure,
        disaster,
        horizon,
        replications,
        seed,
        bias,
        alpha,
    };
    let payload = match service.handle(&request) {
        Response::Ok(payload) => payload,
        Response::Err(err) => {
            eprintln!("simulate failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{payload}");
        return ExitCode::SUCCESS;
    }
    let text = |name: &str| payload.get(name).map(|v| v.to_string()).unwrap_or_default();
    println!(
        "== Simulate {} on {} ({} blocks / {} source states) ==",
        text("measure"),
        text("model"),
        text("blocks"),
        text("source_states"),
    );
    println!(
        "replications {}  seed {}  horizon {} h  bias {}",
        text("replications"),
        text("seed"),
        text("horizon"),
        text("bias"),
    );
    println!("mean {} ± {}", text("mean"), text("half_width"));
    if payload.get("var").is_some() {
        println!(
            "VaR[{}] {} ± {}   CVaR {} ± {}",
            text("alpha"),
            text("var"),
            text("var_half_width"),
            text("cvar"),
            text("cvar_half_width"),
        );
    }
    if payload.get("lr_mean").is_some() {
        println!(
            "likelihood-ratio certificate: mean {} ± {} (must cover 1)",
            text("lr_mean"),
            text("lr_half_width"),
        );
    }
    ExitCode::SUCCESS
}

fn parse_query(words: &[&String]) -> Result<Request, String> {
    let times_of = |word: &str| -> Result<Vec<f64>, String> {
        word.split(',')
            .filter(|t| !t.is_empty())
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("invalid time point `{t}`"))
            })
            .collect()
    };
    match words {
        [op] if op.as_str() == "ping" => Ok(Request::Ping),
        [op] if op.as_str() == "stats" => Ok(Request::Stats),
        [op] if op.as_str() == "metrics" => Ok(Request::Metrics),
        [op] if op.as_str() == "shutdown" => Ok(Request::Shutdown),
        [op, model] if op.as_str() == "availability" => Ok(Request::Availability {
            model: model.to_string(),
        }),
        [op, model, disaster, level, times] if op.as_str() == "survivability" => {
            Ok(Request::Survivability {
                model: model.to_string(),
                disaster: disaster.to_string(),
                level: level
                    .parse::<f64>()
                    .map_err(|_| format!("invalid service level `{level}`"))?,
                times: times_of(times)?,
            })
        }
        [op, kind, model, disaster, times] if op.as_str() == "cost" => Ok(Request::Cost {
            model: model.to_string(),
            kind: CostKind::parse(kind).ok_or_else(|| format!("invalid cost kind `{kind}`"))?,
            disaster: (disaster.as_str() != "-").then(|| disaster.to_string()),
            times: times_of(times)?,
        }),
        // `simulate MODEL` asks the daemon for the default Monte-Carlo
        // estimate (unavailability, protocol-default horizon/replications);
        // the in-process `simulate` subcommand exposes every knob.
        [op, model] if op.as_str() == "simulate" => Ok(Request::Simulate {
            model: model.to_string(),
            measure: SimMeasure::Unavailability,
            disaster: None,
            horizon: 1000.0,
            replications: 10_000,
            seed: arcade_server::protocol::DEFAULT_SIM_SEED,
            bias: 1.0,
            alpha: arcade_server::protocol::DEFAULT_SIM_ALPHA,
        }),
        _ => Err("unrecognised query".to_string()),
    }
}

/// Matches `--flag value` / `--flag=value`; advances `iter` for the spaced
/// form. `Some(Err(..))` means the flag was present but valueless.
fn flag_value(
    arg: &str,
    flag: &str,
    iter: &mut std::slice::Iter<'_, String>,
) -> Option<Result<String, String>> {
    if let Some(value) = arg.strip_prefix(flag) {
        if let Some(value) = value.strip_prefix('=') {
            return Some(Ok(value.to_string()));
        }
        if value.is_empty() {
            return Some(match iter.next() {
                Some(value) => Ok(value.clone()),
                None => Err(format!("{flag} expects a value")),
            });
        }
    }
    None
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}\n{USAGE}");
    ExitCode::from(2)
}

/// Resolves a `--line` argument against the paper's two-line facility:
/// arbitrary indices parse, but only indices the model actually has resolve.
fn parse_line_selection(value: &str) -> Result<Vec<Line>, String> {
    let selection = LineSelection::from_arg(value).ok_or_else(|| {
        format!("invalid --line value `{value}` (expected indices like 1,2 or all)")
    })?;
    let indices = selection.resolve(Line::both().len())?;
    Ok(indices
        .into_iter()
        .map(|index| Line::both()[index])
        .collect())
}

fn experiments_main(args: &[String]) -> ExitCode {
    let mut requested: BTreeSet<String> = BTreeSet::new();
    let mut exec = ExecOptions::default();
    let mut lines: Vec<Line> = Line::both().to_vec();
    let mut symmetric_only = false;
    let mut json = false;
    let mut kline_ks: Vec<usize> = Vec::new();
    let mut kline_lines: Vec<String> = Vec::new();
    let mut kline_strategy = "ded".to_string();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let lower = arg.to_lowercase();
        if let Some(value) = lower.strip_prefix("--threads=") {
            match value.parse::<usize>() {
                Ok(threads) => exec = ExecOptions::with_threads(threads),
                Err(_) => return usage_error(&format!("invalid --threads value `{value}`")),
            }
        } else if lower == "--threads" {
            match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(threads)) => exec = ExecOptions::with_threads(threads),
                _ => return usage_error("--threads expects a number"),
            }
        } else if let Some(result) = flag_value(&lower, "--lines", &mut iter) {
            match result {
                Ok(value) => {
                    kline_lines = value
                        .to_lowercase()
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect()
                }
                Err(message) => return usage_error(&message),
            }
        } else if let Some(result) = flag_value(&lower, "--line", &mut iter) {
            match result.and_then(|value| parse_line_selection(&value.to_lowercase())) {
                Ok(selection) => lines = selection,
                Err(message) => return usage_error(&message),
            }
        } else if let Some(result) = flag_value(&lower, "--k", &mut iter) {
            let parsed = result.and_then(|value| {
                value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| format!("invalid --k value `{s}`"))
                    })
                    .collect::<Result<Vec<usize>, String>>()
            });
            match parsed {
                Ok(ks) => kline_ks = ks,
                Err(message) => return usage_error(&message),
            }
        } else if let Some(result) = flag_value(&lower, "--strategy", &mut iter) {
            match result {
                Ok(value) => kline_strategy = value.to_lowercase(),
                Err(message) => return usage_error(&message),
            }
        } else if lower == "--symmetric-only" {
            symmetric_only = true;
        } else if lower == "--json" {
            json = true;
        } else if lower.starts_with('-') {
            return usage_error(&format!("unknown option `{arg}`"));
        } else {
            requested.insert(lower);
        }
    }
    if !kline_ks.is_empty() || !kline_lines.is_empty() {
        if !requested.is_empty() && requested != BTreeSet::from(["facility".to_string()]) {
            return usage_error("--k/--lines apply to the `facility` experiment only");
        }
        if let Err(err) = run_kline(&kline_ks, &kline_lines, &kline_strategy, exec, json) {
            eprintln!("experiment failed: {err}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    if requested.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let all = requested.contains("all");
    let wants = |name: &str| all || requested.contains(name);

    if let Err(err) = run(wants, exec, &lines, symmetric_only, json) {
        eprintln!("experiment failed: {err}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `facility --k ... / --lines ...` sweep: builds one registry spec per
/// requested bank and prints the k-line reduction ladder.
fn run_kline(
    ks: &[usize],
    line_strategies: &[String],
    strategy: &str,
    exec: ExecOptions,
    json: bool,
) -> Result<(), arcade_core::ArcadeError> {
    let mut specs = Vec::new();
    for &k in ks {
        specs.push(ModelSpec::parse(&format!("facility/{strategy}^{k}"))?);
    }
    if !line_strategies.is_empty() {
        specs.push(ModelSpec::parse(&format!(
            "facility/{}",
            line_strategies.join("+")
        ))?);
    }
    let rows = experiments::kline_reduction_table(&specs, exec)?;
    if json {
        println!(
            "{}",
            Json::object(vec![
                ("experiment", Json::from("facility-kline")),
                ("rows", kline_json(&rows)),
            ])
        );
    } else {
        println!("== Facility k-line reduction ladder: flat → product → orbit ==");
        println!("{}", experiments::format_kline_reduction(&rows));
        println!(
            "Tiers: joint-solve runs the matrix-free Krylov solver on the Kronecker-sum\n\
             operator by default (ARCADE_JOINT_SOLVER=materialise restores the legacy\n\
             materialised Gauss-Seidel path on the orbit fold); orbit-enumeration walks\n\
             the sorted multisets lazily under the product measure (the flat k-product\n\
             is never materialised); product-form reports counts and\n\
             1 - prod P(line down) only.\n"
        );
    }
    Ok(())
}

fn run(
    wants: impl Fn(&str) -> bool,
    exec: ExecOptions,
    lines: &[Line],
    symmetric_only: bool,
    json: bool,
) -> Result<(), arcade_core::ArcadeError> {
    let has = |line: Line| lines.contains(&line);
    let both = has(Line::Line1) && has(Line::Line2);
    let figure = |fig: &Figure| {
        if json {
            println!("{}", figure_json(fig));
        } else {
            println!("{}", experiments::format_figure(fig));
        }
    };
    let skip = |name: &str, needed: &str| {
        if json {
            println!(
                "{}",
                Json::object(vec![
                    ("experiment", Json::from(name)),
                    ("skipped", Json::Bool(true)),
                    ("needs", Json::from(needed)),
                ])
            );
        } else {
            println!("== {name}: skipped (needs {needed}; pass --line both) ==\n");
        }
    };

    if wants("table1") {
        let measured = experiments::table1_lines_with(lines, exec)?;
        let compositional = experiments::table1_compositional()?;
        if json {
            println!(
                "{}",
                Json::object(vec![
                    ("experiment", Json::from("table1")),
                    ("measured", table1_json(&measured)),
                    (
                        "paper_reference",
                        table1_json(&experiments::table1_paper_reference()),
                    ),
                    ("compositional", table1_json(&compositional)),
                ])
            );
        } else {
            println!("== Table 1: state-space sizes (flat product, as the paper reports) ==");
            println!("{}", experiments::format_table1(&measured));
            println!("-- paper reference --");
            println!(
                "{}",
                experiments::format_table1(&experiments::table1_paper_reference())
            );
            println!(
                "-- compositional pipeline (per-line sub-chains lumped before the product) --"
            );
            println!("{}", experiments::format_table1(&compositional));
        }
    }
    if wants("table2") {
        let measured = experiments::table2_lines_with(lines, exec)?;
        if json {
            println!(
                "{}",
                Json::object(vec![
                    ("experiment", Json::from("table2")),
                    ("measured", table2_json(&measured)),
                    (
                        "paper_reference",
                        table2_json(&experiments::table2_paper_reference()),
                    ),
                ])
            );
        } else {
            println!("== Table 2: steady-state availability ==");
            println!("{}", experiments::format_table2(&measured));
            println!("-- paper reference --");
            println!(
                "{}",
                experiments::format_table2(&experiments::table2_paper_reference())
            );
        }
    }
    if wants("facility") {
        if both && symmetric_only {
            let rows = experiments::symmetry_reduction_table(exec)?;
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("experiment", Json::from("facility-symmetry")),
                        ("rows", symmetry_json(&rows)),
                    ])
                );
            } else {
                println!(
                    "== Facility symmetry: orbit quotients of the symmetric strategy pairs =="
                );
                println!("{}", experiments::format_symmetry_reduction(&rows));
                println!(
                    "Paper pairs compose two *different* lines, so no cross-line symmetry\n\
                     exists; the `Exact-min` column certifies their products minimal. The\n\
                     twin facilities (two identical Line 2 copies) fold to n(n+1)/2 sorted\n\
                     pairs before materialisation.\n"
                );
            }
        } else if both {
            let suite = experiments::facility_suite_with(
                &experiments::paired_strategies(),
                &grids::fig4_to_6(),
                &grids::fig4_to_6(),
                &grids::fig7(),
                exec,
            )?;
            if json {
                println!(
                    "{}",
                    Json::object(vec![
                        ("experiment", Json::from("facility")),
                        ("table", facility_table_json(&suite.table)),
                        ("recovery_full", figure_json(&suite.recovery_full)),
                        ("recovery_basic", figure_json(&suite.recovery_basic)),
                        ("cost_instantaneous", figure_json(&suite.cost_instantaneous)),
                        ("cost_accumulated", figure_json(&suite.cost_accumulated)),
                    ])
                );
            } else {
                println!(
                    "== Facility: combined availability, product form vs genuine joint chain =="
                );
                println!("{}", experiments::format_table_facility(&suite.table));
                println!("{}", experiments::format_figure(&suite.recovery_full));
                println!("{}", experiments::format_figure(&suite.recovery_basic));
                println!("{}", experiments::format_figure(&suite.cost_instantaneous));
                println!("{}", experiments::format_figure(&suite.cost_accumulated));
            }
        } else {
            skip("facility", "both lines");
        }
    }
    if wants("fig3") {
        let fig = experiments::fig3_reliability_lines_with(lines, &grids::fig3(), exec)?;
        figure(&fig);
    }
    if wants("fig4") || wants("fig5") {
        if has(Line::Line1) {
            let (fig4, fig5) =
                experiments::fig4_5_survivability_line1_with(&grids::fig4_to_6(), exec)?;
            if wants("fig4") {
                figure(&fig4);
            }
            if wants("fig5") {
                figure(&fig5);
            }
        } else {
            skip("fig4/fig5", "line 1");
        }
    }
    if wants("fig6") || wants("fig7") {
        if has(Line::Line1) {
            let (fig6, fig7) =
                experiments::fig6_7_cost_line1_with(&grids::fig4_to_6(), &grids::fig7(), exec)?;
            if wants("fig6") {
                figure(&fig6);
            }
            if wants("fig7") {
                figure(&fig7);
            }
        } else {
            skip("fig6/fig7", "line 1");
        }
    }
    if wants("fig8") || wants("fig9") {
        if has(Line::Line2) {
            let (fig8, fig9) =
                experiments::fig8_9_survivability_line2_with(&grids::fig8_9(), exec)?;
            if wants("fig8") {
                figure(&fig8);
            }
            if wants("fig9") {
                figure(&fig9);
            }
        } else {
            skip("fig8/fig9", "line 2");
        }
    }
    if wants("fig10") || wants("fig11") {
        if has(Line::Line2) {
            let (fig10, fig11) = experiments::fig10_11_cost_line2_with(&grids::fig10_11(), exec)?;
            if wants("fig10") {
                figure(&fig10);
            }
            if wants("fig11") {
                figure(&fig11);
            }
        } else {
            skip("fig10/fig11", "line 2");
        }
    }
    Ok(())
}

fn figure_json(figure: &Figure) -> Json {
    Json::object(vec![
        ("id", Json::from(figure.id.as_str())),
        ("title", Json::from(figure.title.as_str())),
        ("x_label", Json::from(figure.x_label.as_str())),
        ("y_label", Json::from(figure.y_label.as_str())),
        (
            "series",
            Json::Array(
                figure
                    .series
                    .iter()
                    .map(|series| {
                        Json::object(vec![
                            ("label", Json::from(series.label.as_str())),
                            ("points", Json::curve(&series.points)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn table1_json(rows: &[Table1Row]) -> Json {
    let opt = |value: Option<usize>| value.map_or(Json::Null, Json::from);
    Json::Array(
        rows.iter()
            .map(|row| {
                Json::object(vec![
                    ("line", Json::from(row.line.id())),
                    ("strategy", Json::from(row.strategy.as_str())),
                    ("states", Json::from(row.states)),
                    ("transitions", Json::from(row.transitions)),
                    ("lumped_states", opt(row.lumped_states)),
                    ("lumped_transitions", opt(row.lumped_transitions)),
                ])
            })
            .collect(),
    )
}

fn table2_json(rows: &[Table2Row]) -> Json {
    Json::Array(
        rows.iter()
            .map(|row| {
                Json::object(vec![
                    ("strategy", Json::from(row.strategy.as_str())),
                    ("line1", Json::Number(row.line1)),
                    ("line2", Json::Number(row.line2)),
                    ("combined", Json::Number(row.combined)),
                ])
            })
            .collect(),
    )
}

fn facility_table_json(rows: &[TableFacilityRow]) -> Json {
    Json::Array(
        rows.iter()
            .map(|row| {
                Json::object(vec![
                    ("pair", Json::from(row.pair.as_str())),
                    ("line1", Json::Number(row.line1)),
                    ("line2", Json::Number(row.line2)),
                    ("combined", Json::Number(row.combined)),
                    ("joint", Json::Number(row.joint)),
                    ("difference", Json::Number(row.difference)),
                    ("joint_blocks", Json::from(row.joint_blocks)),
                    ("solved_blocks", Json::from(row.solved_blocks)),
                    ("residual", Json::Number(row.residual)),
                    ("solver_tier", Json::from(row.solver_tier.as_str())),
                    ("iterations", Json::from(row.iterations)),
                ])
            })
            .collect(),
    )
}

fn kline_json(rows: &[KLineReductionRow]) -> Json {
    let opt_count = |value: Option<usize>| value.map_or(Json::Null, Json::from);
    let opt_number = |value: Option<f64>| value.map_or(Json::Null, Json::Number);
    Json::Array(
        rows.iter()
            .map(|row| {
                Json::object(vec![
                    ("k", Json::from(row.k)),
                    ("facility", Json::from(row.facility.as_str())),
                    ("flat_states", Json::from(row.flat_states)),
                    ("product_blocks", Json::from(row.product_blocks)),
                    ("orbit_blocks", opt_count(row.orbit_blocks)),
                    ("solved_blocks", opt_count(row.solved_blocks)),
                    ("availability", Json::Number(row.availability)),
                    ("joint_availability", opt_number(row.joint_availability)),
                    ("certificate", opt_number(row.certificate)),
                    ("tier", Json::from(row.tier.as_str())),
                    (
                        "solver",
                        row.solver.as_deref().map_or(Json::Null, Json::from),
                    ),
                    ("iterations", opt_count(row.iterations)),
                ])
            })
            .collect(),
    )
}

fn symmetry_json(rows: &[SymmetryReductionRow]) -> Json {
    Json::Array(
        rows.iter()
            .map(|row| {
                Json::object(vec![
                    ("facility", Json::from(row.facility.as_str())),
                    ("product_blocks", Json::from(row.product_blocks)),
                    (
                        "orbit_blocks",
                        row.orbit_blocks.map_or(Json::Null, Json::from),
                    ),
                    ("solver_blocks", Json::from(row.solver_blocks)),
                    ("exact_blocks", Json::from(row.exact_blocks)),
                    ("reduction_factor", Json::Number(row.reduction_factor())),
                ])
            })
            .collect(),
    )
}
