//! A minimal, dependency-free JSON tree: parser, writer and accessors.
//!
//! The vendored `serde` stub is a no-op marker trait (the build environment
//! is offline), so the wire format is hand-rolled here. Two properties
//! matter for the analysis service:
//!
//! * **Bit-exact floats.** Numbers are written with Rust's shortest
//!   round-trip formatting (`{:?}`) and read back with [`f64::from_str`], so
//!   every finite `f64` survives a serialize/parse round trip with its exact
//!   bit pattern. This is what lets the daemon's responses be bit-identical
//!   to in-process results.
//! * **Deterministic output.** Objects keep their insertion order; the same
//!   value always serializes to the same byte string.
//!
//! Non-finite numbers have no JSON representation and serialize as `null`
//! (they do not occur in well-posed measures).

use std::fmt;
use std::str::FromStr;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The value of `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer (rejects fractional numbers).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// An array of numbers from an `f64` slice.
    pub fn numbers(values: &[f64]) -> Json {
        Json::Array(values.iter().map(|&v| Json::Number(v)).collect())
    }

    /// A `[[t, v], ...]` array from a curve.
    pub fn curve(points: &[(f64, f64)]) -> Json {
        Json::Array(
            points
                .iter()
                .map(|&(t, v)| Json::Array(vec![Json::Number(t), Json::Number(v)]))
                .collect(),
        )
    }

    /// Reads a `[[t, v], ...]` array back into a curve.
    pub fn to_curve(&self) -> Option<Vec<(f64, f64)>> {
        self.as_array()?
            .iter()
            .map(|point| {
                let pair = point.as_array()?;
                match pair {
                    [t, v] => Some((t.as_f64()?, v.as_f64()?)),
                    _ => None,
                }
            })
            .collect()
    }

    /// Parses a JSON document (the complete string must be one value).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Shortest round-trip float formatting; integral values print without the
/// trailing `.0` (parsing back still recovers the exact bits). Non-finite
/// values become `null`.
fn write_number(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err("invalid unicode escape".to_string()),
                            }
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated unicode escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid unicode escape".to_string())?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| "invalid unicode escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-' => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        f64::from_str(text)
            .map(Json::Number)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let value = Json::object(vec![
            ("op", Json::from("availability")),
            ("model", Json::from("line1/ded")),
            ("times", Json::numbers(&[0.0, 0.5, 1e-3])),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("nested", Json::object(vec![("k", Json::from(3usize))])),
        ]);
        let text = value.to_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[
            0.0,
            -0.0,
            1.0,
            0.1,
            2.0 / 3.0,
            0.9536063550212054,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            1.7976931348623157e308,
            -4.9e-324,
            123456789.0,
            9.007199254740991e15,
        ] {
            let text = Json::Number(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42usize).to_string(), "42");
        assert_eq!(Json::Number(1.0).to_string(), "1");
        assert_eq!(Json::Number(1.5).to_string(), "1.5");
        assert_eq!(Json::parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(Json::parse("1.5").unwrap().as_usize(), None);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\te\u{1}f — π 🦀";
        let text = Json::Str(s.to_string()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
        assert_eq!(
            Json::parse(r#""\ud83e\udd80""#).unwrap().as_str(),
            Some("🦀")
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for text in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\":}",
            "1 2",
            "{\"a\" 1}",
            "[01x]",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(text).is_err(), "`{text}` must fail");
        }
    }

    #[test]
    fn curves_round_trip() {
        let curve = vec![(0.0, 1.0), (0.5, 0.25), (2.0, 2.0 / 3.0)];
        let json = Json::curve(&curve);
        assert_eq!(
            Json::parse(&json.to_string()).unwrap().to_curve().unwrap(),
            curve
        );
    }
}
