//! A blocking client for the analysis daemon.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::Json;
use crate::protocol::{CostKind, Request, Response};
use crate::stats::StatsSnapshot;

/// A client-side failure: transport, protocol or service.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP transport failed.
    Io(std::io::Error),
    /// The peer sent something outside the protocol.
    Protocol(String),
    /// The daemon answered with an error envelope.
    Service(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Service(msg) => write!(f, "service error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// The payload of an availability reply.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReply {
    /// The canonical model spec the daemon resolved.
    pub model: String,
    /// Steady-state availability.
    pub availability: f64,
    /// Solver-chain states of the cached quotient.
    pub states: usize,
    /// States of the chain the quotient was reduced from.
    pub source_states: usize,
    /// Iterative sweeps of the solve that produced the distribution; a
    /// memoised reply repeats the count of the solve it reuses.
    pub iterations: usize,
    /// Whether that solve was warm-started from a family sibling.
    pub warm_started: bool,
}

/// A blocking connection to a running daemon. One request/response at a
/// time; reuse the connection for as many queries as you like.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// One request/response round trip, unwrapping the envelope.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, and error envelopes.
    pub fn request(&mut self, request: &Request) -> Result<Json, ClientError> {
        writeln!(self.writer, "{}", request.to_json())?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed before a response arrived".to_string(),
            ));
        }
        match Response::parse_line(line.trim()).map_err(ClientError::Protocol)? {
            Response::Ok(payload) => Ok(payload),
            Response::Err(message) => Err(ClientError::Service(message)),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Steady-state availability of a registry model.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn availability(&mut self, model: &str) -> Result<AvailabilityReply, ClientError> {
        let payload = self.request(&Request::Availability {
            model: model.to_string(),
        })?;
        let field = |name: &str| {
            payload
                .get(name)
                .cloned()
                .ok_or_else(|| ClientError::Protocol(format!("reply lacks `{name}`")))
        };
        Ok(AvailabilityReply {
            model: field("model")?
                .as_str()
                .ok_or_else(|| ClientError::Protocol("`model` must be a string".into()))?
                .to_string(),
            availability: field("availability")?
                .as_f64()
                .ok_or_else(|| ClientError::Protocol("`availability` must be a number".into()))?,
            states: field("states")?
                .as_usize()
                .ok_or_else(|| ClientError::Protocol("`states` must be an integer".into()))?,
            source_states: field("source_states")?.as_usize().ok_or_else(|| {
                ClientError::Protocol("`source_states` must be an integer".into())
            })?,
            iterations: field("iterations")?
                .as_usize()
                .ok_or_else(|| ClientError::Protocol("`iterations` must be an integer".into()))?,
            warm_started: field("warm_started")?
                .as_bool()
                .ok_or_else(|| ClientError::Protocol("`warm_started` must be a bool".into()))?,
        })
    }

    /// Survivability curve after a disaster.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn survivability(
        &mut self,
        model: &str,
        disaster: &str,
        level: f64,
        times: &[f64],
    ) -> Result<Vec<(f64, f64)>, ClientError> {
        let payload = self.request(&Request::Survivability {
            model: model.to_string(),
            disaster: disaster.to_string(),
            level,
            times: times.to_vec(),
        })?;
        Self::curve_of(&payload)
    }

    /// Instantaneous or accumulated cost curve, optionally after a disaster.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn cost(
        &mut self,
        model: &str,
        kind: CostKind,
        disaster: Option<&str>,
        times: &[f64],
    ) -> Result<Vec<(f64, f64)>, ClientError> {
        let payload = self.request(&Request::Cost {
            model: model.to_string(),
            kind,
            disaster: disaster.map(str::to_string),
            times: times.to_vec(),
        })?;
        Self::curve_of(&payload)
    }

    /// The daemon's service counters.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let payload = self.request(&Request::Stats)?;
        StatsSnapshot::from_json(&payload).map_err(ClientError::Protocol)
    }

    /// The daemon's Prometheus-style text exposition (the `metrics` op).
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; also fails on a reply without the `metrics`
    /// text field.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let payload = self.request(&Request::Metrics)?;
        payload
            .get("metrics")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("reply lacks a `metrics` text field".into()))
    }

    /// Asks the daemon to stop (acknowledged before it exits).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }

    fn curve_of(payload: &Json) -> Result<Vec<(f64, f64)>, ClientError> {
        payload
            .get("curve")
            .and_then(Json::to_curve)
            .ok_or_else(|| ClientError::Protocol("reply lacks a `curve` array".into()))
    }
}
