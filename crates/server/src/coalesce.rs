//! Query coalescing: concurrent identical computations share one execution.
//!
//! A [`Coalescer`] is a memoising slot map. The first caller of a key (the
//! *leader*) runs the computation; every concurrent caller of the same key
//! (a *follower*) blocks on the slot's condition variable and receives a
//! clone of the leader's result — the computation runs **once**, and every
//! waiter gets the bit-identical value. Results stay memoised, so later
//! callers of the same key are followers too, served without blocking —
//! until [`Coalescer::forget_matching`] releases a memoised slot (cache
//! eviction), after which the next caller leads a fresh computation.
//!
//! Errors are ordinary values (`V = Result<…>`): a failed leader hands every
//! follower the same error. A *panicking* leader poisons and releases its
//! slot — waiting followers wake up and elect a new leader instead of
//! deadlocking.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// How a call was served (feeds the coalesced-query counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This call ran the computation.
    Leader,
    /// This call received the leader's (in-flight or memoised) result.
    Follower,
}

enum SlotState<V> {
    Pending,
    Done(V),
    Poisoned,
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

/// Poisons the leader's slot if it panics, so followers re-elect instead of
/// waiting forever.
struct PanicGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    coalescer: &'a Coalescer<K, V>,
    slot: &'a Arc<Slot<V>>,
    key: K,
    armed: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for PanicGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut slots = match self.coalescer.slots.lock() {
                Ok(slots) => slots,
                Err(poisoned) => poisoned.into_inner(),
            };
            slots.remove(&self.key);
            drop(slots);
            let mut state = match self.slot.state.lock() {
                Ok(state) => state,
                Err(poisoned) => poisoned.into_inner(),
            };
            *state = SlotState::Poisoned;
            self.slot.ready.notify_all();
        }
    }
}

/// A memoising slot map keyed by `K` (see the module docs).
pub struct Coalescer<K: Eq + Hash + Clone, V: Clone> {
    slots: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Coalescer<K, V> {
    fn default() -> Self {
        Coalescer {
            slots: Mutex::new(HashMap::new()),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Coalescer<K, V> {
    /// An empty coalescer.
    pub fn new() -> Self {
        Coalescer::default()
    }

    /// Runs `compute` under `key`, or joins the computation already running
    /// (or memoised) under it. Returns the value and how it was obtained.
    pub fn run(&self, key: K, compute: impl FnOnce() -> V) -> (V, Role) {
        loop {
            let (slot, leader) = {
                let mut slots = self.slots.lock().unwrap();
                match slots.get(&key) {
                    Some(slot) => (Arc::clone(slot), false),
                    None => {
                        let slot = Arc::new(Slot {
                            state: Mutex::new(SlotState::Pending),
                            ready: Condvar::new(),
                        });
                        slots.insert(key.clone(), Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            if leader {
                let mut guard = PanicGuard {
                    coalescer: self,
                    slot: &slot,
                    key,
                    armed: true,
                };
                let value = compute();
                guard.armed = false;
                let mut state = slot.state.lock().unwrap();
                *state = SlotState::Done(value.clone());
                slot.ready.notify_all();
                return (value, Role::Leader);
            }
            let mut state = slot.state.lock().unwrap();
            loop {
                match &*state {
                    SlotState::Pending => state = slot.ready.wait(state).unwrap(),
                    SlotState::Done(value) => return (value.clone(), Role::Follower),
                    SlotState::Poisoned => break,
                }
            }
            // The leader panicked; its slot is gone from the map. Try again
            // (possibly becoming the new leader).
        }
    }

    /// Forgets every *memoised* value whose key matches `predicate` — the
    /// release valve for cache eviction. In-flight (pending) slots are kept
    /// so concurrent callers still coalesce onto their leader.
    pub fn forget_matching(&self, predicate: impl Fn(&K) -> bool) {
        let mut slots = self.slots.lock().unwrap();
        slots.retain(|key, slot| {
            !(predicate(key) && matches!(&*slot.state.lock().unwrap(), SlotState::Done(_)))
        });
    }

    /// The memoised value of `key`, if its computation has finished.
    pub fn peek(&self, key: &K) -> Option<V> {
        let slot = Arc::clone(self.slots.lock().unwrap().get(key)?);
        let state = slot.state.lock().unwrap();
        match &*state {
            SlotState::Done(value) => Some(value.clone()),
            _ => None,
        }
    }

    /// Number of keys (in flight or memoised).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether no key has ever been run.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn later_calls_are_memoised_followers() {
        let coalescer: Coalescer<u64, usize> = Coalescer::new();
        let runs = AtomicUsize::new(0);
        let compute = || {
            runs.fetch_add(1, Ordering::SeqCst);
            42
        };
        assert_eq!(coalescer.run(7, compute), (42, Role::Leader));
        assert_eq!(coalescer.run(7, compute), (42, Role::Follower));
        assert_eq!(coalescer.run(7, compute), (42, Role::Follower));
        assert_eq!(runs.load(Ordering::SeqCst), 1, "computation ran once");
        assert_eq!(coalescer.peek(&7), Some(42));
        assert_eq!(coalescer.peek(&8), None);
        assert_eq!(coalescer.len(), 1);
        assert!(!coalescer.is_empty());
    }

    #[test]
    fn forgetting_a_memoised_slot_elects_a_fresh_leader() {
        let coalescer: Coalescer<u64, usize> = Coalescer::new();
        assert_eq!(coalescer.run(7, || 1), (1, Role::Leader));
        assert_eq!(coalescer.run(9, || 2), (2, Role::Leader));
        coalescer.forget_matching(|key| *key == 7);
        assert_eq!(coalescer.len(), 1, "only the matching slot is dropped");
        assert_eq!(coalescer.peek(&7), None);
        assert_eq!(coalescer.run(7, || 3), (3, Role::Leader), "recomputed");
        assert_eq!(
            coalescer.run(9, || 4),
            (2, Role::Follower),
            "still memoised"
        );
    }

    #[test]
    fn concurrent_identical_calls_share_one_execution() {
        let coalescer: Arc<Coalescer<&'static str, u64>> = Arc::new(Coalescer::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let coalescer = Arc::clone(&coalescer);
                let runs = Arc::clone(&runs);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    coalescer.run("key", || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Let followers pile up on the slot.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        0xdeadbeef
                    })
                })
            })
            .collect();
        let results: Vec<(u64, Role)> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one execution");
        assert_eq!(
            results
                .iter()
                .filter(|(_, role)| *role == Role::Leader)
                .count(),
            1
        );
        assert!(results.iter().all(|(value, _)| *value == 0xdeadbeef));
    }

    #[test]
    fn a_panicking_leader_frees_the_key_and_wakes_followers() {
        let coalescer: Arc<Coalescer<u64, u64>> = Arc::new(Coalescer::new());
        let barrier = Arc::new(Barrier::new(2));
        let crash = {
            let coalescer = Arc::clone(&coalescer);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                coalescer.run(1, || {
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("leader died")
                })
            })
        };
        // This follower arrives while the doomed leader is computing, then
        // must be woken and re-elected rather than deadlock.
        barrier.wait();
        let (value, _) = coalescer.run(1, || 5);
        assert_eq!(value, 5);
        assert!(crash.join().is_err());
        assert_eq!(coalescer.run(1, || 6), (5, Role::Follower), "memoised");
    }
}
