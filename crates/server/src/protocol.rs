//! The newline-delimited JSON request/response protocol.
//!
//! Every request and every response is one JSON object on one line.
//! Requests carry an `op` discriminator:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"availability","model":"line1/ded"}
//! {"op":"survivability","model":"line2/ded","disaster":"disaster-2-mixed",
//!  "level":1.0,"times":[0,20,40]}
//! {"op":"cost","kind":"accumulated","model":"facility/ded+ded",
//!  "disaster":"facility-all-pumps","times":[0,50,100]}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses are an envelope: `{"ok":true,"result":…}` on success,
//! `{"ok":false,"error":"…"}` on failure. Model names are the registry specs
//! of [`watertreatment::registry::ModelSpec`]; `disaster` is a model-defined
//! disaster name (or `null`/absent on cost queries for the no-disaster
//! start).

use crate::json::Json;

/// Which cost measure a cost query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Expected cost rate at each time point.
    Instantaneous,
    /// Expected cost accumulated up to each time bound.
    Accumulated,
}

impl CostKind {
    /// The wire name (`instantaneous` / `accumulated`).
    pub fn wire_name(self) -> &'static str {
        match self {
            CostKind::Instantaneous => "instantaneous",
            CostKind::Accumulated => "accumulated",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<CostKind> {
        match name {
            "instantaneous" => Some(CostKind::Instantaneous),
            "accumulated" => Some(CostKind::Accumulated),
            _ => None,
        }
    }
}

/// Which measure a simulate query estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimMeasure {
    /// Fraction of the horizon spent non-operational (interval
    /// unavailability).
    Unavailability,
    /// Time to first failure, capped at the horizon, with lower-tail
    /// VaR/CVaR.
    TimeToFailure,
    /// Cost accumulated over the horizon, with upper-tail VaR/CVaR.
    Cost,
}

impl SimMeasure {
    /// The wire name (`unavailability` / `ttf` / `cost`).
    pub fn wire_name(self) -> &'static str {
        match self {
            SimMeasure::Unavailability => "unavailability",
            SimMeasure::TimeToFailure => "ttf",
            SimMeasure::Cost => "cost",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<SimMeasure> {
        match name {
            "unavailability" => Some(SimMeasure::Unavailability),
            "ttf" => Some(SimMeasure::TimeToFailure),
            "cost" => Some(SimMeasure::Cost),
            _ => None,
        }
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Steady-state availability of a model.
    Availability {
        /// Registry model spec (`line1/ded`, `facility/ded+ded`, …).
        model: String,
    },
    /// Survivability curve after a disaster.
    Survivability {
        /// Registry model spec.
        model: String,
        /// Name of the disaster to start from.
        disaster: String,
        /// Required service level in `[0, 1]`.
        level: f64,
        /// Deadlines to evaluate, in hours.
        times: Vec<f64>,
    },
    /// Instantaneous or accumulated cost curve.
    Cost {
        /// Registry model spec.
        model: String,
        /// Which cost measure.
        kind: CostKind,
        /// Optional disaster to start from (`None` = the no-disaster start).
        disaster: Option<String>,
        /// Time points, in hours.
        times: Vec<f64>,
    },
    /// Monte-Carlo estimate on the model's quotient (rare-event capable).
    Simulate {
        /// Registry model spec.
        model: String,
        /// Which measure to estimate.
        measure: SimMeasure,
        /// Optional disaster start (cost measure only; `None` = the
        /// no-disaster start).
        disaster: Option<String>,
        /// Simulation horizon in hours.
        horizon: f64,
        /// Number of replications.
        replications: usize,
        /// Base random seed (replication streams are counter-derived).
        seed: u64,
        /// Failure-biasing factor for importance sampling (`1.0` = naive).
        bias: f64,
        /// Tail level for VaR/CVaR measures.
        alpha: f64,
    },
    /// Service counters snapshot.
    Stats,
    /// Prometheus-style text exposition of the service counters.
    Metrics,
    /// Stop the daemon (after acknowledging).
    Shutdown,
}

/// Default base seed of simulate queries that omit `seed`.
pub const DEFAULT_SIM_SEED: u64 = 0x5EED;
/// Default tail level of simulate queries that omit `alpha`.
pub const DEFAULT_SIM_ALPHA: f64 = 0.95;

impl Request {
    /// Encodes the request as its wire object.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::object(vec![("op", Json::from("ping"))]),
            Request::Stats => Json::object(vec![("op", Json::from("stats"))]),
            Request::Metrics => Json::object(vec![("op", Json::from("metrics"))]),
            Request::Shutdown => Json::object(vec![("op", Json::from("shutdown"))]),
            Request::Availability { model } => Json::object(vec![
                ("op", Json::from("availability")),
                ("model", Json::from(model.as_str())),
            ]),
            Request::Survivability {
                model,
                disaster,
                level,
                times,
            } => Json::object(vec![
                ("op", Json::from("survivability")),
                ("model", Json::from(model.as_str())),
                ("disaster", Json::from(disaster.as_str())),
                ("level", Json::Number(*level)),
                ("times", Json::numbers(times)),
            ]),
            Request::Cost {
                model,
                kind,
                disaster,
                times,
            } => Json::object(vec![
                ("op", Json::from("cost")),
                ("kind", Json::from(kind.wire_name())),
                ("model", Json::from(model.as_str())),
                (
                    "disaster",
                    match disaster {
                        Some(name) => Json::from(name.as_str()),
                        None => Json::Null,
                    },
                ),
                ("times", Json::numbers(times)),
            ]),
            Request::Simulate {
                model,
                measure,
                disaster,
                horizon,
                replications,
                seed,
                bias,
                alpha,
            } => Json::object(vec![
                ("op", Json::from("simulate")),
                ("model", Json::from(model.as_str())),
                ("measure", Json::from(measure.wire_name())),
                (
                    "disaster",
                    match disaster {
                        Some(name) => Json::from(name.as_str()),
                        None => Json::Null,
                    },
                ),
                ("horizon", Json::Number(*horizon)),
                ("replications", Json::from(*replications)),
                ("seed", Json::from(*seed)),
                ("bias", Json::Number(*bias)),
                ("alpha", Json::Number(*alpha)),
            ]),
        }
    }

    /// Decodes a wire object.
    ///
    /// # Errors
    ///
    /// Describes the first missing or ill-typed field.
    pub fn from_json(json: &Json) -> Result<Request, String> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request needs a string `op` field")?;
        let model = |_: &str| -> Result<String, String> {
            Ok(json
                .get("model")
                .and_then(Json::as_str)
                .ok_or("request needs a string `model` field")?
                .to_string())
        };
        let times = || -> Result<Vec<f64>, String> {
            json.get("times")
                .and_then(Json::as_array)
                .ok_or("request needs a `times` array")?
                .iter()
                .map(|t| t.as_f64().ok_or("`times` must contain numbers".to_string()))
                .collect()
        };
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "availability" => Ok(Request::Availability { model: model(op)? }),
            "survivability" => Ok(Request::Survivability {
                model: model(op)?,
                disaster: json
                    .get("disaster")
                    .and_then(Json::as_str)
                    .ok_or("survivability needs a string `disaster` field")?
                    .to_string(),
                level: json
                    .get("level")
                    .and_then(Json::as_f64)
                    .ok_or("survivability needs a numeric `level` field")?,
                times: times()?,
            }),
            "cost" => Ok(Request::Cost {
                model: model(op)?,
                kind: json
                    .get("kind")
                    .and_then(Json::as_str)
                    .and_then(CostKind::parse)
                    .ok_or("cost needs `kind`: `instantaneous` or `accumulated`")?,
                disaster: match json.get("disaster") {
                    None | Some(Json::Null) => None,
                    Some(value) => Some(
                        value
                            .as_str()
                            .ok_or("`disaster` must be a string or null")?
                            .to_string(),
                    ),
                },
                times: times()?,
            }),
            "simulate" => Ok(Request::Simulate {
                model: model(op)?,
                measure: json
                    .get("measure")
                    .and_then(Json::as_str)
                    .and_then(SimMeasure::parse)
                    .ok_or("simulate needs `measure`: `unavailability`, `ttf` or `cost`")?,
                disaster: match json.get("disaster") {
                    None | Some(Json::Null) => None,
                    Some(value) => Some(
                        value
                            .as_str()
                            .ok_or("`disaster` must be a string or null")?
                            .to_string(),
                    ),
                },
                horizon: json
                    .get("horizon")
                    .and_then(Json::as_f64)
                    .ok_or("simulate needs a numeric `horizon` field")?,
                replications: json
                    .get("replications")
                    .and_then(Json::as_usize)
                    .ok_or("simulate needs an integer `replications` field")?,
                seed: match json.get("seed") {
                    None | Some(Json::Null) => DEFAULT_SIM_SEED,
                    Some(value) => value
                        .as_usize()
                        .ok_or("`seed` must be a non-negative integer")?
                        as u64,
                },
                bias: match json.get("bias") {
                    None | Some(Json::Null) => 1.0,
                    Some(value) => value.as_f64().ok_or("`bias` must be a number")?,
                },
                alpha: match json.get("alpha") {
                    None | Some(Json::Null) => DEFAULT_SIM_ALPHA,
                    Some(value) => value.as_f64().ok_or("`alpha` must be a number")?,
                },
            }),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Reports JSON syntax errors and protocol violations alike.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        Request::from_json(&Json::parse(line)?)
    }
}

/// A response envelope: a result payload or an error message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success, with the op-specific payload.
    Ok(Json),
    /// Failure, with a human-readable message.
    Err(String),
}

impl Response {
    /// Encodes the envelope as its wire object.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok(result) => {
                Json::object(vec![("ok", Json::Bool(true)), ("result", result.clone())])
            }
            Response::Err(message) => Json::object(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::from(message.as_str())),
            ]),
        }
    }

    /// Decodes a wire envelope.
    ///
    /// # Errors
    ///
    /// Rejects envelopes with neither a result nor an error.
    pub fn from_json(json: &Json) -> Result<Response, String> {
        match json.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(Response::Ok(
                json.get("result").cloned().unwrap_or(Json::Null),
            )),
            Some(false) => Ok(Response::Err(
                json.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            )),
            None => Err("response needs a boolean `ok` field".to_string()),
        }
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// See [`Response::from_json`].
    pub fn parse_line(line: &str) -> Result<Response, String> {
        Response::from_json(&Json::parse(line)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::Availability {
                model: "line1/ded".into(),
            },
            Request::Survivability {
                model: "line2/frf-1".into(),
                disaster: "disaster-2-mixed".into(),
                level: 1.0,
                times: vec![0.0, 0.5, 20.0],
            },
            Request::Cost {
                model: "facility/ded+ded".into(),
                kind: CostKind::Accumulated,
                disaster: Some("facility-all-pumps".into()),
                times: vec![0.0, 100.0],
            },
            Request::Cost {
                model: "line1/ded@1.05".into(),
                kind: CostKind::Instantaneous,
                disaster: None,
                times: vec![1.0],
            },
            Request::Simulate {
                model: "line1/frf-1".into(),
                measure: SimMeasure::Unavailability,
                disaster: None,
                horizon: 1000.0,
                replications: 2000,
                seed: 0x5EED,
                bias: 1.0,
                alpha: 0.95,
            },
            Request::Simulate {
                model: "line2/ded".into(),
                measure: SimMeasure::Cost,
                disaster: Some("disaster-2-mixed".into()),
                horizon: 48.0,
                replications: 500,
                seed: 7,
                bias: 250.0,
                alpha: 0.99,
            },
        ];
        for request in requests {
            let line = request.to_json().to_string();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse_line(&line).unwrap(), request);
        }
    }

    #[test]
    fn responses_round_trip() {
        for response in [
            Response::Ok(Json::object(vec![("availability", Json::Number(0.75))])),
            Response::Err("unknown disaster `x`".into()),
        ] {
            let line = response.to_json().to_string();
            assert_eq!(Response::parse_line(&line).unwrap(), response);
        }
    }

    #[test]
    fn simulate_defaults_apply_when_fields_are_omitted() {
        let line = "{\"op\":\"simulate\",\"model\":\"line1/ded\",\
                    \"measure\":\"ttf\",\"horizon\":100,\"replications\":64}";
        let request = Request::parse_line(line).unwrap();
        assert_eq!(
            request,
            Request::Simulate {
                model: "line1/ded".into(),
                measure: SimMeasure::TimeToFailure,
                disaster: None,
                horizon: 100.0,
                replications: 64,
                seed: DEFAULT_SIM_SEED,
                bias: 1.0,
                alpha: DEFAULT_SIM_ALPHA,
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for line in [
            "{}",
            "{\"op\":\"nope\"}",
            "{\"op\":\"availability\"}",
            "{\"op\":\"survivability\",\"model\":\"line1/ded\"}",
            "{\"op\":\"cost\",\"model\":\"line1/ded\",\"kind\":\"x\",\"times\":[]}",
            "{\"op\":\"simulate\",\"model\":\"line1/ded\"}",
            "{\"op\":\"simulate\",\"model\":\"line1/ded\",\"measure\":\"nope\",\
             \"horizon\":10,\"replications\":100}",
            "not json",
        ] {
            assert!(Request::parse_line(line).is_err(), "`{line}` must fail");
        }
    }
}
