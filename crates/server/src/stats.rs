//! Service counters: cache effectiveness, warm-start savings, coalescing,
//! per-op latency histograms and uptime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use arcade_telemetry::{Histogram, HistogramSnapshot};

use crate::json::Json;

/// The query operations the daemon tracks per-op counters and latency
/// histograms for (the compute-bearing ops plus the introspection ops; ping
/// and shutdown are control traffic and only count into `queries`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOp {
    /// Steady-state availability.
    Availability,
    /// Survivability curve after a disaster.
    Survivability,
    /// Instantaneous or accumulated cost curve.
    Cost,
    /// Monte-Carlo simulation.
    Simulate,
    /// Counter snapshot.
    Stats,
    /// Prometheus-style exposition.
    Metrics,
}

impl QueryOp {
    /// All tracked ops, in wire/exposition order.
    pub const ALL: [QueryOp; 6] = [
        QueryOp::Availability,
        QueryOp::Survivability,
        QueryOp::Cost,
        QueryOp::Simulate,
        QueryOp::Stats,
        QueryOp::Metrics,
    ];

    /// Stable lowercase identifier (wire fields, Prometheus labels).
    pub fn name(&self) -> &'static str {
        match self {
            QueryOp::Availability => "availability",
            QueryOp::Survivability => "survivability",
            QueryOp::Cost => "cost",
            QueryOp::Simulate => "simulate",
            QueryOp::Stats => "stats",
            QueryOp::Metrics => "metrics",
        }
    }

    fn index(&self) -> usize {
        *self as usize
    }
}

/// Lock-free counters updated by every query; snapshot with
/// [`ServiceStats::snapshot`].
#[derive(Debug)]
pub struct ServiceStats {
    started: Instant,
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    interned_shared: AtomicU64,
    stationary_solves: AtomicU64,
    warm_solves: AtomicU64,
    cold_iterations: AtomicU64,
    warm_iterations: AtomicU64,
    transient_passes: AtomicU64,
    coalesced_queries: AtomicU64,
    gs_materialised_solves: AtomicU64,
    jacobi_operator_solves: AtomicU64,
    krylov_operator_solves: AtomicU64,
    simulate_runs: AtomicU64,
    simulate_replications: AtomicU64,
    op_counts: [AtomicU64; QueryOp::ALL.len()],
    op_latency: [Histogram; QueryOp::ALL.len()],
    solve_iterations: Histogram,
    replication_batches: Histogram,
}

impl Default for ServiceStats {
    fn default() -> Self {
        ServiceStats {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            interned_shared: AtomicU64::new(0),
            stationary_solves: AtomicU64::new(0),
            warm_solves: AtomicU64::new(0),
            cold_iterations: AtomicU64::new(0),
            warm_iterations: AtomicU64::new(0),
            transient_passes: AtomicU64::new(0),
            coalesced_queries: AtomicU64::new(0),
            gs_materialised_solves: AtomicU64::new(0),
            jacobi_operator_solves: AtomicU64::new(0),
            krylov_operator_solves: AtomicU64::new(0),
            simulate_runs: AtomicU64::new(0),
            simulate_replications: AtomicU64::new(0),
            op_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            op_latency: std::array::from_fn(|_| Histogram::new()),
            solve_iterations: Histogram::new(),
            replication_batches: Histogram::new(),
        }
    }
}

impl ServiceStats {
    /// Fresh, all-zero counters (uptime starts now).
    pub fn new() -> Self {
        ServiceStats::default()
    }

    /// Whole seconds since the stats (and thus the service) were created.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    pub(crate) fn query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one served query of `op` and its wall-clock latency in
    /// microseconds (per-op counter plus the log-bucketed latency
    /// histogram; both lock-free).
    pub(crate) fn op_served(&self, op: QueryOp, latency_us: u64) {
        self.op_counts[op.index()].fetch_add(1, Ordering::Relaxed);
        self.op_latency[op.index()].record(latency_us);
    }

    pub(crate) fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn interned_shared(&self) {
        self.interned_shared.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stationary_solve(&self, warm: bool, iterations: usize) {
        self.stationary_solves.fetch_add(1, Ordering::Relaxed);
        self.solve_iterations.record(iterations as u64);
        if warm {
            self.warm_solves.fetch_add(1, Ordering::Relaxed);
            self.warm_iterations
                .fetch_add(iterations as u64, Ordering::Relaxed);
        } else {
            self.cold_iterations
                .fetch_add(iterations as u64, Ordering::Relaxed);
        }
    }

    /// Records which solver tier a stationary solve actually ran
    /// (`gs-materialised`, `jacobi-operator` or `krylov-operator`; other
    /// names are ignored so future tiers never panic an old daemon).
    pub(crate) fn tier_solve(&self, tier: &str) {
        match tier {
            "gs-materialised" => &self.gs_materialised_solves,
            "jacobi-operator" => &self.jacobi_operator_solves,
            "krylov-operator" => &self.krylov_operator_solves,
            _ => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one simulate query, the replications it ran and the number of
    /// parallel batches they were scheduled in.
    pub(crate) fn simulate_run(&self, replications: usize, batches: usize) {
        self.simulate_runs.fetch_add(1, Ordering::Relaxed);
        self.simulate_replications
            .fetch_add(replications as u64, Ordering::Relaxed);
        self.replication_batches.record(batches as u64);
    }

    pub(crate) fn transient_pass(&self) {
        self.transient_passes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn coalesced(&self) {
        self.coalesced_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters and histograms.
    pub fn snapshot(&self) -> StatsSnapshot {
        let op_count = |op: QueryOp| self.op_counts[op.index()].load(Ordering::Relaxed);
        let op_hist = |op: QueryOp| self.op_latency[op.index()].snapshot();
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            uptime_seconds: self.uptime_seconds(),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            interned_shared: self.interned_shared.load(Ordering::Relaxed),
            stationary_solves: self.stationary_solves.load(Ordering::Relaxed),
            warm_solves: self.warm_solves.load(Ordering::Relaxed),
            cold_iterations: self.cold_iterations.load(Ordering::Relaxed),
            warm_iterations: self.warm_iterations.load(Ordering::Relaxed),
            transient_passes: self.transient_passes.load(Ordering::Relaxed),
            coalesced_queries: self.coalesced_queries.load(Ordering::Relaxed),
            evictions: 0,
            gs_materialised_solves: self.gs_materialised_solves.load(Ordering::Relaxed),
            jacobi_operator_solves: self.jacobi_operator_solves.load(Ordering::Relaxed),
            krylov_operator_solves: self.krylov_operator_solves.load(Ordering::Relaxed),
            simulate_runs: self.simulate_runs.load(Ordering::Relaxed),
            simulate_replications: self.simulate_replications.load(Ordering::Relaxed),
            availability_queries: op_count(QueryOp::Availability),
            survivability_queries: op_count(QueryOp::Survivability),
            cost_queries: op_count(QueryOp::Cost),
            simulate_queries: op_count(QueryOp::Simulate),
            stats_queries: op_count(QueryOp::Stats),
            metrics_queries: op_count(QueryOp::Metrics),
            latency_availability: op_hist(QueryOp::Availability),
            latency_survivability: op_hist(QueryOp::Survivability),
            latency_cost: op_hist(QueryOp::Cost),
            latency_simulate: op_hist(QueryOp::Simulate),
            latency_stats: op_hist(QueryOp::Stats),
            latency_metrics: op_hist(QueryOp::Metrics),
            solve_iterations_hist: self.solve_iterations.snapshot(),
            replication_batches_hist: self.replication_batches.snapshot(),
        }
    }
}

/// A point-in-time copy of the [`ServiceStats`] counters (also the payload of
/// the `stats` op).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests handled (all ops).
    pub queries: u64,
    /// Whole seconds the service has been up.
    pub uptime_seconds: u64,
    /// Model lookups answered from the quotient cache.
    pub cache_hits: u64,
    /// Model lookups that had to compile.
    pub cache_misses: u64,
    /// Compilations whose artifact turned out identical to a cached one and
    /// was shared instead of stored twice.
    pub interned_shared: u64,
    /// Stationary solves actually performed.
    pub stationary_solves: u64,
    /// Stationary solves that started from a warm donor vector.
    pub warm_solves: u64,
    /// Iterative sweeps spent in cold stationary solves.
    pub cold_iterations: u64,
    /// Iterative sweeps spent in warm-started stationary solves.
    pub warm_iterations: u64,
    /// Uniformisation (Fox–Glynn) passes actually performed.
    pub transient_passes: u64,
    /// Queries served by an in-flight or memoised computation instead of
    /// their own solve.
    pub coalesced_queries: u64,
    /// Spec keys evicted from the bounded quotient cache (0 for the default
    /// unbounded cache). Maintained by the cache itself and merged into the
    /// snapshot by the service.
    pub evictions: u64,
    /// Stationary solves served by the materialised Gauss–Seidel tier.
    pub gs_materialised_solves: u64,
    /// Stationary solves served by the matrix-free damped-Jacobi tier.
    pub jacobi_operator_solves: u64,
    /// Stationary solves served by the matrix-free Krylov (GMRES) tier.
    pub krylov_operator_solves: u64,
    /// Monte-Carlo simulate queries served.
    pub simulate_runs: u64,
    /// Total replications run across all simulate queries.
    pub simulate_replications: u64,
    /// Availability queries served.
    pub availability_queries: u64,
    /// Survivability queries served.
    pub survivability_queries: u64,
    /// Cost-curve queries served.
    pub cost_queries: u64,
    /// Simulate queries served.
    pub simulate_queries: u64,
    /// Stats queries served.
    pub stats_queries: u64,
    /// Metrics queries served.
    pub metrics_queries: u64,
    /// Latency histogram (µs) of availability queries.
    pub latency_availability: HistogramSnapshot,
    /// Latency histogram (µs) of survivability queries.
    pub latency_survivability: HistogramSnapshot,
    /// Latency histogram (µs) of cost queries.
    pub latency_cost: HistogramSnapshot,
    /// Latency histogram (µs) of simulate queries.
    pub latency_simulate: HistogramSnapshot,
    /// Latency histogram (µs) of stats queries.
    pub latency_stats: HistogramSnapshot,
    /// Latency histogram (µs) of metrics queries.
    pub latency_metrics: HistogramSnapshot,
    /// Histogram of sweeps per stationary solve.
    pub solve_iterations_hist: HistogramSnapshot,
    /// Histogram of parallel batches per simulate query.
    pub replication_batches_hist: HistogramSnapshot,
}

impl StatsSnapshot {
    /// Mean sweeps per cold stationary solve (`None` without cold solves).
    pub fn mean_cold_iterations(&self) -> Option<f64> {
        let cold_solves = self.stationary_solves - self.warm_solves;
        (cold_solves > 0).then(|| self.cold_iterations as f64 / cold_solves as f64)
    }

    /// Mean sweeps per warm-started stationary solve (`None` without warm
    /// solves).
    pub fn mean_warm_iterations(&self) -> Option<f64> {
        (self.warm_solves > 0).then(|| self.warm_iterations as f64 / self.warm_solves as f64)
    }

    /// The latency histogram of `op` (all empty until the op is queried).
    pub fn latency_of(&self, op: QueryOp) -> &HistogramSnapshot {
        match op {
            QueryOp::Availability => &self.latency_availability,
            QueryOp::Survivability => &self.latency_survivability,
            QueryOp::Cost => &self.latency_cost,
            QueryOp::Simulate => &self.latency_simulate,
            QueryOp::Stats => &self.latency_stats,
            QueryOp::Metrics => &self.latency_metrics,
        }
    }

    /// The per-op query counter of `op`.
    pub fn queries_of(&self, op: QueryOp) -> u64 {
        match op {
            QueryOp::Availability => self.availability_queries,
            QueryOp::Survivability => self.survivability_queries,
            QueryOp::Cost => self.cost_queries,
            QueryOp::Simulate => self.simulate_queries,
            QueryOp::Stats => self.stats_queries,
            QueryOp::Metrics => self.metrics_queries,
        }
    }

    /// Encodes the snapshot as its wire object.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("queries", Json::from(self.queries)),
            ("uptime_seconds", Json::from(self.uptime_seconds)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("interned_shared", Json::from(self.interned_shared)),
            ("stationary_solves", Json::from(self.stationary_solves)),
            ("warm_solves", Json::from(self.warm_solves)),
            ("cold_iterations", Json::from(self.cold_iterations)),
            ("warm_iterations", Json::from(self.warm_iterations)),
            ("transient_passes", Json::from(self.transient_passes)),
            ("coalesced_queries", Json::from(self.coalesced_queries)),
            ("evictions", Json::from(self.evictions)),
            (
                "gs_materialised_solves",
                Json::from(self.gs_materialised_solves),
            ),
            (
                "jacobi_operator_solves",
                Json::from(self.jacobi_operator_solves),
            ),
            (
                "krylov_operator_solves",
                Json::from(self.krylov_operator_solves),
            ),
            ("simulate_runs", Json::from(self.simulate_runs)),
            (
                "simulate_replications",
                Json::from(self.simulate_replications),
            ),
            (
                "availability_queries",
                Json::from(self.availability_queries),
            ),
            (
                "survivability_queries",
                Json::from(self.survivability_queries),
            ),
            ("cost_queries", Json::from(self.cost_queries)),
            ("simulate_queries", Json::from(self.simulate_queries)),
            ("stats_queries", Json::from(self.stats_queries)),
            ("metrics_queries", Json::from(self.metrics_queries)),
            (
                "latency_availability",
                hist_to_json(&self.latency_availability),
            ),
            (
                "latency_survivability",
                hist_to_json(&self.latency_survivability),
            ),
            ("latency_cost", hist_to_json(&self.latency_cost)),
            ("latency_simulate", hist_to_json(&self.latency_simulate)),
            ("latency_stats", hist_to_json(&self.latency_stats)),
            ("latency_metrics", hist_to_json(&self.latency_metrics)),
            (
                "solve_iterations_hist",
                hist_to_json(&self.solve_iterations_hist),
            ),
            (
                "replication_batches_hist",
                hist_to_json(&self.replication_batches_hist),
            ),
        ])
    }

    /// Decodes a wire object (missing fields default to zero / empty, so an
    /// old daemon's payload still parses).
    ///
    /// # Errors
    ///
    /// Rejects non-objects.
    pub fn from_json(json: &Json) -> Result<StatsSnapshot, String> {
        if !matches!(json, Json::Object(_)) {
            return Err("stats payload must be an object".to_string());
        }
        let field = |name: &str| json.get(name).and_then(Json::as_usize).unwrap_or(0) as u64;
        let hist = |name: &str| json.get(name).map(hist_from_json).unwrap_or_default();
        Ok(StatsSnapshot {
            queries: field("queries"),
            uptime_seconds: field("uptime_seconds"),
            cache_hits: field("cache_hits"),
            cache_misses: field("cache_misses"),
            interned_shared: field("interned_shared"),
            stationary_solves: field("stationary_solves"),
            warm_solves: field("warm_solves"),
            cold_iterations: field("cold_iterations"),
            warm_iterations: field("warm_iterations"),
            transient_passes: field("transient_passes"),
            coalesced_queries: field("coalesced_queries"),
            evictions: field("evictions"),
            gs_materialised_solves: field("gs_materialised_solves"),
            jacobi_operator_solves: field("jacobi_operator_solves"),
            krylov_operator_solves: field("krylov_operator_solves"),
            simulate_runs: field("simulate_runs"),
            simulate_replications: field("simulate_replications"),
            availability_queries: field("availability_queries"),
            survivability_queries: field("survivability_queries"),
            cost_queries: field("cost_queries"),
            simulate_queries: field("simulate_queries"),
            stats_queries: field("stats_queries"),
            metrics_queries: field("metrics_queries"),
            latency_availability: hist("latency_availability"),
            latency_survivability: hist("latency_survivability"),
            latency_cost: hist("latency_cost"),
            latency_simulate: hist("latency_simulate"),
            latency_stats: hist("latency_stats"),
            latency_metrics: hist("latency_metrics"),
            solve_iterations_hist: hist("solve_iterations_hist"),
            replication_batches_hist: hist("replication_batches_hist"),
        })
    }

    /// Prometheus-style text exposition of the snapshot (the payload of the
    /// `metrics` op). Counters end in `_total`; histogram quantiles follow
    /// the summary convention (`{quantile="0.5"}` etc. plus `_count`/`_sum`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, value: u64| {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        };
        out.push_str(&format!(
            "# TYPE arcade_uptime_seconds gauge\narcade_uptime_seconds {}\n",
            self.uptime_seconds
        ));
        counter(&mut out, "arcade_queries_total", self.queries);
        out.push_str("# TYPE arcade_queries_op_total counter\n");
        for op in QueryOp::ALL {
            out.push_str(&format!(
                "arcade_queries_op_total{{op=\"{}\"}} {}\n",
                op.name(),
                self.queries_of(op)
            ));
        }
        counter(&mut out, "arcade_cache_hits_total", self.cache_hits);
        counter(&mut out, "arcade_cache_misses_total", self.cache_misses);
        counter(&mut out, "arcade_cache_evictions_total", self.evictions);
        counter(
            &mut out,
            "arcade_interned_shared_total",
            self.interned_shared,
        );
        counter(
            &mut out,
            "arcade_coalesced_queries_total",
            self.coalesced_queries,
        );
        counter(
            &mut out,
            "arcade_stationary_solves_total",
            self.stationary_solves,
        );
        counter(&mut out, "arcade_warm_solves_total", self.warm_solves);
        counter(
            &mut out,
            "arcade_cold_iterations_total",
            self.cold_iterations,
        );
        counter(
            &mut out,
            "arcade_warm_iterations_total",
            self.warm_iterations,
        );
        counter(
            &mut out,
            "arcade_transient_passes_total",
            self.transient_passes,
        );
        out.push_str("# TYPE arcade_tier_solves_total counter\n");
        for (tier, value) in [
            ("gs-materialised", self.gs_materialised_solves),
            ("jacobi-operator", self.jacobi_operator_solves),
            ("krylov-operator", self.krylov_operator_solves),
        ] {
            out.push_str(&format!(
                "arcade_tier_solves_total{{tier=\"{tier}\"}} {value}\n"
            ));
        }
        counter(&mut out, "arcade_simulate_runs_total", self.simulate_runs);
        counter(
            &mut out,
            "arcade_simulate_replications_total",
            self.simulate_replications,
        );
        out.push_str("# TYPE arcade_query_latency_microseconds summary\n");
        for op in QueryOp::ALL {
            let hist = self.latency_of(op);
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                if let Some(value) = hist.quantile(q) {
                    out.push_str(&format!(
                        "arcade_query_latency_microseconds{{op=\"{}\",quantile=\"{label}\"}} \
                         {value}\n",
                        op.name()
                    ));
                }
            }
            out.push_str(&format!(
                "arcade_query_latency_microseconds_count{{op=\"{}\"}} {}\n",
                op.name(),
                hist.count
            ));
            out.push_str(&format!(
                "arcade_query_latency_microseconds_sum{{op=\"{}\"}} {}\n",
                op.name(),
                hist.sum
            ));
        }
        for (name, hist) in [
            ("arcade_solve_iterations", &self.solve_iterations_hist),
            ("arcade_replication_batches", &self.replication_batches_hist),
        ] {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                if let Some(value) = hist.quantile(q) {
                    out.push_str(&format!("{name}{{quantile=\"{label}\"}} {value}\n"));
                }
            }
            out.push_str(&format!("{name}_count {}\n", hist.count));
            out.push_str(&format!("{name}_sum {}\n", hist.sum));
        }
        out
    }
}

/// Wire encoding of a histogram snapshot: the raw `count`/`sum`/`max`/
/// `buckets` (enough to reconstruct it exactly) plus derived percentiles for
/// human consumers (ignored when parsing).
fn hist_to_json(hist: &HistogramSnapshot) -> Json {
    let quantile = |q: f64| hist.quantile(q).map(Json::from).unwrap_or(Json::Null);
    Json::object(vec![
        ("count", Json::from(hist.count)),
        ("sum", Json::from(hist.sum)),
        ("max", Json::from(hist.max)),
        (
            "buckets",
            Json::Array(hist.buckets.iter().map(|&b| Json::from(b)).collect()),
        ),
        ("p50", quantile(0.5)),
        ("p90", quantile(0.9)),
        ("p99", quantile(0.99)),
    ])
}

/// Parses the wire encoding back (tolerant: anything missing is zero/empty).
fn hist_from_json(json: &Json) -> HistogramSnapshot {
    let field = |name: &str| json.get(name).and_then(Json::as_usize).unwrap_or(0) as u64;
    let buckets = json
        .get("buckets")
        .and_then(Json::as_array)
        .map(|values| {
            values
                .iter()
                .map(|v| v.as_usize().unwrap_or(0) as u64)
                .collect()
        })
        .unwrap_or_default();
    HistogramSnapshot {
        count: field("count"),
        sum: field("sum"),
        max: field("max"),
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = ServiceStats::new();
        stats.query();
        stats.query();
        stats.cache_miss();
        stats.cache_hit();
        stats.stationary_solve(false, 100);
        stats.stationary_solve(true, 7);
        stats.tier_solve("gs-materialised");
        stats.tier_solve("krylov-operator");
        stats.tier_solve("krylov-operator");
        stats.tier_solve("jacobi-operator");
        stats.tier_solve("some-future-tier");
        stats.simulate_run(2000, 4);
        stats.simulate_run(500, 1);
        stats.transient_pass();
        stats.coalesced();
        let snap = stats.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.stationary_solves, 2);
        assert_eq!(snap.warm_solves, 1);
        assert_eq!(snap.mean_cold_iterations(), Some(100.0));
        assert_eq!(snap.mean_warm_iterations(), Some(7.0));
        assert_eq!(snap.transient_passes, 1);
        assert_eq!(snap.coalesced_queries, 1);
        assert_eq!(snap.gs_materialised_solves, 1);
        assert_eq!(snap.krylov_operator_solves, 2);
        assert_eq!(snap.jacobi_operator_solves, 1);
        assert_eq!(snap.simulate_runs, 2);
        assert_eq!(snap.simulate_replications, 2500);
        // The histograms saw the same events as the scalar counters.
        assert_eq!(snap.solve_iterations_hist.count, 2);
        assert_eq!(snap.solve_iterations_hist.sum, 107);
        assert_eq!(snap.replication_batches_hist.count, 2);
        assert_eq!(snap.replication_batches_hist.max, 4);
    }

    #[test]
    fn per_op_counters_and_latency_histograms() {
        let stats = ServiceStats::new();
        stats.op_served(QueryOp::Availability, 150);
        stats.op_served(QueryOp::Availability, 90);
        stats.op_served(QueryOp::Simulate, 4000);
        let snap = stats.snapshot();
        assert_eq!(snap.availability_queries, 2);
        assert_eq!(snap.simulate_queries, 1);
        assert_eq!(snap.survivability_queries, 0);
        assert_eq!(snap.queries_of(QueryOp::Availability), 2);
        assert_eq!(snap.latency_availability.count, 2);
        assert_eq!(snap.latency_availability.sum, 240);
        assert_eq!(snap.latency_availability.max, 150);
        assert_eq!(snap.latency_of(QueryOp::Simulate).count, 1);
        assert_eq!(snap.latency_survivability.count, 0);
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let stats = ServiceStats::new();
        stats.query();
        stats.op_served(QueryOp::Availability, 120);
        stats.op_served(QueryOp::Stats, 5);
        stats.stationary_solve(false, 321);
        stats.simulate_run(1000, 2);
        stats.transient_pass();
        let mut snap = stats.snapshot();
        snap.evictions = 2;
        snap.uptime_seconds = 42;
        let back = StatsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert!(StatsSnapshot::from_json(&Json::Null).is_err());
    }

    #[test]
    fn old_wire_payloads_without_histograms_still_parse() {
        let old = Json::object(vec![
            ("queries", Json::from(3u64)),
            ("cache_hits", Json::from(1u64)),
        ]);
        let snap = StatsSnapshot::from_json(&old).unwrap();
        assert_eq!(snap.queries, 3);
        assert_eq!(snap.uptime_seconds, 0);
        assert_eq!(snap.latency_availability, HistogramSnapshot::default());
    }

    #[test]
    fn prometheus_exposition_carries_counters_and_quantiles() {
        let stats = ServiceStats::new();
        stats.query();
        stats.op_served(QueryOp::Availability, 100);
        stats.stationary_solve(false, 64);
        stats.tier_solve("krylov-operator");
        let mut snap = stats.snapshot();
        snap.evictions = 5;
        let text = snap.to_prometheus();
        assert!(text.contains("arcade_queries_total 1\n"));
        assert!(text.contains("arcade_queries_op_total{op=\"availability\"} 1\n"));
        assert!(text.contains("arcade_cache_evictions_total 5\n"));
        assert!(text.contains("arcade_tier_solves_total{tier=\"krylov-operator\"} 1\n"));
        assert!(text
            .contains("arcade_query_latency_microseconds{op=\"availability\",quantile=\"0.5\"}"));
        assert!(text.contains("arcade_query_latency_microseconds_count{op=\"availability\"} 1\n"));
        assert!(text.contains("arcade_solve_iterations_count 1\n"));
        assert!(text.contains("arcade_solve_iterations_sum 64\n"));
        // Every line is a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "malformed exposition line: {line}"
            );
        }
    }
}
