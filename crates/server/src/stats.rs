//! Service counters: cache effectiveness, warm-start savings, coalescing.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Lock-free counters updated by every query; snapshot with
/// [`ServiceStats::snapshot`].
#[derive(Debug, Default)]
pub struct ServiceStats {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    interned_shared: AtomicU64,
    stationary_solves: AtomicU64,
    warm_solves: AtomicU64,
    cold_iterations: AtomicU64,
    warm_iterations: AtomicU64,
    transient_passes: AtomicU64,
    coalesced_queries: AtomicU64,
    gs_materialised_solves: AtomicU64,
    jacobi_operator_solves: AtomicU64,
    krylov_operator_solves: AtomicU64,
    simulate_runs: AtomicU64,
    simulate_replications: AtomicU64,
}

impl ServiceStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServiceStats::default()
    }

    pub(crate) fn query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn interned_shared(&self) {
        self.interned_shared.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stationary_solve(&self, warm: bool, iterations: usize) {
        self.stationary_solves.fetch_add(1, Ordering::Relaxed);
        if warm {
            self.warm_solves.fetch_add(1, Ordering::Relaxed);
            self.warm_iterations
                .fetch_add(iterations as u64, Ordering::Relaxed);
        } else {
            self.cold_iterations
                .fetch_add(iterations as u64, Ordering::Relaxed);
        }
    }

    /// Records which solver tier a stationary solve actually ran
    /// (`gs-materialised`, `jacobi-operator` or `krylov-operator`; other
    /// names are ignored so future tiers never panic an old daemon).
    pub(crate) fn tier_solve(&self, tier: &str) {
        match tier {
            "gs-materialised" => &self.gs_materialised_solves,
            "jacobi-operator" => &self.jacobi_operator_solves,
            "krylov-operator" => &self.krylov_operator_solves,
            _ => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one simulate query and the replications it ran.
    pub(crate) fn simulate_run(&self, replications: usize) {
        self.simulate_runs.fetch_add(1, Ordering::Relaxed);
        self.simulate_replications
            .fetch_add(replications as u64, Ordering::Relaxed);
    }

    pub(crate) fn transient_pass(&self) {
        self.transient_passes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn coalesced(&self) {
        self.coalesced_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            interned_shared: self.interned_shared.load(Ordering::Relaxed),
            stationary_solves: self.stationary_solves.load(Ordering::Relaxed),
            warm_solves: self.warm_solves.load(Ordering::Relaxed),
            cold_iterations: self.cold_iterations.load(Ordering::Relaxed),
            warm_iterations: self.warm_iterations.load(Ordering::Relaxed),
            transient_passes: self.transient_passes.load(Ordering::Relaxed),
            coalesced_queries: self.coalesced_queries.load(Ordering::Relaxed),
            evictions: 0,
            gs_materialised_solves: self.gs_materialised_solves.load(Ordering::Relaxed),
            jacobi_operator_solves: self.jacobi_operator_solves.load(Ordering::Relaxed),
            krylov_operator_solves: self.krylov_operator_solves.load(Ordering::Relaxed),
            simulate_runs: self.simulate_runs.load(Ordering::Relaxed),
            simulate_replications: self.simulate_replications.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the [`ServiceStats`] counters (also the payload of
/// the `stats` op).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests handled (all ops).
    pub queries: u64,
    /// Model lookups answered from the quotient cache.
    pub cache_hits: u64,
    /// Model lookups that had to compile.
    pub cache_misses: u64,
    /// Compilations whose artifact turned out identical to a cached one and
    /// was shared instead of stored twice.
    pub interned_shared: u64,
    /// Stationary solves actually performed.
    pub stationary_solves: u64,
    /// Stationary solves that started from a warm donor vector.
    pub warm_solves: u64,
    /// Iterative sweeps spent in cold stationary solves.
    pub cold_iterations: u64,
    /// Iterative sweeps spent in warm-started stationary solves.
    pub warm_iterations: u64,
    /// Uniformisation (Fox–Glynn) passes actually performed.
    pub transient_passes: u64,
    /// Queries served by an in-flight or memoised computation instead of
    /// their own solve.
    pub coalesced_queries: u64,
    /// Spec keys evicted from the bounded quotient cache (0 for the default
    /// unbounded cache). Maintained by the cache itself and merged into the
    /// snapshot by the service.
    pub evictions: u64,
    /// Stationary solves served by the materialised Gauss–Seidel tier.
    pub gs_materialised_solves: u64,
    /// Stationary solves served by the matrix-free damped-Jacobi tier.
    pub jacobi_operator_solves: u64,
    /// Stationary solves served by the matrix-free Krylov (GMRES) tier.
    pub krylov_operator_solves: u64,
    /// Monte-Carlo simulate queries served.
    pub simulate_runs: u64,
    /// Total replications run across all simulate queries.
    pub simulate_replications: u64,
}

impl StatsSnapshot {
    /// Mean sweeps per cold stationary solve (`None` without cold solves).
    pub fn mean_cold_iterations(&self) -> Option<f64> {
        let cold_solves = self.stationary_solves - self.warm_solves;
        (cold_solves > 0).then(|| self.cold_iterations as f64 / cold_solves as f64)
    }

    /// Mean sweeps per warm-started stationary solve (`None` without warm
    /// solves).
    pub fn mean_warm_iterations(&self) -> Option<f64> {
        (self.warm_solves > 0).then(|| self.warm_iterations as f64 / self.warm_solves as f64)
    }

    /// Encodes the snapshot as its wire object.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("queries", Json::from(self.queries)),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("interned_shared", Json::from(self.interned_shared)),
            ("stationary_solves", Json::from(self.stationary_solves)),
            ("warm_solves", Json::from(self.warm_solves)),
            ("cold_iterations", Json::from(self.cold_iterations)),
            ("warm_iterations", Json::from(self.warm_iterations)),
            ("transient_passes", Json::from(self.transient_passes)),
            ("coalesced_queries", Json::from(self.coalesced_queries)),
            ("evictions", Json::from(self.evictions)),
            (
                "gs_materialised_solves",
                Json::from(self.gs_materialised_solves),
            ),
            (
                "jacobi_operator_solves",
                Json::from(self.jacobi_operator_solves),
            ),
            (
                "krylov_operator_solves",
                Json::from(self.krylov_operator_solves),
            ),
            ("simulate_runs", Json::from(self.simulate_runs)),
            (
                "simulate_replications",
                Json::from(self.simulate_replications),
            ),
        ])
    }

    /// Decodes a wire object (missing fields default to zero).
    ///
    /// # Errors
    ///
    /// Rejects non-objects.
    pub fn from_json(json: &Json) -> Result<StatsSnapshot, String> {
        if !matches!(json, Json::Object(_)) {
            return Err("stats payload must be an object".to_string());
        }
        let field = |name: &str| json.get(name).and_then(Json::as_usize).unwrap_or(0) as u64;
        Ok(StatsSnapshot {
            queries: field("queries"),
            cache_hits: field("cache_hits"),
            cache_misses: field("cache_misses"),
            interned_shared: field("interned_shared"),
            stationary_solves: field("stationary_solves"),
            warm_solves: field("warm_solves"),
            cold_iterations: field("cold_iterations"),
            warm_iterations: field("warm_iterations"),
            transient_passes: field("transient_passes"),
            coalesced_queries: field("coalesced_queries"),
            evictions: field("evictions"),
            gs_materialised_solves: field("gs_materialised_solves"),
            jacobi_operator_solves: field("jacobi_operator_solves"),
            krylov_operator_solves: field("krylov_operator_solves"),
            simulate_runs: field("simulate_runs"),
            simulate_replications: field("simulate_replications"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = ServiceStats::new();
        stats.query();
        stats.query();
        stats.cache_miss();
        stats.cache_hit();
        stats.stationary_solve(false, 100);
        stats.stationary_solve(true, 7);
        stats.tier_solve("gs-materialised");
        stats.tier_solve("krylov-operator");
        stats.tier_solve("krylov-operator");
        stats.tier_solve("jacobi-operator");
        stats.tier_solve("some-future-tier");
        stats.simulate_run(2000);
        stats.simulate_run(500);
        stats.transient_pass();
        stats.coalesced();
        let snap = stats.snapshot();
        assert_eq!(snap.queries, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.stationary_solves, 2);
        assert_eq!(snap.warm_solves, 1);
        assert_eq!(snap.mean_cold_iterations(), Some(100.0));
        assert_eq!(snap.mean_warm_iterations(), Some(7.0));
        assert_eq!(snap.transient_passes, 1);
        assert_eq!(snap.coalesced_queries, 1);
        assert_eq!(snap.gs_materialised_solves, 1);
        assert_eq!(snap.krylov_operator_solves, 2);
        assert_eq!(snap.jacobi_operator_solves, 1);
        assert_eq!(snap.simulate_runs, 2);
        assert_eq!(snap.simulate_replications, 2500);
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let snap = StatsSnapshot {
            queries: 10,
            cache_hits: 7,
            cache_misses: 3,
            interned_shared: 1,
            stationary_solves: 3,
            warm_solves: 2,
            cold_iterations: 1000,
            warm_iterations: 60,
            transient_passes: 4,
            coalesced_queries: 5,
            evictions: 2,
            gs_materialised_solves: 3,
            jacobi_operator_solves: 1,
            krylov_operator_solves: 6,
            simulate_runs: 9,
            simulate_replications: 18_000,
        };
        let back = StatsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert!(StatsSnapshot::from_json(&Json::Null).is_err());
    }
}
