//! End-to-end daemon tests over real TCP on an ephemeral port: responses
//! are bit-identical to the in-process `FacilityAnalysis` path at every
//! thread count, the warm cache answers repeats without recompiling or
//! re-solving (asserted on the service's own counters, not wall-clock),
//! the metrics exposition agrees with the stats snapshot, and concurrent
//! clients coalesce onto one transient pass.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use arcade_core::{ComposerOptions, ExecOptions, FacilityAnalysis};
use arcade_server::{server, AnalysisService, Client, ServerHandle};
use watertreatment::facility::{facility_model, DISASTER_LINE2_MIXED, FACILITY_DISASTER_ALL_PUMPS};
use watertreatment::strategies;

fn spawn_daemon(threads: usize) -> (ServerHandle, Arc<AnalysisService>) {
    let service = Arc::new(AnalysisService::new(ExecOptions::with_threads(threads)));
    let handle =
        server::spawn("127.0.0.1:0", Arc::clone(&service)).expect("bind an ephemeral port");
    (handle, service)
}

fn curves_bit_identical(served: &[(f64, f64)], reference: &[(f64, f64)]) -> bool {
    served.len() == reference.len()
        && served.iter().zip(reference).all(|((st, sv), (rt, rv))| {
            st.to_bits() == rt.to_bits() && sv.to_bits() == rv.to_bits()
        })
}

/// The daemon's DED×DED facility answers are bit-identical to the
/// in-process `FacilityAnalysis` compiled-quotient path — at 1, 2, 4 and 8
/// worker threads (per thread count, daemon and reference share the same
/// `ExecOptions`).
#[test]
fn daemon_matches_in_process_facility_analysis_at_every_thread_count() {
    let times = [0.0, 25.0, 50.0];
    for threads in [1usize, 2, 4, 8] {
        let exec = ExecOptions::with_threads(threads);
        let model = facility_model(&strategies::dedicated(), &strategies::dedicated()).unwrap();
        let options = ComposerOptions {
            exec,
            ..ComposerOptions::default()
        };
        let analysis = FacilityAnalysis::with_options(&model, options).unwrap();
        let reference_availability = analysis
            .compiled_quotient()
            .unwrap()
            .availability(exec)
            .unwrap();
        let reference_curve = analysis
            .survivability_curve(FACILITY_DISASTER_ALL_PUMPS, 1.0, &times)
            .unwrap();

        let (handle, _service) = spawn_daemon(threads);
        let mut client = Client::connect(handle.addr()).unwrap();
        let reply = client.availability("facility/ded+ded").unwrap();
        assert_eq!(
            reply.availability.to_bits(),
            reference_availability.to_bits(),
            "threads={threads}: served {} vs in-process {}",
            reply.availability,
            reference_availability
        );
        assert_eq!(reply.model, "facility/ded+ded");
        let served_curve = client
            .survivability("facility/ded+ded", FACILITY_DISASTER_ALL_PUMPS, 1.0, &times)
            .unwrap();
        assert!(
            curves_bit_identical(&served_curve, &reference_curve),
            "threads={threads}: {served_curve:?} vs {reference_curve:?}"
        );
        handle.shutdown();
    }
}

/// The acceptance criterion behind "warm repeats are ≥10× faster", stated on
/// the service's own counters instead of loopback wall-clock (which flakes
/// under scheduler noise): the repeat compiles nothing, re-solves nothing and
/// rides the memoised solve, so the cold query's cost — a compile plus a
/// stationary solve with a positive iteration count — is simply absent from
/// the warm path. Wall-clock is still printed for information.
#[test]
fn warm_cache_repeat_is_at_least_ten_times_faster_than_cold() {
    let (handle, service) = spawn_daemon(2);
    let mut client = Client::connect(handle.addr()).unwrap();

    let cold_started = Instant::now();
    let cold = client.availability("facility/ded+ded").unwrap();
    let cold_elapsed = cold_started.elapsed();

    let warm_started = Instant::now();
    let warm = client.availability("facility/ded+ded").unwrap();
    let warm_elapsed = warm_started.elapsed();

    assert_eq!(cold.availability.to_bits(), warm.availability.to_bits());
    let stats = service.stats();
    assert_eq!(stats.cache_misses, 1, "only the cold query compiled");
    assert_eq!(stats.cache_hits, 1, "the repeat hit the quotient cache");
    assert_eq!(stats.stationary_solves, 1, "the repeat reused the solve");
    assert_eq!(stats.coalesced_queries, 1, "the repeat rode the memo");
    assert!(
        stats.cold_iterations > 0,
        "the cold solve did real iterative work: {stats:?}"
    );
    assert_eq!(
        stats.solve_iterations_hist.count, 1,
        "exactly one solve was timed: {stats:?}"
    );
    // Both queries landed in the availability latency histogram, and the
    // histogram agrees with the per-op counter.
    assert_eq!(stats.availability_queries, 2, "{stats:?}");
    assert_eq!(stats.latency_availability.count, 2, "{stats:?}");
    println!(
        "informational: cold {cold_elapsed:?} vs warm {warm_elapsed:?} \
         ({:.1}x)",
        cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9)
    );
    handle.shutdown();
}

/// The `metrics` op round-trips over real TCP: the exposition parses line by
/// line and its counters agree with the structured `stats` snapshot.
#[test]
fn metrics_exposition_round_trips_and_agrees_with_stats() {
    let (handle, _service) = spawn_daemon(2);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.availability("line2/ded").unwrap();
    client.availability("line2/ded").unwrap();
    let stats = client.stats().unwrap();
    let text = client.metrics().unwrap();

    // Every non-comment line is `name_or_labels value` with a numeric value.
    let value_of = |name: &str| -> Option<f64> {
        text.lines()
            .find(|line| line.split(' ').next() == Some(name))
            .and_then(|line| line.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
    };
    for line in text.lines() {
        assert!(
            line.starts_with('#')
                || line
                    .split_once(' ')
                    .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
            "malformed exposition line: {line}"
        );
    }
    assert_eq!(
        value_of("arcade_queries_op_total{op=\"availability\"}"),
        Some(stats.availability_queries as f64)
    );
    assert_eq!(
        value_of("arcade_stationary_solves_total"),
        Some(stats.stationary_solves as f64)
    );
    assert_eq!(
        value_of("arcade_tier_solves_total{tier=\"gs-materialised\"}"),
        Some(stats.gs_materialised_solves as f64)
    );
    assert_eq!(
        value_of("arcade_cache_hits_total"),
        Some(stats.cache_hits as f64)
    );
    assert_eq!(
        value_of("arcade_query_latency_microseconds_count{op=\"availability\"}"),
        Some(stats.latency_availability.count as f64)
    );
    handle.shutdown();
}

/// Concurrent clients issuing the identical survivability query coalesce
/// onto one batched Fox–Glynn pass, and all of them receive bit-identical
/// curves.
#[test]
fn concurrent_clients_coalesce_onto_one_transient_pass() {
    const CLIENTS: usize = 6;
    let (handle, service) = spawn_daemon(4);
    let addr = handle.addr();
    let times = [0.0, 10.0, 20.0, 40.0];
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                client
                    .survivability("line2/ded", DISASTER_LINE2_MIXED, 1.0, &times)
                    .unwrap()
            })
        })
        .collect();
    let curves: Vec<Vec<(f64, f64)>> = workers
        .into_iter()
        .map(|worker| worker.join().unwrap())
        .collect();

    for curve in &curves[1..] {
        assert!(
            curves_bit_identical(curve, &curves[0]),
            "coalesced waiters must receive bit-identical curves"
        );
    }
    let stats = service.stats();
    assert_eq!(
        stats.transient_passes, 1,
        "one batched Fox–Glynn pass served all {CLIENTS} clients: {stats:?}"
    );
    assert_eq!(stats.coalesced_queries, (CLIENTS - 1) as u64, "{stats:?}");
    handle.shutdown();
}

/// A client-initiated `shutdown` request is acknowledged and stops the
/// daemon (the foreground `wt-experiments serve` exit path).
#[test]
fn client_shutdown_request_stops_the_daemon() {
    let (handle, _service) = spawn_daemon(1);
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    // Joins without setting the flag ourselves: only the client's request
    // can have stopped the accept loop.
    handle.join_until_shutdown();
    assert!(
        Client::connect(addr).map(|mut c| c.ping()).is_err()
            || Client::connect(addr).unwrap().ping().is_err(),
        "the daemon must no longer answer"
    );
}
