//! Telemetry neutrality at the service level: every query op — availability,
//! survivability, cost, simulate (naive and failure-biased) — returns a
//! byte-identical JSON payload whether the recorder is off, on, or on with
//! convergence probes, at 1, 2, 4 and 8 worker threads. Also pins the
//! trace-vs-stats agreement: the spans a traced query leaves behind name the
//! solver tier and count exactly the iterations the service's own counters
//! report.

use arcade_core::ExecOptions;
use arcade_server::{AnalysisService, CostKind, Request, Response, SimMeasure};
use arcade_telemetry::Recorder;
use watertreatment::facility::{DISASTER_ALL_PUMPS, DISASTER_LINE2_MIXED};

/// One request per query op, fixed parameters, deterministic seeds.
fn all_ops() -> Vec<Request> {
    vec![
        Request::Availability {
            model: "line2/ded".into(),
        },
        Request::Survivability {
            model: "line1/ded".into(),
            disaster: DISASTER_ALL_PUMPS.into(),
            level: 1.0,
            times: vec![0.0, 10.0, 25.0],
        },
        Request::Cost {
            model: "line2/ded".into(),
            kind: CostKind::Accumulated,
            disaster: Some(DISASTER_LINE2_MIXED.into()),
            times: vec![0.0, 24.0],
        },
        Request::Simulate {
            model: "line2/ded".into(),
            measure: SimMeasure::Unavailability,
            disaster: None,
            horizon: 200.0,
            replications: 200,
            seed: 7,
            bias: 1.0,
            alpha: 0.95,
        },
        Request::Simulate {
            model: "line2/ded".into(),
            measure: SimMeasure::Cost,
            disaster: Some(DISASTER_LINE2_MIXED.into()),
            horizon: 24.0,
            replications: 150,
            seed: 3,
            bias: 2.0,
            alpha: 0.9,
        },
    ]
}

/// Serves every op on a fresh service, optionally under a scoped recorder,
/// and returns the rendered payloads (the JSON rendering is bit-exact for
/// f64, so string equality is bit equality).
fn serve_all(threads: usize, recorder: Option<&Recorder>) -> Vec<String> {
    let service = AnalysisService::new(ExecOptions::with_threads(threads));
    let _scope = recorder.map(Recorder::enter);
    all_ops()
        .iter()
        .map(|request| match service.handle(request) {
            Response::Ok(payload) => payload.to_string(),
            Response::Err(err) => panic!("{request:?} failed: {err}"),
        })
        .collect()
}

#[test]
fn every_op_is_byte_identical_with_recording_off_on_and_probed() {
    let baseline = serve_all(1, None);
    for threads in [1usize, 2, 4, 8] {
        for (label, recorder) in [
            ("off", None),
            ("on", Some(Recorder::enabled())),
            ("probes", Some(Recorder::with_probes())),
        ] {
            let served = serve_all(threads, recorder.as_ref());
            assert_eq!(
                served, baseline,
                "threads={threads}, recorder={label}: payload drifted"
            );
        }
    }
}

#[test]
fn traced_spans_agree_with_the_service_counters() {
    let recorder = Recorder::with_probes();
    let service = AnalysisService::new(ExecOptions::serial());
    let _scope = recorder.enter();
    let availability = Request::Availability {
        model: "line2/ded".into(),
    };
    let payload = match service.handle(&availability) {
        Response::Ok(payload) => payload,
        Response::Err(err) => panic!("availability failed: {err}"),
    };
    let stats = service.stats();

    // One compile (compose → lump → materialise) and one solve.
    assert_eq!(recorder.span_count("compose"), 1);
    assert_eq!(recorder.span_count("solve"), 1);
    assert_eq!(stats.stationary_solves, 1);

    // Iteration totals: reply field == service counters == span counter ==
    // residual-series length.
    let reply_iterations = payload.get("iterations").unwrap().as_usize().unwrap() as u64;
    assert_eq!(
        stats.cold_iterations + stats.warm_iterations,
        reply_iterations
    );
    assert_eq!(
        recorder.counter_total("solve", "iterations"),
        reply_iterations
    );
    let residuals: Vec<_> = recorder
        .series()
        .into_iter()
        .filter(|series| series.kind == "residual")
        .collect();
    assert_eq!(residuals.len(), 1);
    assert_eq!(residuals[0].values.len() as u64, reply_iterations);

    // The solver tier named in the reply is the tier the probe ran under and
    // the tier the service counted.
    assert_eq!(
        payload.get("solver_tier").unwrap().as_str(),
        Some("gs-materialised")
    );
    assert_eq!(residuals[0].tier, "gauss-seidel");
    assert_eq!(stats.gs_materialised_solves, 1);

    // The Chrome trace of the same recorder carries the solve span with its
    // iteration counter intact.
    let trace = recorder.chrome_trace();
    let parsed = arcade_server::Json::parse(&trace).unwrap();
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    let solve = events
        .iter()
        .find(|e| e.get("name").and_then(arcade_server::Json::as_str) == Some("solve"))
        .expect("trace lacks the solve span");
    let traced_iterations = solve
        .get("args")
        .and_then(|args| args.get("iterations"))
        .and_then(arcade_server::Json::as_usize)
        .unwrap() as u64;
    assert_eq!(traced_iterations, reply_iterations);
}
