//! Cache-key hardening regression: a forced presentation-code collision
//! (two *different* chains interned under the same 64-bit code) must keep
//! both artifacts separate — sharing happens only after
//! [`arcade_core::CompiledQuotient::identical`] confirms exact equality, so
//! a hash collision can never poison the cache.

use std::sync::Arc;

use arcade_core::{CompiledQuotient, ComposerOptions};
use arcade_server::QuotientCache;
use watertreatment::ModelSpec;

fn quotient_of(spec: &str) -> CompiledQuotient {
    ModelSpec::parse(spec)
        .unwrap()
        .build_quotient(ComposerOptions::default())
        .unwrap()
}

#[test]
fn colliding_codes_keep_distinct_artifacts_separate() {
    let line1 = quotient_of("line1/ded");
    let line2 = quotient_of("line2/ded");
    assert!(
        !line1.identical(&line2),
        "the regression needs two genuinely different chains"
    );

    // Force both under one code, as a 64-bit hash collision would.
    let forced = 0xdead_beef_u64;
    let cache = QuotientCache::new();
    let (first, first_shared) = cache.intern_with_code("line1/ded", "line1/ded", forced, line1);
    let (second, second_shared) = cache.intern_with_code("line2/ded", "line2/ded", forced, line2);
    assert!(!first_shared);
    assert!(
        !second_shared,
        "a code collision must not be treated as artifact identity"
    );
    assert!(
        !Arc::ptr_eq(&first, &second),
        "colliding-but-different artifacts live side by side"
    );
    assert_eq!(cache.num_artifacts(), 2);
    assert_eq!(cache.num_specs(), 2);

    // Each spec still resolves to its own chain …
    let resolved_line1 = cache.get("line1/ded").unwrap();
    let resolved_line2 = cache.get("line2/ded").unwrap();
    assert!(resolved_line1
        .quotient()
        .identical(&quotient_of("line1/ded")));
    assert!(resolved_line2
        .quotient()
        .identical(&quotient_of("line2/ded")));

    // … and solve state never leaks across the collision: memoising a
    // stationary vector on one entry must not surface on the other.
    let fake_pi = Arc::new(vec![1.0; first.quotient().num_states()]);
    first.set_stationary(Arc::clone(&fake_pi));
    assert!(first.stationary().is_some());
    assert!(
        second.stationary().is_none(),
        "a collision neighbour must not inherit the other chain's solution"
    );
}

#[test]
fn identical_artifacts_share_one_entry_even_under_a_forced_code() {
    let cache = QuotientCache::new();
    let forced = 42_u64;
    let (first, first_shared) =
        cache.intern_with_code("line2/ded", "line2/ded", forced, quotient_of("line2/ded"));
    assert!(!first_shared);

    // A second, independently compiled but exactly equal artifact interns
    // onto the existing entry (the equality confirm passes).
    let (second, second_shared) =
        cache.intern_with_code("line2/ded@1", "line2/ded", forced, quotient_of("line2/ded"));
    assert!(second_shared, "identical artifacts are stored once");
    assert!(Arc::ptr_eq(&first, &second));
    assert_eq!(cache.num_artifacts(), 1);
    assert_eq!(cache.num_specs(), 2, "both specs point at the one artifact");
}

#[test]
fn bounded_cache_evicts_the_least_recently_used_spec() {
    let cache = QuotientCache::with_capacity(2);
    assert_eq!(cache.capacity(), Some(2));
    cache.insert("line2/ded", "line2/ded", quotient_of("line2/ded"));
    let (victim, _) = cache.insert("line1/ded", "line1/ded", quotient_of("line1/ded"));
    let states = victim.quotient().num_states();
    victim.set_stationary(Arc::new(vec![0.25; states]));
    assert_eq!(cache.num_specs(), 2);
    assert_eq!(cache.evictions(), 0);

    // Touch the oldest spec so the *other* one becomes the LRU victim.
    assert!(cache.get("line2/ded").is_some());
    cache.insert("line2/frf-1", "line2/frf-1", quotient_of("line2/frf-1"));
    assert_eq!(cache.num_specs(), 2);
    assert_eq!(cache.evictions(), 1);
    assert!(cache.get("line1/ded").is_none(), "LRU victim is gone");
    assert!(
        cache.get("line2/ded").is_some(),
        "the touched spec survives"
    );
    assert!(cache.get("line2/frf-1").is_some());

    // The evicted spec's artifact (and its memoised stationary vector) was
    // garbage-collected with it, so the warm-donor scan can never hand out
    // vectors of evicted entries.
    assert_eq!(cache.num_artifacts(), 2);
    assert!(cache.warm_donor("line1/ded", states, 0).is_none());

    // Re-inserting the evicted spec works and evicts the new LRU.
    cache.insert("line1/ded", "line1/ded", quotient_of("line1/ded"));
    assert_eq!(cache.num_specs(), 2);
    assert_eq!(cache.evictions(), 2);
}

#[test]
fn warm_donor_skips_the_asking_code_and_foreign_families() {
    let cache = QuotientCache::new();
    let nominal = quotient_of("line2/ded");
    let states = nominal.num_states();
    let (entry, _) = cache.intern_with_code("line2/ded", "line2/ded", 1, nominal);
    entry.set_stationary(Arc::new(vec![0.5; states]));

    // The entry's own code is excluded (it cannot donate to itself) …
    assert!(cache.warm_donor("line2/ded", states, 1).is_none());
    // … a different family never donates …
    assert!(cache.warm_donor("line1/ded", states, 2).is_none());
    // … and a same-family sibling with a different code does.
    assert!(cache.warm_donor("line2/ded", states, 2).is_some());
    // Dimension mismatches are filtered out before the guess can misfit.
    assert!(cache.warm_donor("line2/ded", states + 1, 2).is_none());
}
