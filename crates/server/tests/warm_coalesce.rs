//! Warm starts move the trajectory, never the fixed point; coalesced
//! identical queries share one solve and receive bit-identical replies.

use std::sync::{Arc, Barrier};

use arcade_core::{ComposerOptions, ExecOptions};
use arcade_server::{AnalysisService, Request, Response};
use ctmc::SteadyStateSolver;
use proptest::prelude::*;
use watertreatment::ModelSpec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A Gauss–Seidel solve warm-started from a rate-perturbed sibling's
    /// stationary vector lands on the same distribution as the cold solve
    /// to 1e-12 — the warm start is purely an iteration-count optimisation.
    /// Both solves run at a tight 1e-14 tolerance so each is within ~1e-14
    /// of the fixed point and the 1e-12 bound has margin.
    #[test]
    fn warm_started_solves_match_cold_starts_to_1e_12(
        scale in 0.85f64..1.15,
        strategy_index in 0usize..3,
    ) {
        let strategy = ["ded", "frf-1", "fff-2"][strategy_index];
        let exec = ExecOptions::serial();
        let nominal = ModelSpec::parse(&format!("line2/{strategy}"))
            .unwrap()
            .build_quotient(ComposerOptions::default())
            .unwrap();
        let (donor_pi, _) = nominal.stationary_counted(None, exec).unwrap();

        let perturbed = ModelSpec::parse(&format!("line2/{strategy}@{scale}"))
            .unwrap()
            .build_quotient(ComposerOptions::default())
            .unwrap();
        let tight_solve = |guess: Option<&[f64]>| {
            let mut solver = SteadyStateSolver::new(perturbed.chain())
                .exec(exec)
                .tolerance(1e-14);
            if let Some(guess) = guess {
                solver = solver.initial_guess(guess.to_vec());
            }
            solver.solve().unwrap()
        };
        let cold_pi = tight_solve(None);
        let warm_pi = tight_solve(Some(&donor_pi));

        for (index, (warm, cold)) in warm_pi.iter().zip(&cold_pi).enumerate() {
            prop_assert!(
                (warm - cold).abs() <= 1e-12,
                "state {index}: warm {warm} vs cold {cold} (scale {scale})"
            );
        }
        let warm_availability = perturbed.availability_of(&warm_pi);
        let cold_availability = perturbed.availability_of(&cold_pi);
        prop_assert!(
            (warm_availability - cold_availability).abs() <= 1e-12,
            "availability drifted: warm {warm_availability} vs cold {cold_availability}"
        );
    }
}

/// N concurrent identical queries: one compilation, one stationary solve,
/// and every waiter receives the bit-identical reply (the coalescer hands
/// all followers the leader's result).
#[test]
fn n_concurrent_identical_queries_share_one_solve_bit_identically() {
    const CLIENTS: usize = 8;
    let service = Arc::new(AnalysisService::new(ExecOptions::with_threads(2)));
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.handle(&Request::Availability {
                    model: "line1/frf-2".into(),
                })
            })
        })
        .collect();
    let replies: Vec<Response> = workers
        .into_iter()
        .map(|worker| worker.join().unwrap())
        .collect();

    assert!(matches!(replies[0], Response::Ok(_)), "{:?}", replies[0]);
    for reply in &replies[1..] {
        assert_eq!(reply, &replies[0], "every waiter gets the identical reply");
    }
    let stats = service.stats();
    assert_eq!(
        stats.stationary_solves, 1,
        "N queries, one solve: {stats:?}"
    );
    assert_eq!(stats.cache_misses, 1, "one compilation: {stats:?}");
    assert_eq!(stats.cache_hits, (CLIENTS - 1) as u64, "{stats:?}");
    assert_eq!(
        stats.coalesced_queries,
        (CLIENTS - 1) as u64,
        "every non-leader coalesced onto the one solve: {stats:?}"
    );
}
