//! Error type of the lumping engine.

use std::fmt;

use ctmc::CtmcError;

/// Errors produced while lumping a CTMC or projecting data through a lumping.
#[derive(Debug, Clone, PartialEq)]
pub enum LumpError {
    /// A vector's length does not match the expected number of states/blocks.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A per-state quantity is not constant on some block, so it cannot be
    /// projected onto the quotient.
    NotBlockConstant {
        /// Description of the offending quantity.
        what: String,
        /// The block on which two states disagree.
        block: usize,
    },
    /// The computed partition is not stable — exactness would be violated.
    /// This indicates a bug in the refinement engine.
    UnstablePartition {
        /// The offending block.
        block: usize,
        /// Human-readable details.
        reason: String,
    },
    /// A quotient product could not be formed (empty factor list, duplicate
    /// factor names, overflowing state count, ...).
    InvalidProduct {
        /// Human-readable details.
        reason: String,
    },
    /// An error from the underlying CTMC crate.
    Ctmc(CtmcError),
}

impl fmt::Display for LumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LumpError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} entries, got {actual}"
                )
            }
            LumpError::NotBlockConstant { what, block } => {
                write!(f, "{what} is not constant on block {block}")
            }
            LumpError::UnstablePartition { block, reason } => {
                write!(f, "partition is not stable at block {block}: {reason}")
            }
            LumpError::InvalidProduct { reason } => {
                write!(f, "invalid quotient product: {reason}")
            }
            LumpError::Ctmc(error) => write!(f, "CTMC error: {error}"),
        }
    }
}

impl std::error::Error for LumpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LumpError::Ctmc(error) => Some(error),
            _ => None,
        }
    }
}

impl From<CtmcError> for LumpError {
    fn from(error: CtmcError) -> Self {
        LumpError::Ctmc(error)
    }
}
