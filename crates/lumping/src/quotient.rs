//! The quotient chain and the block ↔ state projection maps.

use std::collections::HashMap;

use ctmc::{Ctmc, CtmcBuilder, RewardStructure};

use crate::error::LumpError;

/// An exactly lumped CTMC: the quotient chain plus the maps between original
/// states and quotient blocks.
///
/// Because the partition is ordinarily lumpable, the aggregated process is a
/// Markov chain for *every* initial distribution. Consequently:
///
/// * *forward* quantities (transient/reachability probabilities, expected
///   rewards computed from a start state) are equal for all states of a block
///   and can be copied back with [`LumpedCtmc::expand_values`];
/// * *occupancy* quantities (a distribution over states) aggregate to the
///   quotient via [`LumpedCtmc::aggregate_distribution`]; per-state occupancy
///   of the flat chain is not recoverable from the quotient (and is never
///   needed by measures that only evaluate block-closed state sets);
/// * state sets (CSL atomic propositions, goal sets) that are unions of
///   blocks translate in both directions with [`LumpedCtmc::project_mask`] /
///   [`LumpedCtmc::expand_mask`].
#[derive(Debug, Clone, PartialEq)]
pub struct LumpedCtmc {
    quotient: Ctmc,
    block_of: Vec<usize>,
    blocks: Vec<Vec<usize>>,
}

impl LumpedCtmc {
    /// Builds the quotient from a stable partition. Blocks are renumbered by
    /// their smallest member so the result is deterministic.
    pub(crate) fn build(
        chain: &Ctmc,
        block_of_raw: Vec<usize>,
        blocks_raw: Vec<Vec<u32>>,
    ) -> Result<LumpedCtmc, LumpError> {
        let mut blocks: Vec<Vec<usize>> = blocks_raw
            .into_iter()
            .map(|members| {
                let mut members: Vec<usize> = members.into_iter().map(|s| s as usize).collect();
                members.sort_unstable();
                members
            })
            .collect();
        blocks.sort_unstable_by_key(|members| members[0]);

        let num_blocks = blocks.len();
        let mut block_of = block_of_raw;
        for (id, members) in blocks.iter().enumerate() {
            for &s in members {
                block_of[s] = id;
            }
        }

        let mut builder = CtmcBuilder::new(num_blocks);
        let rates = chain.rate_matrix();
        for (id, members) in blocks.iter().enumerate() {
            // Any member works as representative; stability guarantees they
            // all have the same cumulative rates into every other block.
            let representative = members[0];
            let mut outgoing: HashMap<usize, f64> = HashMap::new();
            let (cols, values) = rates.row(representative);
            for (&target, &rate) in cols.iter().zip(values.iter()) {
                let target_block = block_of[target];
                if target_block != id {
                    *outgoing.entry(target_block).or_insert(0.0) += rate;
                }
            }
            let mut outgoing: Vec<(usize, f64)> = outgoing.into_iter().collect();
            outgoing.sort_unstable_by_key(|&(target, _)| target);
            for (target, rate) in outgoing {
                builder.add_transition(id, target, rate)?;
            }
        }

        let mut initial = vec![0.0; num_blocks];
        for (s, &p) in chain.initial_distribution().iter().enumerate() {
            initial[block_of[s]] += p;
        }
        builder.set_initial_distribution(initial)?;

        // Copy every block-closed label onto the quotient; labels that cut
        // through a block (none, when the initial partition was built from
        // the chain's labels) are dropped.
        let names: Vec<String> = chain.label_names().map(str::to_string).collect();
        for name in names {
            let mask = chain.label(&name).expect("name just came from the chain");
            if let Some(block_mask) = try_project_mask(&blocks, mask) {
                builder.add_label_mask(name, block_mask)?;
            }
        }

        let quotient = builder.build()?;
        Ok(LumpedCtmc {
            quotient,
            block_of,
            blocks,
        })
    }

    /// The quotient chain.
    pub fn quotient(&self) -> &Ctmc {
        &self.quotient
    }

    /// Number of blocks (= states of the quotient).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of states of the original chain.
    pub fn num_states(&self) -> usize {
        self.block_of.len()
    }

    /// The block containing an original state.
    pub fn block_of(&self, state: usize) -> usize {
        self.block_of[state]
    }

    /// The block of every original state.
    pub fn block_map(&self) -> &[usize] {
        &self.block_of
    }

    /// The member states of every block, sorted ascending.
    pub fn blocks(&self) -> &[Vec<usize>] {
        &self.blocks
    }

    /// The representative (smallest) original state of a block.
    pub fn representative(&self, block: usize) -> usize {
        self.blocks[block][0]
    }

    /// Projects a per-state mask to a per-block mask.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::NotBlockConstant`] if the mask cuts through a
    /// block, and [`LumpError::DimensionMismatch`] on a length mismatch.
    pub fn project_mask(&self, mask: &[bool]) -> Result<Vec<bool>, LumpError> {
        if mask.len() != self.num_states() {
            return Err(LumpError::DimensionMismatch {
                expected: self.num_states(),
                actual: mask.len(),
            });
        }
        try_project_mask(&self.blocks, mask).ok_or_else(|| {
            let block = self
                .blocks
                .iter()
                .position(|members| {
                    members.iter().any(|&s| mask[s]) && !members.iter().all(|&s| mask[s])
                })
                .unwrap_or(0);
            LumpError::NotBlockConstant {
                what: "state mask".to_string(),
                block,
            }
        })
    }

    /// Projects a block-constant per-state value vector to a per-block vector.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::NotBlockConstant`] if two states of a block carry
    /// different values, and [`LumpError::DimensionMismatch`] on a length
    /// mismatch.
    pub fn project_values(&self, values: &[f64]) -> Result<Vec<f64>, LumpError> {
        if values.len() != self.num_states() {
            return Err(LumpError::DimensionMismatch {
                expected: self.num_states(),
                actual: values.len(),
            });
        }
        let mut out = Vec::with_capacity(self.num_blocks());
        for (block, members) in self.blocks.iter().enumerate() {
            let value = values[members[0]];
            if members
                .iter()
                .any(|&s| values[s].to_bits() != value.to_bits())
            {
                return Err(LumpError::NotBlockConstant {
                    what: "state values".to_string(),
                    block,
                });
            }
            out.push(value);
        }
        Ok(out)
    }

    /// Expands a per-block mask to the original states.
    pub fn expand_mask(&self, block_mask: &[bool]) -> Vec<bool> {
        self.block_of.iter().map(|&b| block_mask[b]).collect()
    }

    /// Expands per-block values (e.g. forward probabilities or CSL verdicts
    /// per quotient state) to the original states.
    pub fn expand_values(&self, block_values: &[f64]) -> Vec<f64> {
        self.block_of.iter().map(|&b| block_values[b]).collect()
    }

    /// Aggregates a distribution over original states to the blocks.
    pub fn aggregate_distribution(&self, state_probabilities: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_blocks()];
        for (s, &p) in state_probabilities.iter().enumerate() {
            out[self.block_of[s]] += p;
        }
        out
    }

    /// Lumps a reward structure onto the quotient.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::NotBlockConstant`] if rewards differ within a
    /// block (include the reward rates in the initial partition to avoid this).
    pub fn lump_rewards(&self, rewards: &RewardStructure) -> Result<RewardStructure, LumpError> {
        let values = self.project_values(rewards.state_rewards())?;
        Ok(RewardStructure::new(rewards.name(), values)?)
    }

    /// Re-checks ordinary lumpability of the partition against the flat
    /// chain: every state of a block must have cumulative rates into every
    /// other block within `tolerance` of its block's quotient rates.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::UnstablePartition`] on a violation (which would
    /// indicate a refinement bug) and [`LumpError::DimensionMismatch`] if the
    /// chain does not match this lumping.
    pub fn verify(&self, chain: &Ctmc, tolerance: f64) -> Result<(), LumpError> {
        if chain.num_states() != self.num_states() {
            return Err(LumpError::DimensionMismatch {
                expected: self.num_states(),
                actual: chain.num_states(),
            });
        }
        let rates = chain.rate_matrix();
        let quotient_rates = self.quotient.rate_matrix();
        for (block, members) in self.blocks.iter().enumerate() {
            for &state in members {
                let mut outgoing: HashMap<usize, f64> = HashMap::new();
                let (cols, values) = rates.row(state);
                for (&target, &rate) in cols.iter().zip(values.iter()) {
                    let target_block = self.block_of[target];
                    if target_block != block {
                        *outgoing.entry(target_block).or_insert(0.0) += rate;
                    }
                }
                for other in 0..self.num_blocks() {
                    let expected = quotient_rates.get(block, other);
                    let actual = outgoing.get(&other).copied().unwrap_or(0.0);
                    if other != block && (expected - actual).abs() > tolerance {
                        return Err(LumpError::UnstablePartition {
                            block,
                            reason: format!(
                                "state {state} has rate {actual} into block {other}, \
                                 block rate is {expected}"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Projects a state mask to a block mask; `None` if it cuts through a block.
fn try_project_mask(blocks: &[Vec<usize>], mask: &[bool]) -> Option<Vec<bool>> {
    let mut out = Vec::with_capacity(blocks.len());
    for members in blocks {
        let value = mask[members[0]];
        if members.iter().any(|&s| mask[s] != value) {
            return None;
        }
        out.push(value);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use ctmc::CtmcBuilder;

    use super::*;
    use crate::partition::InitialPartition;
    use crate::refine::lump;

    fn two_identical_components() -> Ctmc {
        let mut builder = CtmcBuilder::new(4);
        for (from, to, rate) in [
            (0b00, 0b01, 0.25),
            (0b00, 0b10, 0.25),
            (0b01, 0b00, 2.0),
            (0b10, 0b00, 2.0),
            (0b01, 0b11, 0.25),
            (0b10, 0b11, 0.25),
            (0b11, 0b01, 2.0),
            (0b11, 0b10, 2.0),
        ] {
            builder.add_transition(from, to, rate).unwrap();
        }
        builder.set_initial_state(0).unwrap();
        builder
            .add_label_mask("all_up", vec![true, false, false, false])
            .unwrap();
        builder.build().unwrap()
    }

    #[test]
    fn maps_round_trip_between_states_and_blocks() {
        let chain = two_identical_components();
        let lumped = lump(&chain, &InitialPartition::from_labels(&chain)).unwrap();
        assert_eq!(lumped.num_blocks(), 3);
        assert_eq!(lumped.num_states(), 4);
        assert_eq!(lumped.block_of(0b01), lumped.block_of(0b10));
        assert_eq!(lumped.representative(lumped.block_of(0b00)), 0b00);

        let mask = vec![true, false, false, false];
        let block_mask = lumped.project_mask(&mask).unwrap();
        assert_eq!(lumped.expand_mask(&block_mask), mask);

        // A mask separating the two symmetric states is not block-closed.
        let bad = vec![false, true, false, false];
        assert!(matches!(
            lumped.project_mask(&bad),
            Err(LumpError::NotBlockConstant { .. })
        ));

        let aggregated = lumped.aggregate_distribution(&[0.1, 0.2, 0.3, 0.4]);
        assert!((aggregated.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((aggregated[lumped.block_of(0b01)] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn labels_transfer_to_the_quotient() {
        let chain = two_identical_components();
        let lumped = lump(&chain, &InitialPartition::from_labels(&chain)).unwrap();
        let mask = lumped
            .quotient()
            .label("all_up")
            .expect("label survives lumping");
        assert_eq!(mask.iter().filter(|&&b| b).count(), 1);
        assert!(mask[lumped.block_of(0b00)]);
    }

    #[test]
    fn rewards_lump_when_block_constant() {
        let chain = two_identical_components();
        let lumped = lump(&chain, &InitialPartition::from_labels(&chain)).unwrap();
        let rewards = RewardStructure::new("cost", vec![0.0, 3.0, 3.0, 6.0]).unwrap();
        let lumped_rewards = lumped.lump_rewards(&rewards).unwrap();
        assert_eq!(lumped_rewards.len(), 3);
        assert_eq!(lumped_rewards.state_rewards()[lumped.block_of(0b11)], 6.0);

        let uneven = RewardStructure::new("cost", vec![0.0, 3.0, 4.0, 6.0]).unwrap();
        assert!(matches!(
            lumped.lump_rewards(&uneven),
            Err(LumpError::NotBlockConstant { .. })
        ));
    }

    #[test]
    fn verify_accepts_the_engine_output_and_rejects_tampering() {
        let chain = two_identical_components();
        let lumped = lump(&chain, &InitialPartition::from_labels(&chain)).unwrap();
        lumped.verify(&chain, 0.0).unwrap();

        // A chain with different rates is not lumpable under this partition.
        let mut builder = CtmcBuilder::new(4);
        builder.add_transition(0b00, 0b01, 9.0).unwrap();
        builder.add_transition(0b01, 0b00, 1.0).unwrap();
        builder.add_transition(0b10, 0b00, 1.0).unwrap();
        builder.add_transition(0b11, 0b01, 1.0).unwrap();
        let other = builder.build().unwrap();
        assert!(lumped.verify(&other, 1e-9).is_err());
    }
}
