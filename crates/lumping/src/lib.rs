//! # arcade-lumping — exact (ordinary) lumping of labelled CTMCs
//!
//! The DSN 2010 Arcade paper keeps its water-treatment CTMCs tractable through
//! *compositional aggregation*: behaviourally equivalent states are merged
//! before the numerical solvers run. This crate supplies that reduction for
//! the explicit state spaces produced by the composer: it computes the
//! **coarsest ordinarily-lumpable partition** refining a user-supplied initial
//! partition, and builds the quotient chain together with the block ↔ state
//! maps needed to project measures back to the original model.
//!
//! # Algorithm
//!
//! The engine is a weight-based partition refinement in the style of
//! Valmari & Franceschinis (*Simple O(m log n) Time Markov Chain Lumping*,
//! TACAS 2010) and Derisavi, Hermanns & Sanders, without the splay trees of
//! the latter:
//!
//! 1. Start from the initial partition (for Arcade models: states grouped by
//!    atomic propositions, service level and reward rate) and put every block
//!    on a worklist of potential *splitters*.
//! 2. Pop a splitter block `C` and weight the states with generator
//!    semantics: a state `s ∉ C` by its cumulative rate into the splitter,
//!    `w(s, C) = Σ_{u ∈ C} R(s, u)` (over the transposed rate matrix), and a
//!    member `s ∈ C` by `−Σ_{u ∉ C} R(s, u)`, i.e. minus its rate *leaving*
//!    the splitter — ordinary lumpability does not constrain intra-block
//!    rates, and weighing members by raw rates into their own block would
//!    over-split. To keep the grouping exact under floating-point addition,
//!    the per-state contributions are sorted before summation, so symmetric
//!    states get bit-identical weights.
//! 3. Split every block containing a touched state into its subgroups of
//!    equal weight (states with no edge across the splitter boundary form
//!    the weight-zero subgroup). For each split, the largest subblock keeps
//!    the parent's identity and every other subblock joins the worklist
//!    (Hopcroft's "process the smaller half" rule, which bounds the total
//!    work by `O(m log n)`; moving touched states out of their block keeps
//!    each split proportional to the touched states, not the block).
//! 4. When the worklist runs dry, the partition is stable: all states of a
//!    block have identical cumulative rates into every *other* block. The
//!    quotient CTMC is read off a representative of each block.
//!
//! For an ordinarily lumpable partition the aggregated process is a Markov
//! chain for *every* initial distribution, so transient, steady-state, reward
//! and time-bounded-reachability measures evaluated on the quotient coincide
//! with the flat chain exactly (up to solver tolerance). The
//! [`LumpedCtmc::verify`] method re-checks stability directly and is used by
//! the property-test suites.
//!
//! The [`subchain`] module supplies the *compositional* counterpart: the
//! per-family sub-chain quotients (canonical role assignments and multiset
//! block counts) that a composer can aggregate **before** taking the cross
//! product, so the flat chain never needs to exist in the first place.
//!
//! The [`product`] module closes the loop at the system level: a lumped CTMC
//! is itself a composable component. [`QuotientProduct`] forms the joint
//! chain of independent sub-models (states as tuples of block ids, generator
//! as the Kronecker sum) either materialised or as a matrix-free
//! [`KroneckerSum`] operator for the exec SpMV kernels.
//!
//! # Example
//!
//! Two parallel, identical, independently repaired pumps: the four flat states
//! `{up,down}²` lump into three blocks (0, 1 or 2 pumps down).
//!
//! ```
//! # use ctmc::CtmcBuilder;
//! # use arcade_lumping::{InitialPartition, lump};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CtmcBuilder::new(4); // bit i of the index = pump i failed
//! for (state, pump_bit) in [(0b00, 1), (0b00, 2), (0b01, 2), (0b10, 1)] {
//!     b.add_transition(state, state | pump_bit, 0.001)?; // failure
//!     b.add_transition(state | pump_bit, state, 0.5)?; // repair
//! }
//! b.add_label_mask("down", vec![false, true, true, true])?;
//! let chain = b.build()?;
//!
//! let initial = InitialPartition::from_labels(&chain);
//! let lumped = lump(&chain, &initial)?;
//! assert_eq!(lumped.num_blocks(), 3);
//! assert_eq!(lumped.block_of(0b01), lumped.block_of(0b10));
//! lumped.verify(&chain, 1e-12)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod partition;
pub mod product;
pub mod quotient;
pub mod refine;
pub mod subchain;

pub use error::LumpError;
pub use partition::InitialPartition;
pub use product::{KroneckerSum, ProductOrbit, QuotientProduct};
pub use quotient::LumpedCtmc;
pub use refine::lump;
pub use subchain::{canonical_roles, multiset_count, SubchainQuotient};
