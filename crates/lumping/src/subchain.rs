//! Per-family sub-chain quotients for compositional aggregation.
//!
//! The paper's pipeline does not lump the flat product chain: it aggregates
//! each process line's *sub-chains* first and only then composes. The
//! behavioural unit of such a sub-chain is a **family** of interchangeable
//! components — identical rates, costs and dispatch priorities, sibling leaves
//! under the same (permutation-symmetric) structure gate, served by the same
//! repair unit. Permuting the members of a family is an automorphism of the
//! composed CTMC, so the orbit partition it induces is ordinarily lumpable:
//! composing over orbit *representatives* yields exactly the per-family
//! quotients' product, without ever materialising the flat chain.
//!
//! This module supplies the family-local machinery:
//!
//! * [`canonical_roles`] picks the canonical representative of a family's
//!   role assignment (the quotient map of the sub-chain: a local state is
//!   identified with the sorted multiset of its members' roles);
//! * [`SubchainQuotient`] enumerates a family's local state space — the flat
//!   role-vector count versus the multiset-block count — which is what the
//!   per-line reduction breakdown of the composer's statistics reports;
//! * [`multiset_count`] is the closed form `C(k + r - 1, r - 1)` for the
//!   number of blocks of a `k`-member family over an `r`-symbol role alphabet.
//!
//! # Interface-label preservation
//!
//! Merging two local states is only sound when every observation a cross-level
//! measure can make of the family — its contribution to the service tree, the
//! operational fault tree and the cost rewards — agrees on them. The caller
//! guarantees this by construction: families contain only components whose
//! interface (rates, costs, priorities, structural position under a symmetric
//! gate) is identical, so every such observation is a symmetric function of
//! the members and therefore constant on each role multiset. The final exact
//! lumping pass run on the composed quotient re-checks stability against the
//! labels, which pins the guarantee in the test suites.

/// Sorts a family's role vector into its canonical (ascending) order and
/// returns the permutation that was applied: `order[i]` is the index of the
/// original role now occupying slot `i`.
///
/// Two local states of a sub-chain are in the same quotient block iff their
/// role vectors are permutations of each other, i.e. iff they sort to the same
/// canonical vector. The returned permutation lets the caller move satellite
/// data (queue slots, crew assignments) along with the roles.
///
/// The sort is stable, so members holding equal roles keep their relative
/// order and re-canonicalising a canonical vector is the identity.
pub fn canonical_roles<K: Ord>(roles: &mut [K]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..roles.len()).collect();
    order.sort_by(|&a, &b| roles[a].cmp(&roles[b]).then(a.cmp(&b)));
    apply_permutation(roles, &order);
    order
}

/// Reorders `values` so that slot `i` receives the element previously at
/// `order[i]`.
fn apply_permutation<K>(values: &mut [K], order: &[usize]) {
    debug_assert_eq!(values.len(), order.len());
    let mut visited = vec![false; order.len()];
    for start in 0..order.len() {
        if visited[start] || order[start] == start {
            visited[start] = true;
            continue;
        }
        // Walk the cycle, swapping elements into place.
        let mut current = start;
        loop {
            let source = order[current];
            visited[current] = true;
            if visited[source] {
                break;
            }
            values.swap(current, source);
            current = source;
        }
    }
}

/// Number of multisets of size `k` over an alphabet of `r` symbols:
/// `C(k + r - 1, r - 1)`. This is the block count of a `k`-member family's
/// sub-chain quotient when each member can hold one of `r` roles.
pub fn multiset_count(k: usize, r: usize) -> usize {
    if r == 0 {
        return usize::from(k == 0);
    }
    // C(k + r - 1, r - 1), computed incrementally to stay exact.
    let mut result: usize = 1;
    for i in 0..r - 1 {
        result = result.saturating_mul(k + i + 1) / (i + 1);
    }
    result
}

/// The local state space of one family's sub-chain: flat role vectors versus
/// multiset quotient blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubchainQuotient {
    family_size: usize,
    alphabet: usize,
}

impl SubchainQuotient {
    /// A quotient for a family of `family_size` members, each holding one of
    /// `alphabet` roles.
    pub fn new(family_size: usize, alphabet: usize) -> Self {
        SubchainQuotient {
            family_size,
            alphabet,
        }
    }

    /// Number of members of the family.
    pub fn family_size(&self) -> usize {
        self.family_size
    }

    /// Size of the role alphabet.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Number of local states before lumping: `alphabet ^ family_size`
    /// (saturating, for display purposes).
    pub fn flat_states(&self) -> usize {
        let mut result: usize = 1;
        for _ in 0..self.family_size {
            result = result.saturating_mul(self.alphabet);
        }
        result
    }

    /// Number of quotient blocks: the multiset count.
    pub fn blocks(&self) -> usize {
        multiset_count(self.family_size, self.alphabet)
    }

    /// The quotient block of a local role vector: its rank among all sorted
    /// (canonical) role vectors in lexicographic order.
    ///
    /// Returns `None` if the vector has the wrong length or a role outside
    /// the alphabet.
    pub fn block_of(&self, roles: &[u8]) -> Option<usize> {
        if roles.len() != self.family_size {
            return None;
        }
        if roles.iter().any(|&r| (r as usize) >= self.alphabet) {
            return None;
        }
        let mut sorted = roles.to_vec();
        sorted.sort_unstable();
        // Rank the canonical (non-decreasing) vector: count the canonical
        // vectors that are lexicographically smaller, position by position.
        let mut rank = 0usize;
        let mut previous = 0u8;
        for (i, &role) in sorted.iter().enumerate() {
            for smaller in previous..role {
                // Vectors matching `sorted` up to position i, holding `smaller`
                // there, and continuing with any non-decreasing tail.
                rank += multiset_count(self.family_size - i - 1, self.alphabet - smaller as usize);
            }
            previous = role;
        }
        Some(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_roles_sorts_and_reports_the_permutation() {
        let mut roles = vec![2u8, 0, 1, 0];
        let order = canonical_roles(&mut roles);
        assert_eq!(roles, vec![0, 0, 1, 2]);
        // Stable: the two zeros keep their original relative order.
        assert_eq!(order, vec![1, 3, 2, 0]);

        // Idempotent on a canonical vector.
        let mut again = roles.clone();
        let identity = canonical_roles(&mut again);
        assert_eq!(again, roles);
        assert_eq!(identity, vec![0, 1, 2, 3]);
    }

    #[test]
    fn canonical_roles_identifies_permutations() {
        let mut a = vec![3u8, 1, 2];
        let mut b = vec![1u8, 2, 3];
        canonical_roles(&mut a);
        canonical_roles(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn multiset_counts_match_closed_forms() {
        assert_eq!(multiset_count(0, 3), 1);
        assert_eq!(multiset_count(3, 1), 1);
        assert_eq!(multiset_count(1, 4), 4);
        assert_eq!(multiset_count(2, 2), 3);
        assert_eq!(multiset_count(3, 3), 10); // C(5, 2)
        assert_eq!(multiset_count(4, 3), 15); // C(6, 2)
        assert_eq!(multiset_count(0, 0), 1);
        assert_eq!(multiset_count(2, 0), 0);
    }

    #[test]
    fn quotient_counts_and_ranks_are_consistent() {
        let quotient = SubchainQuotient::new(3, 3);
        assert_eq!(quotient.flat_states(), 27);
        assert_eq!(quotient.blocks(), 10);

        // Every role vector maps into range, permutations share a block, and
        // all blocks are hit.
        let mut seen = vec![false; quotient.blocks()];
        for a in 0..3u8 {
            for b in 0..3u8 {
                for c in 0..3u8 {
                    let block = quotient.block_of(&[a, b, c]).unwrap();
                    assert!(block < quotient.blocks());
                    assert_eq!(block, quotient.block_of(&[c, a, b]).unwrap());
                    seen[block] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));

        assert_eq!(quotient.block_of(&[0, 0]), None);
        assert_eq!(quotient.block_of(&[0, 0, 9]), None);
    }

    #[test]
    fn distinct_multisets_get_distinct_blocks() {
        let quotient = SubchainQuotient::new(2, 3);
        let mut blocks = std::collections::BTreeSet::new();
        for a in 0..3u8 {
            for b in a..3u8 {
                blocks.insert(quotient.block_of(&[a, b]).unwrap());
            }
        }
        assert_eq!(blocks.len(), quotient.blocks());
    }
}
