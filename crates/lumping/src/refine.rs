//! The partition-refinement core.

use std::collections::{HashMap, VecDeque};

use ctmc::Ctmc;

use crate::error::LumpError;
use crate::partition::InitialPartition;
use crate::quotient::LumpedCtmc;

/// Computes the coarsest ordinarily-lumpable partition of `chain` refining
/// `initial`, and returns the quotient chain with its block ↔ state maps.
///
/// See the crate-level documentation for the algorithm. The result is exact:
/// states end up in the same block only if they carry the same initial class
/// and have bit-identical cumulative rates into every other block (per-state
/// contributions are sorted before summation, so symmetric states cannot be
/// separated by floating-point rounding).
///
/// # Errors
///
/// Returns [`LumpError::DimensionMismatch`] if `initial` covers a different
/// number of states than `chain`, and propagates quotient-construction errors.
pub fn lump(chain: &Ctmc, initial: &InitialPartition) -> Result<LumpedCtmc, LumpError> {
    let n = chain.num_states();
    if initial.num_states() != n {
        return Err(LumpError::DimensionMismatch {
            expected: n,
            actual: initial.num_states(),
        });
    }

    // Transposed rate matrix: predecessors[u] lists every (s, R(s, u)).
    let mut predecessors: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let rates = chain.rate_matrix();
    for s in 0..n {
        let (cols, values) = rates.row(s);
        for (&u, &r) in cols.iter().zip(values.iter()) {
            predecessors[u].push((s as u32, r));
        }
    }

    let mut partition = Refiner::new(initial);
    let mut worklist: VecDeque<usize> = (0..partition.blocks.len()).collect();

    // Scratch: per-state rate contributions w.r.t. the current splitter. A
    // state is "touched" iff its contribution list is non-empty.
    let mut contributions: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut touched: Vec<u32> = Vec::new();

    while let Some(splitter) = worklist.pop_front() {
        let members = partition.blocks[splitter].clone();

        // States outside the splitter are weighted by their cumulative rate
        // into it, collected over the transposed edges.
        for &u in &members {
            for &(s, r) in &predecessors[u as usize] {
                if partition.block_of[s as usize] == splitter {
                    continue; // members are weighted by their external rate below
                }
                if contributions[s as usize].is_empty() {
                    touched.push(s);
                }
                contributions[s as usize].push(r);
            }
        }
        // Members of the splitter are weighted by (minus) their cumulative
        // rate *out of* it — generator semantics: w(s, C) = R(s, C) − E(s)
        // for s ∈ C equals −(rate leaving C). Computing the external sum
        // directly (instead of cancelling R against E) keeps the weights of
        // symmetric states bit-identical. Ordinary lumpability does not
        // constrain intra-block rates, so this — not the raw rate into C — is
        // what may split the splitter's own block.
        for &u in &members {
            let (cols, values) = rates.row(u as usize);
            for (&v, &r) in cols.iter().zip(values.iter()) {
                if partition.block_of[v] != splitter {
                    if contributions[u as usize].is_empty() {
                        touched.push(u);
                    }
                    contributions[u as usize].push(r);
                }
            }
        }
        if touched.is_empty() {
            continue;
        }

        // Group the touched states by their current block.
        let mut touched_by_block: HashMap<usize, Vec<u32>> = HashMap::new();
        for &s in &touched {
            touched_by_block
                .entry(partition.block_of[s as usize])
                .or_default()
                .push(s);
        }

        for (block, touched_states) in touched_by_block {
            // Subgroups of equal weight. Contributions are sorted before
            // summation so equal multisets give equal bits; splitter members
            // carry the negative sign of the generator diagonal.
            let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();
            for &s in &touched_states {
                let list = &mut contributions[s as usize];
                list.sort_by(|a, b| a.total_cmp(b));
                let mut weight: f64 = list.iter().sum();
                if block == splitter {
                    weight = -weight;
                }
                groups.entry((weight + 0.0).to_bits()).or_default().push(s);
            }
            if groups.len() == 1 && touched_states.len() == partition.blocks[block].len() {
                continue; // every member sees the same weight: no split
            }

            // Move the touched states out; the untouched residue (implicit
            // weight zero) stays behind under the parent id. This keeps the
            // split cost proportional to the touched states, not the block.
            for &s in &touched_states {
                partition.remove_from_block(s);
            }
            // Deterministic subblock order regardless of hash-map iteration.
            let mut ordered: Vec<(u64, Vec<u32>)> = groups.into_iter().collect();
            ordered.sort_by(|a, b| f64::from_bits(a.0).total_cmp(&f64::from_bits(b.0)));
            let subblocks: Vec<Vec<u32>> = ordered.into_iter().map(|(_, states)| states).collect();

            // The largest child keeps the parent id (and, when the parent was
            // pending, its worklist slot); every other child joins the
            // worklist — Hopcroft's "all but the largest" rule.
            let residue_len = partition.blocks[block].len();
            let (largest, largest_len) = subblocks
                .iter()
                .enumerate()
                .map(|(index, sub)| (index, sub.len()))
                .max_by_key(|&(index, len)| (len, std::cmp::Reverse(index)))
                .expect("a split has at least one weight group");
            if residue_len >= largest_len {
                // The residue keeps the parent id; all groups are new blocks.
                for sub in subblocks {
                    worklist.push_back(partition.add_block(sub));
                }
            } else {
                let residue = std::mem::take(&mut partition.blocks[block]);
                for (index, sub) in subblocks.into_iter().enumerate() {
                    if index == largest {
                        partition.place_into_block(block, sub);
                    } else {
                        worklist.push_back(partition.add_block(sub));
                    }
                }
                if !residue.is_empty() {
                    worklist.push_back(partition.add_block(residue));
                }
            }
        }

        for &s in &touched {
            contributions[s as usize].clear();
        }
        touched.clear();
    }

    LumpedCtmc::build(chain, partition.block_of, partition.blocks)
}

/// The refinable partition: member lists plus per-state block id and position,
/// so states move between blocks in O(1).
struct Refiner {
    blocks: Vec<Vec<u32>>,
    block_of: Vec<usize>,
    /// Index of each state within its block's member list.
    position: Vec<u32>,
}

impl Refiner {
    fn new(initial: &InitialPartition) -> Self {
        let n = initial.num_states();
        let mut blocks: Vec<Vec<u32>> = vec![Vec::new(); initial.num_classes()];
        let mut position = vec![0u32; n];
        for (s, &class) in initial.classes().iter().enumerate() {
            position[s] = blocks[class].len() as u32;
            blocks[class].push(s as u32);
        }
        Refiner {
            blocks,
            block_of: initial.classes().to_vec(),
            position,
        }
    }

    /// Swap-removes a state from its block's member list.
    fn remove_from_block(&mut self, state: u32) {
        let block = self.block_of[state as usize];
        let index = self.position[state as usize] as usize;
        let last = self.blocks[block].pop().expect("state is in its block");
        if last != state {
            self.blocks[block][index] = last;
            self.position[last as usize] = index as u32;
        }
    }

    /// Installs `members` (previously removed) as a brand-new block.
    fn add_block(&mut self, members: Vec<u32>) -> usize {
        let id = self.blocks.len();
        self.place(&members, id);
        self.blocks.push(members);
        id
    }

    /// Installs `members` (previously removed) under an existing, empty id.
    fn place_into_block(&mut self, id: usize, members: Vec<u32>) {
        debug_assert!(self.blocks[id].is_empty());
        self.place(&members, id);
        self.blocks[id] = members;
    }

    fn place(&mut self, members: &[u32], id: usize) {
        for (index, &s) in members.iter().enumerate() {
            self.block_of[s as usize] = id;
            self.position[s as usize] = index as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use ctmc::CtmcBuilder;

    use super::*;

    /// `k` independent identical two-state components in parallel: the flat
    /// chain has 2^k states; separating the all-up state refines to the k+1
    /// "number of failed components" birth–death blocks.
    fn parallel_components(k: usize, fail: f64, repair: f64) -> Ctmc {
        let n = 1usize << k;
        let mut builder = CtmcBuilder::new(n);
        for state in 0..n {
            for bit in 0..k {
                let flipped = state ^ (1 << bit);
                if state & (1 << bit) == 0 {
                    builder.add_transition(state, flipped, fail).unwrap();
                } else {
                    builder.add_transition(state, flipped, repair).unwrap();
                }
            }
        }
        builder.set_initial_state(0).unwrap();
        builder.build().unwrap()
    }

    fn all_up_partition(k: usize) -> InitialPartition {
        let n = 1usize << k;
        let mut initial = InitialPartition::trivial(n);
        let mask: Vec<bool> = (0..n).map(|state| state == 0).collect();
        initial.refine_by_bools(&mask).unwrap();
        initial
    }

    #[test]
    fn symmetric_components_lump_to_a_birth_death_chain() {
        for k in 1..=6 {
            let chain = parallel_components(k, 0.01, 2.0);
            let lumped = lump(&chain, &all_up_partition(k)).unwrap();
            assert_eq!(lumped.num_blocks(), k + 1, "k = {k}");
            lumped.verify(&chain, 0.0).unwrap();
            // Block membership is the popcount.
            for state in 0..chain.num_states() {
                for other in 0..chain.num_states() {
                    let same = state.count_ones() == other.count_ones();
                    assert_eq!(lumped.block_of(state) == lumped.block_of(other), same);
                }
            }
        }
    }

    #[test]
    fn trivial_partition_collapses_any_chain_to_one_block() {
        // With no initial distinctions nothing constrains the aggregation:
        // ordinary lumpability only restricts rates into *other* blocks, so
        // the coarsest partition is a single block — even for asymmetric
        // rates. (The old engine over-split here by weighing intra-block
        // rates.)
        let mut builder = CtmcBuilder::new(2);
        builder.add_transition(0, 1, 1.0).unwrap();
        builder.add_transition(1, 0, 2.0).unwrap();
        let chain = builder.build().unwrap();
        let lumped = lump(&chain, &InitialPartition::trivial(2)).unwrap();
        assert_eq!(lumped.num_blocks(), 1);
        lumped.verify(&chain, 0.0).unwrap();

        let chain = parallel_components(3, 0.5, 4.0);
        let lumped = lump(&chain, &InitialPartition::trivial(8)).unwrap();
        assert_eq!(lumped.num_blocks(), 1);
        lumped.verify(&chain, 0.0).unwrap();
    }

    #[test]
    fn quotient_rates_aggregate_the_flat_rates() {
        let chain = parallel_components(3, 0.5, 4.0);
        let lumped = lump(&chain, &all_up_partition(3)).unwrap();
        assert_eq!(lumped.num_blocks(), 4);
        let quotient = lumped.quotient();
        // From "0 failed" there are 3 ways to fail one component.
        let b0 = lumped.block_of(0b000);
        let b1 = lumped.block_of(0b001);
        assert!((quotient.rate_matrix().get(b0, b1) - 3.0 * 0.5).abs() < 1e-15);
        // From "1 failed": repair back at rate 4, fail another at 2 * 0.5.
        let b2 = lumped.block_of(0b011);
        assert!((quotient.rate_matrix().get(b1, b0) - 4.0).abs() < 1e-15);
        assert!((quotient.rate_matrix().get(b1, b2) - 2.0 * 0.5).abs() < 1e-15);
    }

    #[test]
    fn initial_partition_distinctions_are_preserved() {
        let chain = parallel_components(2, 0.1, 1.0);
        // Separate state 0b01 from 0b10 artificially: no merge may cross it.
        let mut initial = InitialPartition::trivial(4);
        initial
            .refine_by_bools(&[false, true, false, false])
            .unwrap();
        let lumped = lump(&chain, &initial).unwrap();
        assert_eq!(
            lumped.num_blocks(),
            4,
            "splitting one symmetric state splits its twin too"
        );
        lumped.verify(&chain, 0.0).unwrap();
    }

    #[test]
    fn asymmetric_rates_prevent_lumping() {
        // Two components with different failure rates; the all-up state is
        // distinguished (as the composer's labels always do).
        let mut builder = CtmcBuilder::new(4);
        builder.add_transition(0b00, 0b01, 0.1).unwrap();
        builder.add_transition(0b00, 0b10, 0.2).unwrap();
        builder.add_transition(0b01, 0b00, 1.0).unwrap();
        builder.add_transition(0b10, 0b00, 1.0).unwrap();
        builder.add_transition(0b01, 0b11, 0.2).unwrap();
        builder.add_transition(0b10, 0b11, 0.1).unwrap();
        builder.add_transition(0b11, 0b01, 1.0).unwrap();
        builder.add_transition(0b11, 0b10, 1.0).unwrap();
        let chain = builder.build().unwrap();
        let mut initial = InitialPartition::trivial(4);
        initial
            .refine_by_bools(&[true, false, false, false])
            .unwrap();
        let lumped = lump(&chain, &initial).unwrap();
        // 0b01 and 0b10 reach the fully-failed state 0b11 with different
        // rates (0.2 vs 0.1), so they must stay apart.
        assert_eq!(lumped.num_blocks(), 4);
        lumped.verify(&chain, 0.0).unwrap();
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let chain = parallel_components(2, 0.1, 1.0);
        let initial = InitialPartition::trivial(3);
        assert!(matches!(
            lump(&chain, &initial),
            Err(LumpError::DimensionMismatch {
                expected: 4,
                actual: 3
            })
        ));
    }
}
