//! The product of quotients: lumped CTMCs as composable components.
//!
//! The paper's facility is two *independent* process lines; its joint chain
//! is the Kronecker sum of the per-line generators. Because each line is
//! already lumped to its coarsest quotient, the joint chain of the facility
//! is the product of the per-line *quotients* — Line 1 × Line 2 under FRF-1
//! is 449 × 257 ≈ 115k blocks instead of 111,809 × 8129 ≈ 9×10⁸ flat states.
//! This module makes that product a first-class object:
//!
//! * joint states are **tuples of block ids** (mixed-radix encoded, factor 0
//!   most significant);
//! * the joint generator is the **Kronecker sum** `Q = ⊕ᵢ Qᵢ`: exactly one
//!   factor moves per transition, at its local rate;
//! * the joint initial distribution, labels and reward vectors are
//!   **cylinder extensions** of the per-factor data (products of masks,
//!   sums of additive rewards);
//! * the chain is available **materialised** ([`QuotientProduct::materialize`],
//!   joint rows enumerated across the shared worker pool in index order, so
//!   states, transitions and rates are bit-identical for every thread count)
//!   or **matrix-free** ([`QuotientProduct::operator`], a [`KroneckerSum`]
//!   implementing [`LinearOperator`] so the exec SpMV kernels can run without
//!   ever storing the joint matrix).
//!
//! This is the Plateau/Buchholz structured-composition idea (stochastic
//! automata networks, structured lumping) specialised to factors that are
//! themselves quotients produced by this crate.

use std::collections::HashMap;

use arcade_symmetry::chain::group_identical_chains;
use arcade_symmetry::orbit::FactorClasses;
use ctmc::exec::{self, ExecOptions};
use ctmc::ops::LinearOperator;
use ctmc::{Ctmc, CtmcBuilder, CtmcError, RewardStructure, SparseMatrix};

use crate::error::LumpError;
use crate::quotient::LumpedCtmc;

/// The product of `N` quotient chains: tuple states, Kronecker-sum generator.
///
/// Factors are identified by unique names; the joint index of a block tuple
/// `(t₀, …, t_{N−1})` is the mixed-radix number with factor 0 most
/// significant, so iterating joint indices enumerates tuples in
/// lexicographic order.
#[derive(Debug, Clone)]
pub struct QuotientProduct {
    names: Vec<String>,
    factors: Vec<Ctmc>,
    /// Transposed factor rate matrices (incoming transitions), precomputed
    /// for the matrix-free left-multiply kernel.
    transposed: Vec<SparseMatrix>,
    /// `strides[i]` = product of the factor sizes right of `i`.
    strides: Vec<usize>,
    num_states: usize,
}

impl QuotientProduct {
    /// Builds the product of named lumped quotients (the factor order is the
    /// tuple order).
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::InvalidProduct`] for an empty factor list,
    /// duplicate or empty names, or a joint state count that overflows.
    pub fn new(factors: Vec<(String, &LumpedCtmc)>) -> Result<Self, LumpError> {
        Self::from_chains(
            factors
                .into_iter()
                .map(|(name, lumped)| (name, lumped.quotient().clone()))
                .collect(),
        )
    }

    /// Builds the product from already-extracted factor chains. The factors
    /// are typically quotients, but any labelled CTMC composes; per-factor
    /// chains are small (that is the point of lumping first), so they are
    /// stored by value.
    ///
    /// # Errors
    ///
    /// See [`QuotientProduct::new`].
    pub fn from_chains(factors: Vec<(String, Ctmc)>) -> Result<Self, LumpError> {
        if factors.is_empty() {
            return Err(LumpError::InvalidProduct {
                reason: "a product needs at least one factor".to_string(),
            });
        }
        let mut names = Vec::with_capacity(factors.len());
        let mut chains = Vec::with_capacity(factors.len());
        for (name, chain) in factors {
            if name.is_empty() {
                return Err(LumpError::InvalidProduct {
                    reason: "factor names must be non-empty".to_string(),
                });
            }
            if names.contains(&name) {
                return Err(LumpError::InvalidProduct {
                    reason: format!("duplicate factor name `{name}`"),
                });
            }
            if chain.num_states() == 0 {
                return Err(LumpError::InvalidProduct {
                    reason: format!("factor `{name}` has no states"),
                });
            }
            names.push(name);
            chains.push(chain);
        }
        let mut num_states: usize = 1;
        for chain in &chains {
            num_states = num_states.checked_mul(chain.num_states()).ok_or_else(|| {
                LumpError::InvalidProduct {
                    reason: "joint state count overflows usize".to_string(),
                }
            })?;
        }
        let mut strides = vec![1usize; chains.len()];
        for i in (0..chains.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * chains[i + 1].num_states();
        }
        let transposed = chains
            .iter()
            .map(|chain| chain.rate_matrix().transpose())
            .collect();
        Ok(QuotientProduct {
            names,
            factors: chains,
            transposed,
            strides,
            num_states,
        })
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// The factor names, in tuple order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// A factor's quotient chain.
    pub fn factor(&self, index: usize) -> &Ctmc {
        &self.factors[index]
    }

    /// Number of joint states: the product of the factor sizes.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of joint transitions of the Kronecker sum:
    /// `Σᵢ Tᵢ · Πⱼ≠ᵢ nⱼ` (each factor transition occurs once per context of
    /// the other factors).
    pub fn num_transitions(&self) -> usize {
        self.factors
            .iter()
            .map(|chain| {
                chain
                    .num_transitions()
                    .saturating_mul(self.num_states / chain.num_states())
            })
            .fold(0usize, usize::saturating_add)
    }

    /// The joint index of a block tuple; `None` if the tuple has the wrong
    /// arity or an out-of-range block.
    pub fn index_of(&self, tuple: &[usize]) -> Option<usize> {
        if tuple.len() != self.factors.len() {
            return None;
        }
        let mut index = 0usize;
        for ((&block, chain), &stride) in tuple
            .iter()
            .zip(self.factors.iter())
            .zip(self.strides.iter())
        {
            if block >= chain.num_states() {
                return None;
            }
            index += block * stride;
        }
        Some(index)
    }

    /// The block tuple of a joint index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_states()`.
    pub fn tuple_of(&self, index: usize) -> Vec<usize> {
        assert!(index < self.num_states, "joint index out of range");
        self.strides
            .iter()
            .zip(self.factors.iter())
            .map(|(&stride, chain)| (index / stride) % chain.num_states())
            .collect()
    }

    /// Cylinder extension of a per-factor-state mask to the joint states:
    /// `joint[s] = mask[tupleᵢ(s)]`.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::DimensionMismatch`] on a length mismatch and
    /// [`LumpError::InvalidProduct`] for an unknown factor index.
    pub fn expand_mask(&self, factor: usize, mask: &[bool]) -> Result<Vec<bool>, LumpError> {
        let values: Vec<f64> = mask.iter().map(|&b| f64::from(u8::from(b))).collect();
        Ok(self
            .expand_values(factor, &values)?
            .into_iter()
            .map(|v| v != 0.0)
            .collect())
    }

    /// Cylinder extension of per-factor-state values to the joint states:
    /// `joint[s] = values[tupleᵢ(s)]`.
    ///
    /// # Errors
    ///
    /// See [`QuotientProduct::expand_mask`].
    pub fn expand_values(&self, factor: usize, values: &[f64]) -> Result<Vec<f64>, LumpError> {
        let chain = self
            .factors
            .get(factor)
            .ok_or_else(|| LumpError::InvalidProduct {
                reason: format!("unknown factor index {factor}"),
            })?;
        if values.len() != chain.num_states() {
            return Err(LumpError::DimensionMismatch {
                expected: chain.num_states(),
                actual: values.len(),
            });
        }
        let stride = self.strides[factor];
        let mut out = Vec::with_capacity(self.num_states);
        for s in 0..self.num_states {
            out.push(values[(s / stride) % chain.num_states()]);
        }
        Ok(out)
    }

    /// The outer product of per-factor distributions (or of any per-factor
    /// vectors): `joint[s] = Πᵢ perᵢ[tupleᵢ(s)]`. With the factor stationary
    /// distributions as input this is the joint stationary distribution of
    /// the Kronecker sum — the product form independence buys.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::InvalidProduct`] for a wrong number of vectors
    /// and [`LumpError::DimensionMismatch`] on a length mismatch.
    pub fn product_distribution(&self, per_factor: &[Vec<f64>]) -> Result<Vec<f64>, LumpError> {
        if per_factor.len() != self.factors.len() {
            return Err(LumpError::InvalidProduct {
                reason: format!(
                    "expected {} per-factor vectors, got {}",
                    self.factors.len(),
                    per_factor.len()
                ),
            });
        }
        for (vector, chain) in per_factor.iter().zip(self.factors.iter()) {
            if vector.len() != chain.num_states() {
                return Err(LumpError::DimensionMismatch {
                    expected: chain.num_states(),
                    actual: vector.len(),
                });
            }
        }
        let mut out = Vec::with_capacity(self.num_states);
        for s in 0..self.num_states {
            let mut value = 1.0;
            for ((vector, chain), &stride) in per_factor
                .iter()
                .zip(self.factors.iter())
                .zip(self.strides.iter())
            {
                value *= vector[(s / stride) % chain.num_states()];
            }
            out.push(value);
        }
        Ok(out)
    }

    /// The marginal of a joint distribution on one factor:
    /// `marginalᵢ[b] = Σ_{s: tupleᵢ(s)=b} joint[s]`, accumulated in joint
    /// index order.
    ///
    /// # Errors
    ///
    /// See [`QuotientProduct::expand_mask`].
    pub fn marginal(&self, factor: usize, joint: &[f64]) -> Result<Vec<f64>, LumpError> {
        let chain = self
            .factors
            .get(factor)
            .ok_or_else(|| LumpError::InvalidProduct {
                reason: format!("unknown factor index {factor}"),
            })?;
        if joint.len() != self.num_states {
            return Err(LumpError::DimensionMismatch {
                expected: self.num_states,
                actual: joint.len(),
            });
        }
        let stride = self.strides[factor];
        let mut out = vec![0.0; chain.num_states()];
        for (s, &p) in joint.iter().enumerate() {
            out[(s / stride) % chain.num_states()] += p;
        }
        Ok(out)
    }

    /// Sums per-factor reward rates into the joint reward structure
    /// `joint[s] = Σᵢ rewardsᵢ[tupleᵢ(s)]` — additive rewards (costs) of
    /// independent subsystems add. Factors without a reward contribute zero.
    ///
    /// The per-state contributions are sorted by value before summation, so
    /// joint states whose contributions form the same *multiset* get
    /// bit-identical sums — in particular, tuples related by a permutation
    /// of interchangeable factors, which keeps summed rewards exactly
    /// constant on [`ProductOrbit`] orbits for any factor count (floating
    /// point addition does not commute across more than two summands
    /// otherwise).
    ///
    /// # Errors
    ///
    /// Propagates length mismatches; see [`QuotientProduct::expand_mask`].
    pub fn sum_rewards(
        &self,
        name: &str,
        per_factor: &[Option<&RewardStructure>],
    ) -> Result<RewardStructure, LumpError> {
        if per_factor.len() != self.factors.len() {
            return Err(LumpError::InvalidProduct {
                reason: format!(
                    "expected {} per-factor rewards, got {}",
                    self.factors.len(),
                    per_factor.len()
                ),
            });
        }
        for (factor, rewards) in per_factor.iter().enumerate() {
            if let Some(rewards) = rewards {
                let chain = &self.factors[factor];
                if rewards.state_rewards().len() != chain.num_states() {
                    return Err(LumpError::DimensionMismatch {
                        expected: chain.num_states(),
                        actual: rewards.state_rewards().len(),
                    });
                }
            }
        }
        let mut joint = Vec::with_capacity(self.num_states);
        let mut contributions = Vec::with_capacity(self.factors.len());
        for s in 0..self.num_states {
            contributions.clear();
            for (factor, rewards) in per_factor.iter().enumerate() {
                if let Some(rewards) = rewards {
                    let chain = &self.factors[factor];
                    let local = (s / self.strides[factor]) % chain.num_states();
                    contributions.push(rewards.state_rewards()[local]);
                }
            }
            contributions.sort_by(f64::total_cmp);
            joint.push(contributions.iter().sum::<f64>());
        }
        Ok(RewardStructure::new(name, joint)?)
    }

    /// The joint exit rate of every state: `E(s) = Σᵢ Eᵢ(tupleᵢ(s))`.
    pub fn exit_rates(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.num_states];
        for (factor, chain) in self.factors.iter().enumerate() {
            let stride = self.strides[factor];
            let exits = chain.exit_rates();
            for (s, slot) in out.iter_mut().enumerate() {
                *slot += exits[(s / stride) % chain.num_states()];
            }
        }
        out
    }

    /// The matrix-free Kronecker-sum operator over this product's factors,
    /// ready for the exec SpMV kernels.
    pub fn operator(&self) -> KroneckerSum<'_> {
        KroneckerSum {
            factors: &self.factors,
            transposed: &self.transposed,
            strides: &self.strides,
            num_states: self.num_states,
        }
    }

    /// Maximum absolute balance-equation residual of a candidate stationary
    /// vector against the *joint* chain, computed matrix-free through the
    /// Kronecker-sum operator: `max_s |(π R)ₛ − πₛ E(s)|`. A tiny residual
    /// certifies that `π` is stationary for the genuine joint chain without
    /// materialising it.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the operator kernels.
    pub fn balance_residual(&self, pi: &[f64], exec: &ExecOptions) -> Result<f64, LumpError> {
        let mut inflow = vec![0.0; self.num_states];
        self.operator().left_multiply_exec(pi, &mut inflow, exec)?;
        let exits = self.exit_rates();
        let shards = exec::shard_ranges(
            self.num_states,
            exec.workers_for(self.num_transitions())
                .min(self.num_states),
        );
        Ok(exec::map_ordered(&shards, *exec, |range| {
            let mut max_res: f64 = 0.0;
            for s in range.clone() {
                max_res = max_res.max((inflow[s] - pi[s] * exits[s]).abs());
            }
            max_res
        })
        .into_iter()
        .fold(0.0, f64::max))
    }

    /// Materialises the joint chain.
    ///
    /// Joint rows are enumerated in index order, sharded across the worker
    /// pool (each worker generates the transitions of a contiguous row range;
    /// the shards are then appended in range order), so the resulting states,
    /// transition order and rates are bit-identical for every thread count —
    /// the same contract as the composer's sharded frontier. The initial
    /// distribution is the product of the factor initials, and every factor
    /// label is attached as its cylinder extension under the name
    /// `{factor}/{label}`.
    ///
    /// # Errors
    ///
    /// Propagates chain-construction errors.
    pub fn materialize(&self, exec: &ExecOptions) -> Result<Ctmc, LumpError> {
        let mut builder = CtmcBuilder::new(self.num_states);

        // Generate each row shard's transition triplets on the worker pool.
        let workers = exec
            .workers_for(self.num_transitions())
            .min(self.num_states.max(1));
        let shards = exec::shard_ranges(self.num_states, workers);
        let triplet_shards: Vec<Vec<(usize, usize, f64)>> =
            exec::map_ordered(&shards, *exec, |range| {
                let mut triplets = Vec::new();
                for s in range.clone() {
                    for (factor, chain) in self.factors.iter().enumerate() {
                        let stride = self.strides[factor];
                        let local = (s / stride) % chain.num_states();
                        let (cols, values) = chain.rate_matrix().row(local);
                        for (&target, &rate) in cols.iter().zip(values.iter()) {
                            let neighbor = s + (target * stride) - (local * stride);
                            triplets.push((s, neighbor, rate));
                        }
                    }
                }
                triplets
            });
        for triplets in triplet_shards {
            for (from, to, rate) in triplets {
                builder.add_transition(from, to, rate)?;
            }
        }

        let initial = self.product_distribution(
            &self
                .factors
                .iter()
                .map(|chain| chain.initial_distribution().to_vec())
                .collect::<Vec<_>>(),
        )?;
        builder.set_initial_distribution(initial)?;

        for (factor, (name, chain)) in self.names.iter().zip(self.factors.iter()).enumerate() {
            let labels: Vec<String> = chain.label_names().map(str::to_string).collect();
            for label in labels {
                let mask = chain.label(&label).expect("name came from the chain");
                let joint = self.expand_mask(factor, mask)?;
                builder.add_label_mask(format!("{name}/{label}"), joint)?;
            }
        }

        Ok(builder.build()?)
    }

    /// Partitions the factors into interchangeability classes: factors whose
    /// quotient chains have **identical presentations** (same states in the
    /// same order, same transitions and rates, same initials and labels —
    /// what the deterministic composer produces for isomorphic models) share
    /// a class id, assigned in first-appearance order.
    pub fn factor_classes(&self) -> Vec<usize> {
        let chains: Vec<&Ctmc> = self.factors.iter().collect();
        group_identical_chains(&chains)
    }

    /// The sorted-tuple orbit quotient of this product, or `None` when no
    /// two factors are interchangeable. Exchanging the coordinates of an
    /// interchangeability class is an automorphism of the Kronecker sum, so
    /// the orbit partition is ordinarily lumpable: every class-symmetric
    /// measure solved on orbit representatives equals the unreduced product
    /// exactly. Two identical factors of `n` blocks fold `n²` tuples to
    /// `n(n+1)/2` orbits — the promised halving — **before** the joint chain
    /// is ever materialised.
    pub fn orbit(&self) -> Option<ProductOrbit> {
        let classes = FactorClasses::new(
            self.factor_classes(),
            self.factors.iter().map(Ctmc::num_states).collect(),
        )
        .expect("factors of one class are identical, so sizes match");
        if !classes.has_symmetry() {
            return None;
        }
        let mut representatives = Vec::with_capacity(classes.num_orbits());
        let mut orbit_index: HashMap<usize, usize> = HashMap::with_capacity(classes.num_orbits());
        let mut orbit_sizes = Vec::with_capacity(classes.num_orbits());
        for joint in 0..self.num_states {
            let tuple = self.tuple_of(joint);
            if classes.is_canonical(&tuple) {
                orbit_index.insert(joint, representatives.len());
                orbit_sizes.push(classes.orbit_size(&tuple));
                representatives.push(joint);
            }
        }
        // The dense joint → orbit table: every projection, expansion and
        // materialisation pass scans all joint states (or transitions), so
        // the per-state canonicalisation is paid once here and every later
        // lookup is one array read.
        let orbit_of = (0..self.num_states)
            .map(|joint| {
                let mut tuple = self.tuple_of(joint);
                classes.canonicalize(&mut tuple);
                let representative = self
                    .index_of(&tuple)
                    .expect("canonical tuples stay in range");
                orbit_index[&representative]
            })
            .collect();
        Some(ProductOrbit {
            classes,
            representatives,
            orbit_of,
            orbit_sizes,
        })
    }
}

/// The orbit quotient of a [`QuotientProduct`] under the permutations of its
/// interchangeable factors: joint tuples folded to their sorted-tuple
/// representatives (see [`QuotientProduct::orbit`]).
///
/// All methods take the product they were derived from; passing a different
/// product yields dimension errors or nonsense, not unsoundness — the maps
/// are pure index arithmetic.
#[derive(Debug, Clone)]
pub struct ProductOrbit {
    classes: FactorClasses,
    /// Joint indices of the canonical representatives, ascending.
    representatives: Vec<usize>,
    /// The orbit id of every joint state (dense lookup table).
    orbit_of: Vec<usize>,
    /// Number of joint tuples in each orbit.
    orbit_sizes: Vec<usize>,
}

impl ProductOrbit {
    /// Number of orbits (= states of the orbit-quotient chain).
    pub fn num_orbits(&self) -> usize {
        self.representatives.len()
    }

    /// The interchangeability classes of the factors.
    pub fn classes(&self) -> &FactorClasses {
        &self.classes
    }

    /// The representative joint index of every orbit, ascending.
    pub fn representatives(&self) -> &[usize] {
        &self.representatives
    }

    /// Number of joint tuples in an orbit.
    pub fn orbit_size(&self, orbit: usize) -> usize {
        self.orbit_sizes[orbit]
    }

    /// The orbit of a joint state (one table read; the `product` parameter
    /// documents which product the indices refer to).
    ///
    /// # Panics
    ///
    /// Panics if `joint` is out of range for the product.
    pub fn orbit_of(&self, product: &QuotientProduct, joint: usize) -> usize {
        debug_assert_eq!(product.num_states(), self.orbit_of.len());
        self.orbit_of[joint]
    }

    /// Projects a joint mask onto the orbits.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::NotBlockConstant`] when the mask distinguishes
    /// two tuples of one orbit (the measure is not class-symmetric — solve
    /// it on the unreduced product instead) and
    /// [`LumpError::DimensionMismatch`] on a length mismatch.
    pub fn project_mask(
        &self,
        product: &QuotientProduct,
        mask: &[bool],
    ) -> Result<Vec<bool>, LumpError> {
        let values: Vec<f64> = mask.iter().map(|&b| f64::from(u8::from(b))).collect();
        Ok(self
            .project_values(product, &values)?
            .into_iter()
            .map(|v| v != 0.0)
            .collect())
    }

    /// Projects orbit-constant joint values onto the orbits.
    ///
    /// # Errors
    ///
    /// See [`ProductOrbit::project_mask`].
    pub fn project_values(
        &self,
        product: &QuotientProduct,
        values: &[f64],
    ) -> Result<Vec<f64>, LumpError> {
        if values.len() != product.num_states() {
            return Err(LumpError::DimensionMismatch {
                expected: product.num_states(),
                actual: values.len(),
            });
        }
        let out: Vec<f64> = self.representatives.iter().map(|&r| values[r]).collect();
        for (joint, &value) in values.iter().enumerate() {
            let orbit = self.orbit_of(product, joint);
            if out[orbit].to_bits() != value.to_bits() {
                return Err(LumpError::NotBlockConstant {
                    what: "joint values".to_string(),
                    block: orbit,
                });
            }
        }
        Ok(out)
    }

    /// Expands per-orbit forward quantities (transient probabilities of
    /// reaching a goal, expected rewards from a start state, CSL verdicts)
    /// back to the joint states: every tuple of an orbit carries its orbit's
    /// value.
    pub fn expand_values(&self, product: &QuotientProduct, orbit_values: &[f64]) -> Vec<f64> {
        (0..product.num_states())
            .map(|joint| orbit_values[self.orbit_of(product, joint)])
            .collect()
    }

    /// Aggregates a joint distribution onto the orbits.
    pub fn aggregate_distribution(&self, product: &QuotientProduct, joint: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_orbits()];
        for (state, &probability) in joint.iter().enumerate() {
            out[self.orbit_of(product, state)] += probability;
        }
        out
    }

    /// Expands an orbit distribution that is **invariant under the factor
    /// permutations** — any stationary distribution of the orbit chain is,
    /// because the permutations are automorphisms — uniformly over each
    /// orbit's tuples. The result satisfies the joint balance equations,
    /// which is what lets the matrix-free Kronecker residual certify an
    /// orbit-level solve against the unreduced product.
    pub fn expand_distribution(
        &self,
        product: &QuotientProduct,
        orbit_distribution: &[f64],
    ) -> Vec<f64> {
        (0..product.num_states())
            .map(|joint| {
                let orbit = self.orbit_of(product, joint);
                orbit_distribution[orbit] / self.orbit_sizes[orbit] as f64
            })
            .collect()
    }

    /// Materialises the orbit-quotient chain.
    ///
    /// Each orbit's row is read off its representative: the aggregate rate
    /// into a target orbit is the sum of the representative's Kronecker-sum
    /// rates into that orbit's tuples (constant across the orbit because the
    /// folded permutations are automorphisms). Rows are sharded over the
    /// worker pool in orbit order with a fixed per-row accumulation order
    /// (factors in tuple order, factor transitions in CSR order, targets in
    /// ascending orbit order), so the chain is bit-identical for every
    /// thread count. The initial distribution aggregates the product of the
    /// factor initials; every factor label is attached as its orbit-folded
    /// cylinder under `{factor}/{label}` when it is class-symmetric and
    /// dropped otherwise.
    ///
    /// # Errors
    ///
    /// Propagates chain-construction errors.
    pub fn materialize(
        &self,
        product: &QuotientProduct,
        exec: &ExecOptions,
    ) -> Result<Ctmc, LumpError> {
        let mut builder = CtmcBuilder::new(self.num_orbits());
        let workers = exec
            .workers_for(product.num_transitions())
            .min(self.num_orbits().max(1));
        let shards = exec::shard_ranges(self.num_orbits(), workers);
        let triplet_shards: Vec<Vec<(usize, usize, f64)>> =
            exec::map_ordered(&shards, *exec, |range| {
                let mut triplets = Vec::new();
                for orbit in range.clone() {
                    let source = self.representatives[orbit];
                    // (target orbit, rate) aggregated in ascending target
                    // order; within a target, rates add in factor-then-CSR
                    // encounter order.
                    let mut outgoing: std::collections::BTreeMap<usize, f64> =
                        std::collections::BTreeMap::new();
                    for (factor, chain) in product.factors.iter().enumerate() {
                        let stride = product.strides[factor];
                        let local = (source / stride) % chain.num_states();
                        let (cols, values) = chain.rate_matrix().row(local);
                        for (&target, &rate) in cols.iter().zip(values.iter()) {
                            let neighbor = source + (target * stride) - (local * stride);
                            let target_orbit = self.orbit_of(product, neighbor);
                            if target_orbit != orbit {
                                *outgoing.entry(target_orbit).or_insert(0.0) += rate;
                            }
                        }
                    }
                    for (target, rate) in outgoing {
                        triplets.push((orbit, target, rate));
                    }
                }
                triplets
            });
        for triplets in triplet_shards {
            for (from, to, rate) in triplets {
                builder.add_transition(from, to, rate)?;
            }
        }

        let joint_initial = product.product_distribution(
            &product
                .factors
                .iter()
                .map(|chain| chain.initial_distribution().to_vec())
                .collect::<Vec<_>>(),
        )?;
        builder.set_initial_distribution(self.aggregate_distribution(product, &joint_initial))?;

        for (factor, (name, chain)) in product.names.iter().zip(product.factors.iter()).enumerate()
        {
            let labels: Vec<String> = chain.label_names().map(str::to_string).collect();
            for label in labels {
                let mask = chain.label(&label).expect("name came from the chain");
                let joint = product.expand_mask(factor, mask)?;
                if let Ok(orbit_mask) = self.project_mask(product, &joint) {
                    builder.add_label_mask(format!("{name}/{label}"), orbit_mask)?;
                }
            }
        }

        Ok(builder.build()?)
    }
}

/// The Kronecker sum `⊕ᵢ Rᵢ` of the factor rate matrices as a matrix-free
/// [`LinearOperator`]: SpMV against the joint chain without storing it.
///
/// Both kernels compute each output entry completely within one worker, in a
/// fixed accumulation order (factors in tuple order, factor transitions in
/// CSR order), so the results are bit-identical to the serial path for every
/// thread count — the same contract as the CSR exec kernels.
#[derive(Debug, Clone, Copy)]
pub struct KroneckerSum<'a> {
    factors: &'a [Ctmc],
    transposed: &'a [SparseMatrix],
    strides: &'a [usize],
    num_states: usize,
}

impl KroneckerSum<'_> {
    /// Shared kernel: `y[s] = Σᵢ Σ_{(c,v) ∈ matricesᵢ.row(tupleᵢ(s))}
    /// v · x[s with tupleᵢ ↦ c]`. With the factor rate matrices this is
    /// `y = A·x` (outgoing transitions); with the transposes it is `y = x·A`
    /// (incoming transitions). Rows are sharded contiguously; each output
    /// entry is accumulated by exactly one worker in factor-then-CSR order.
    fn multiply(
        &self,
        matrices: &[&SparseMatrix],
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<(), CtmcError> {
        if x.len() != self.num_states {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states,
                actual: x.len(),
            });
        }
        if y.len() != self.num_states {
            return Err(CtmcError::DimensionMismatch {
                expected: self.num_states,
                actual: y.len(),
            });
        }
        let work: usize = matrices
            .iter()
            .zip(self.factors.iter())
            .map(|(m, chain)| {
                m.num_entries()
                    .saturating_mul(self.num_states / chain.num_states())
            })
            .fold(0usize, usize::saturating_add);
        let workers = exec.workers_for(work).min(self.num_states.max(1));
        let chunk = exec::chunk_len(self.num_states, workers);
        let compute = |start: usize, shard: &mut [f64]| {
            for (offset, slot) in shard.iter_mut().enumerate() {
                let s = start + offset;
                let mut acc = 0.0;
                for (factor, matrix) in matrices.iter().enumerate() {
                    let n = self.factors[factor].num_states();
                    let stride = self.strides[factor];
                    let local = (s / stride) % n;
                    let (cols, values) = matrix.row(local);
                    for (&c, &v) in cols.iter().zip(values.iter()) {
                        acc += v * x[s + c * stride - local * stride];
                    }
                }
                *slot = acc;
            }
        };
        if workers <= 1 {
            compute(0, y);
        } else {
            std::thread::scope(|scope| {
                for (i, shard) in y.chunks_mut(chunk).enumerate() {
                    let compute = &compute;
                    scope.spawn(move || compute(i * chunk, shard));
                }
            });
        }
        Ok(())
    }
}

impl LinearOperator for KroneckerSum<'_> {
    fn num_rows(&self) -> usize {
        self.num_states
    }

    fn num_cols(&self) -> usize {
        self.num_states
    }

    /// `y = x · (⊕ᵢ Rᵢ)`: every output entry gathers its *incoming*
    /// transitions through the transposed factor matrices.
    fn left_multiply_exec(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<(), CtmcError> {
        let matrices: Vec<&SparseMatrix> = self.transposed.iter().collect();
        self.multiply(&matrices, x, y, exec)
    }

    /// `y = (⊕ᵢ Rᵢ) · x`: every output entry gathers its *outgoing*
    /// transitions through the factor rate matrices.
    fn right_multiply_exec(
        &self,
        x: &[f64],
        y: &mut [f64],
        exec: &ExecOptions,
    ) -> Result<(), CtmcError> {
        let matrices: Vec<&SparseMatrix> = self
            .factors
            .iter()
            .map(|chain| chain.rate_matrix())
            .collect();
        self.multiply(&matrices, x, y, exec)
    }
}

#[cfg(test)]
mod tests {
    use ctmc::SteadyStateSolver;

    use super::*;

    /// A repairable two-state component: up (0) ⇄ down (1).
    fn component(lambda: f64, mu: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.add_transition(0, 1, lambda).unwrap();
        b.add_transition(1, 0, mu).unwrap();
        b.set_initial_state(0).unwrap();
        b.add_label_mask("up", vec![true, false]).unwrap();
        b.build().unwrap()
    }

    fn two_factor_product() -> QuotientProduct {
        QuotientProduct::from_chains(vec![
            ("a".to_string(), component(0.1, 1.0)),
            ("b".to_string(), component(0.5, 2.0)),
        ])
        .unwrap()
    }

    #[test]
    fn indices_and_tuples_round_trip() {
        let product = QuotientProduct::from_chains(vec![
            ("a".to_string(), component(0.1, 1.0)),
            ("b".to_string(), component(0.5, 2.0)),
            ("c".to_string(), component(0.2, 3.0)),
        ])
        .unwrap();
        assert_eq!(product.num_factors(), 3);
        assert_eq!(product.num_states(), 8);
        assert_eq!(product.num_transitions(), 3 * 2 * 4);
        for s in 0..product.num_states() {
            let tuple = product.tuple_of(s);
            assert_eq!(product.index_of(&tuple), Some(s));
        }
        // Factor 0 is most significant.
        assert_eq!(product.index_of(&[1, 0, 0]), Some(4));
        assert_eq!(product.index_of(&[0, 0, 1]), Some(1));
        assert_eq!(product.index_of(&[2, 0, 0]), None);
        assert_eq!(product.index_of(&[0, 0]), None);
    }

    #[test]
    fn invalid_products_are_rejected() {
        assert!(matches!(
            QuotientProduct::from_chains(Vec::new()),
            Err(LumpError::InvalidProduct { .. })
        ));
        assert!(matches!(
            QuotientProduct::from_chains(vec![
                ("x".to_string(), component(0.1, 1.0)),
                ("x".to_string(), component(0.1, 1.0)),
            ]),
            Err(LumpError::InvalidProduct { .. })
        ));
        assert!(matches!(
            QuotientProduct::from_chains(vec![(String::new(), component(0.1, 1.0))]),
            Err(LumpError::InvalidProduct { .. })
        ));
    }

    #[test]
    fn materialized_chain_matches_the_kronecker_sum() {
        let product = two_factor_product();
        let exec = ExecOptions::serial();
        let joint = product.materialize(&exec).unwrap();
        assert_eq!(joint.num_states(), 4);
        assert_eq!(joint.num_transitions(), product.num_transitions());

        // Rates: from (up, up) the chain fails either component at its rate.
        let rates = joint.rate_matrix();
        assert_eq!(rates.get(0, 2), 0.1); // a fails
        assert_eq!(rates.get(0, 1), 0.5); // b fails
        assert_eq!(rates.get(3, 1), 1.0); // a repaired
        assert_eq!(rates.get(3, 2), 2.0); // b repaired
        assert_eq!(rates.get(0, 3), 0.0); // no simultaneous moves

        // Labels are cylinder extensions under prefixed names.
        assert_eq!(
            joint.label("a/up").unwrap(),
            &[true, true, false, false][..]
        );
        assert_eq!(
            joint.label("b/up").unwrap(),
            &[true, false, true, false][..]
        );
        // Initial distribution is the product point mass.
        assert_eq!(joint.initial_distribution()[0], 1.0);
    }

    #[test]
    fn operator_kernels_match_the_materialized_matrix() {
        let product = two_factor_product();
        let serial = ExecOptions::serial();
        let joint = product.materialize(&serial).unwrap();
        let n = product.num_states();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();

        let mut left_reference = vec![0.0; n];
        joint
            .rate_matrix()
            .left_multiply(&x, &mut left_reference)
            .unwrap();
        let mut right_reference = vec![0.0; n];
        joint
            .rate_matrix()
            .right_multiply(&x, &mut right_reference)
            .unwrap();

        let op = product.operator();
        for threads in [1usize, 2, 4, 8] {
            let exec = ExecOptions::with_threads(threads);
            let mut y = vec![f64::NAN; n];
            op.left_multiply_exec(&x, &mut y, &exec).unwrap();
            for (got, want) in y.iter().zip(left_reference.iter()) {
                assert!((got - want).abs() < 1e-12, "left, {threads} threads");
            }
            let mut y = vec![f64::NAN; n];
            op.right_multiply_exec(&x, &mut y, &exec).unwrap();
            for (got, want) in y.iter().zip(right_reference.iter()) {
                assert!((got - want).abs() < 1e-12, "right, {threads} threads");
            }
        }
        let mut wrong = vec![0.0; n - 1];
        assert!(op.left_multiply_exec(&x, &mut wrong, &serial).is_err());
        assert!(op
            .right_multiply_exec(&x[..n - 1], &mut vec![0.0; n], &serial)
            .is_err());
    }

    #[test]
    fn product_of_stationary_distributions_is_stationary() {
        let product = two_factor_product();
        let exec = ExecOptions::serial();
        let marginals: Vec<Vec<f64>> = (0..2)
            .map(|i| SteadyStateSolver::new(product.factor(i)).solve().unwrap())
            .collect();
        let joint_guess = product.product_distribution(&marginals).unwrap();
        // The outer product satisfies the joint balance equations: the
        // matrix-free residual certifies it without materialising the chain.
        let residual = product.balance_residual(&joint_guess, &exec).unwrap();
        assert!(residual < 1e-12, "residual {residual}");

        // And it agrees with a genuine solve of the materialised joint chain.
        let joint = product.materialize(&exec).unwrap();
        let pi = SteadyStateSolver::new(&joint).solve().unwrap();
        for (a, b) in pi.iter().zip(joint_guess.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        // Marginalising the joint solve recovers the factor solutions.
        for (i, marginal) in marginals.iter().enumerate() {
            let recovered = product.marginal(i, &pi).unwrap();
            for (a, b) in recovered.iter().zip(marginal.iter()) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn masks_values_and_rewards_expand_as_cylinders() {
        let product = two_factor_product();
        let mask = product.expand_mask(1, &[true, false]).unwrap();
        assert_eq!(mask, vec![true, false, true, false]);
        let values = product.expand_values(0, &[3.0, 7.0]).unwrap();
        assert_eq!(values, vec![3.0, 3.0, 7.0, 7.0]);
        assert!(product.expand_mask(0, &[true]).is_err());
        assert!(product.expand_values(5, &[1.0, 2.0]).is_err());

        let ra = RewardStructure::new("cost", vec![0.0, 3.0]).unwrap();
        let rb = RewardStructure::new("cost", vec![1.0, 4.0]).unwrap();
        let joint = product
            .sum_rewards("cost", &[Some(&ra), Some(&rb)])
            .unwrap();
        assert_eq!(joint.state_rewards(), &[1.0, 4.0, 4.0, 7.0][..]);
        let only_a = product.sum_rewards("cost", &[Some(&ra), None]).unwrap();
        assert_eq!(only_a.state_rewards(), &[0.0, 0.0, 3.0, 3.0][..]);

        let exits = product.exit_rates();
        assert_eq!(exits, vec![0.6, 2.1, 1.5, 3.0]);
    }

    #[test]
    fn orbit_folds_identical_factors_and_matches_the_full_product() {
        // Two identical components and one odd one: classes {0, 0, 1},
        // 2·2·3 = 12 tuples fold to 3·3 = 9 orbits.
        let mut odd = CtmcBuilder::new(3);
        odd.add_transition(0, 1, 0.3).unwrap();
        odd.add_transition(1, 2, 0.7).unwrap();
        odd.add_transition(2, 0, 1.5).unwrap();
        odd.set_initial_state(0).unwrap();
        let product = QuotientProduct::from_chains(vec![
            ("a".to_string(), component(0.1, 1.0)),
            ("b".to_string(), component(0.1, 1.0)),
            ("c".to_string(), odd.build().unwrap()),
        ])
        .unwrap();
        assert_eq!(product.factor_classes(), vec![0, 0, 1]);
        let orbit = product.orbit().expect("two identical factors");
        assert_eq!(orbit.num_orbits(), 3 * 3);
        assert_eq!(orbit.classes().num_orbits(), 9);

        // Orbit sizes cover the raw tuples.
        let total: usize = (0..orbit.num_orbits()).map(|o| orbit.orbit_size(o)).sum();
        assert_eq!(total, product.num_states());

        // Swapped tuples share an orbit.
        let up_down = product.index_of(&[0, 1, 2]).unwrap();
        let down_up = product.index_of(&[1, 0, 2]).unwrap();
        assert_eq!(
            orbit.orbit_of(&product, up_down),
            orbit.orbit_of(&product, down_up)
        );

        let exec = ExecOptions::serial();
        let chain = orbit.materialize(&product, &exec).unwrap();
        assert_eq!(chain.num_states(), 9);
        // The symmetric cylinder labels fold; each factor's own label is
        // asymmetric and dropped for the twins, kept for the singleton.
        assert!(chain.label("c/up").is_none());
        assert!(chain.label("a/up").is_none());

        // Steady state: the orbit solve aggregates the full product solve.
        let joint = product.materialize(&exec).unwrap();
        let joint_pi = SteadyStateSolver::new(&joint).solve().unwrap();
        let orbit_pi = SteadyStateSolver::new(&chain).solve().unwrap();
        let aggregated = orbit.aggregate_distribution(&product, &joint_pi);
        for (a, b) in aggregated.iter().zip(orbit_pi.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // The uniform expansion of the orbit stationary vector satisfies the
        // joint balance equations — the matrix-free certificate.
        let expanded = orbit.expand_distribution(&product, &orbit_pi);
        let residual = product.balance_residual(&expanded, &exec).unwrap();
        assert!(residual < 1e-9, "residual {residual}");

        // Symmetric masks project; asymmetric masks are rejected.
        let a_up = product.expand_mask(0, &[true, false]).unwrap();
        let b_up = product.expand_mask(1, &[true, false]).unwrap();
        let both: Vec<bool> = a_up
            .iter()
            .zip(b_up.iter())
            .map(|(&x, &y)| x && y)
            .collect();
        let projected = orbit.project_mask(&product, &both).unwrap();
        assert_eq!(projected.len(), 9);
        assert!(matches!(
            orbit.project_mask(&product, &a_up),
            Err(LumpError::NotBlockConstant { .. })
        ));
        assert!(orbit.project_mask(&product, &[true]).is_err());

        // Forward quantities expand orbit-constantly.
        let forward = orbit.expand_values(&product, &[1.0; 9]);
        assert_eq!(forward.len(), product.num_states());
    }

    #[test]
    fn summed_rewards_stay_orbit_constant_for_three_twins() {
        // Floating-point addition does not commute across three summands:
        // (0.1 + 0.2) + 0.3 != (0.2 + 0.3) + 0.1. With three identical
        // factors the per-state contributions of orbit siblings are the
        // same multiset in different orders, so the sorted summation of
        // `sum_rewards` is what keeps the joint rewards projectable.
        let factors: Vec<(String, Ctmc)> = (0..3)
            .map(|i| (format!("twin{i}"), component(0.4, 2.0)))
            .collect();
        let product = QuotientProduct::from_chains(factors).unwrap();
        let orbit = product.orbit().expect("three identical factors");
        let rewards = RewardStructure::new("cost", vec![0.1, 0.2]).unwrap();
        let joint = product
            .sum_rewards("cost", &[Some(&rewards), Some(&rewards), Some(&rewards)])
            .unwrap();
        let projected = orbit
            .project_values(&product, joint.state_rewards())
            .expect("sorted sums are bit-identical across each orbit");
        assert_eq!(projected.len(), orbit.num_orbits());
        // Wrong-length reward vectors are rejected up front.
        let short = RewardStructure::new("cost", vec![0.1]).unwrap();
        assert!(product
            .sum_rewards("cost", &[Some(&short), None, None])
            .is_err());
    }

    #[test]
    fn orbit_is_absent_without_interchangeable_factors() {
        let product = two_factor_product();
        assert_eq!(product.factor_classes(), vec![0, 1]);
        assert!(product.orbit().is_none());
    }

    #[test]
    fn orbit_materialization_is_thread_count_invariant() {
        let factors: Vec<(String, Ctmc)> = (0..5)
            .map(|i| (format!("f{i}"), component(0.25, 2.0)))
            .collect();
        let product = QuotientProduct::from_chains(factors).unwrap();
        let orbit = product.orbit().expect("five identical factors");
        // Multisets of 5 over 2 local states: C(6, 5) = 6 orbits from 32.
        assert_eq!(orbit.num_orbits(), 6);
        let reference = orbit.materialize(&product, &ExecOptions::serial()).unwrap();
        for threads in [2usize, 4, 8] {
            let sharded = orbit
                .materialize(&product, &ExecOptions::with_threads(threads))
                .unwrap();
            assert_eq!(sharded, reference, "{threads} threads");
        }
        // Aggregated rates: from all-up (orbit of tuple 0…0) the fold merges
        // the five failure transitions into one orbit at 5λ.
        let all_up = orbit.orbit_of(&product, 0);
        let (_, values) = reference.rate_matrix().row(all_up);
        let total: f64 = values.iter().sum();
        assert!((total - 5.0 * 0.25).abs() < 1e-12, "{total}");
    }

    #[test]
    fn materialization_is_thread_count_invariant() {
        // Enough factors that the joint chain clears the parallel-work
        // threshold, so the sharded path actually runs.
        let factors: Vec<(String, Ctmc)> = (0..6)
            .map(|i| (format!("f{i}"), component(0.1 + i as f64 * 0.05, 1.0)))
            .collect();
        let product = QuotientProduct::from_chains(factors).unwrap();
        assert_eq!(product.num_states(), 64);
        let reference = product.materialize(&ExecOptions::serial()).unwrap();
        for threads in [2usize, 4, 8] {
            let sharded = product
                .materialize(&ExecOptions::with_threads(threads))
                .unwrap();
            assert_eq!(sharded, reference, "{threads} threads");
        }
    }
}
