//! Initial partitions: which states may never be merged.
//!
//! Lumping preserves exactly the distinctions encoded in the initial
//! partition: two states can only end up in the same block if every refinement
//! key (label membership, reward rate, service level, …) agrees on them. The
//! composer therefore refines by everything its measures observe before
//! handing the partition to [`crate::lump`].

use std::collections::HashMap;

use ctmc::Ctmc;

use crate::error::LumpError;

/// A partition of the state space used as the starting point of refinement.
///
/// Internally each state carries a class id in `0..num_classes`; ids are
/// renumbered densely after every refinement step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialPartition {
    classes: Vec<usize>,
    num_classes: usize,
}

impl InitialPartition {
    /// The trivial partition: all states in one class.
    pub fn trivial(num_states: usize) -> Self {
        InitialPartition {
            classes: vec![0; num_states],
            num_classes: usize::from(num_states > 0),
        }
    }

    /// The partition induced by all labels of a chain: two states share a
    /// class iff they carry exactly the same label set.
    pub fn from_labels(chain: &Ctmc) -> Self {
        let mut partition = InitialPartition::trivial(chain.num_states());
        let names: Vec<String> = chain.label_names().map(str::to_string).collect();
        for name in names {
            if let Some(mask) = chain.label(&name) {
                let mask = mask.to_vec();
                partition
                    .refine_by_bools(&mask)
                    .expect("label masks have one entry per state");
            }
        }
        partition
    }

    /// Number of states covered.
    pub fn num_states(&self) -> usize {
        self.classes.len()
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The class id of every state.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Splits classes so that states with different boolean values separate.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::DimensionMismatch`] if `mask` has the wrong length.
    pub fn refine_by_bools(&mut self, mask: &[bool]) -> Result<&mut Self, LumpError> {
        self.refine_by_keys(mask, |&b| u64::from(b))
    }

    /// Splits classes so that states with different `f64` values separate.
    ///
    /// Values are compared exactly (bitwise, with `-0.0` normalised to `0.0`);
    /// callers that want tolerance-based grouping should quantise first.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::DimensionMismatch`] if `values` has the wrong length.
    pub fn refine_by_f64(&mut self, values: &[f64]) -> Result<&mut Self, LumpError> {
        self.refine_by_keys(values, |&v| (v + 0.0).to_bits())
    }

    /// Splits classes so that states with different `usize` keys separate.
    ///
    /// # Errors
    ///
    /// Returns [`LumpError::DimensionMismatch`] if `keys` has the wrong length.
    pub fn refine_by_usize(&mut self, keys: &[usize]) -> Result<&mut Self, LumpError> {
        self.refine_by_keys(keys, |&k| k as u64)
    }

    fn refine_by_keys<T>(
        &mut self,
        values: &[T],
        key_of: impl Fn(&T) -> u64,
    ) -> Result<&mut Self, LumpError> {
        if values.len() != self.classes.len() {
            return Err(LumpError::DimensionMismatch {
                expected: self.classes.len(),
                actual: values.len(),
            });
        }
        let mut ids: HashMap<(usize, u64), usize> = HashMap::new();
        for (class, value) in self.classes.iter_mut().zip(values.iter()) {
            let next = ids.len();
            let id = *ids.entry((*class, key_of(value))).or_insert(next);
            *class = id;
        }
        self.num_classes = ids.len();
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_partition_has_one_class() {
        let partition = InitialPartition::trivial(5);
        assert_eq!(partition.num_states(), 5);
        assert_eq!(partition.num_classes(), 1);
        assert!(partition.classes().iter().all(|&c| c == 0));
        assert_eq!(InitialPartition::trivial(0).num_classes(), 0);
    }

    #[test]
    fn refinement_splits_and_renumbers_densely() {
        let mut partition = InitialPartition::trivial(6);
        partition
            .refine_by_bools(&[true, true, false, false, true, false])
            .unwrap();
        assert_eq!(partition.num_classes(), 2);
        partition
            .refine_by_f64(&[1.0, 2.0, 1.0, 1.0, 1.0, 2.0])
            .unwrap();
        assert_eq!(partition.num_classes(), 4);
        let classes = partition.classes();
        assert_eq!(classes[0], classes[4]); // (true, 1.0)
        assert_ne!(classes[0], classes[1]); // (true, 2.0)
        assert_eq!(classes[2], classes[3]); // (false, 1.0)
        assert!(classes.iter().all(|&c| c < partition.num_classes()));
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        let mut partition = InitialPartition::trivial(2);
        partition.refine_by_f64(&[0.0, -0.0]).unwrap();
        assert_eq!(partition.num_classes(), 1);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let mut partition = InitialPartition::trivial(3);
        assert!(matches!(
            partition.refine_by_bools(&[true]),
            Err(LumpError::DimensionMismatch {
                expected: 3,
                actual: 1
            })
        ));
    }
}
