//! Property tests of the quotient product: the matrix-free Kronecker-sum
//! operator must agree with the materialised joint chain for any factor
//! shapes and any thread count, and the product of the factor stationary
//! distributions must be stationary for the joint chain.

use arcade_lumping::QuotientProduct;
use ctmc::ops::LinearOperator;
use ctmc::{Ctmc, CtmcBuilder, ExecOptions, SteadyStateSolver};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// An irreducible ring chain with `n` states, shortcut chords and
/// deterministic pseudo-random rates derived from `seed`.
fn ring_chain(n: usize, seed: u64) -> Ctmc {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut builder = CtmcBuilder::new(n);
    for s in 0..n {
        let rate = 0.1 + (next() % 1000) as f64 / 250.0;
        builder.add_transition(s, (s + 1) % n, rate).unwrap();
        if n > 2 {
            let chord = (s + 1 + next() as usize % (n - 2)) % n;
            if chord != s {
                let rate = 0.05 + (next() % 1000) as f64 / 500.0;
                builder.add_transition(s, chord, rate).unwrap();
            }
        }
    }
    builder.set_initial_state(0).unwrap();
    builder
        .add_label_mask("even", (0..n).map(|s| s % 2 == 0).collect())
        .unwrap();
    builder.build().unwrap()
}

fn factor_sizes() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(2usize..=6, 2..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn operator_and_materialised_chain_agree_for_every_thread_count(
        sizes in factor_sizes(),
        seed in 1u64..10_000,
    ) {
        let product = QuotientProduct::from_chains(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| (format!("f{i}"), ring_chain(n, seed + i as u64)))
                .collect(),
        )
        .unwrap();
        let serial = ExecOptions::serial();
        let joint = product.materialize(&serial).unwrap();
        prop_assert_eq!(joint.num_states(), product.num_states());
        prop_assert_eq!(joint.num_transitions(), product.num_transitions());

        let n = product.num_states();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37 + seed as f64).sin() + 1.5).collect();
        let mut left_reference = vec![0.0; n];
        joint.rate_matrix().left_multiply(&x, &mut left_reference).unwrap();
        let mut right_reference = vec![0.0; n];
        joint.rate_matrix().right_multiply(&x, &mut right_reference).unwrap();

        let op = product.operator();
        let mut left_serial = vec![0.0; n];
        op.left_multiply_exec(&x, &mut left_serial, &serial).unwrap();
        let mut right_serial = vec![0.0; n];
        op.right_multiply_exec(&x, &mut right_serial, &serial).unwrap();
        for s in 0..n {
            prop_assert!((left_serial[s] - left_reference[s]).abs() <= 1e-12 * left_reference[s].abs().max(1.0));
            prop_assert!((right_serial[s] - right_reference[s]).abs() <= 1e-12 * right_reference[s].abs().max(1.0));
        }

        // Sharded operator kernels and materialisation are bit-identical to
        // their serial counterparts for every thread count.
        for &threads in &THREAD_COUNTS {
            let exec = ExecOptions::with_threads(threads);
            let mut y = vec![f64::NAN; n];
            op.left_multiply_exec(&x, &mut y, &exec).unwrap();
            prop_assert_eq!(&y, &left_serial);
            let mut y = vec![f64::NAN; n];
            op.right_multiply_exec(&x, &mut y, &exec).unwrap();
            prop_assert_eq!(&y, &right_serial);
            let sharded = product.materialize(&exec).unwrap();
            prop_assert_eq!(&sharded, &joint);
        }
    }

    #[test]
    fn product_form_is_stationary_for_the_joint_chain(
        sizes in factor_sizes(),
        seed in 1u64..10_000,
    ) {
        let product = QuotientProduct::from_chains(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| (format!("f{i}"), ring_chain(n, seed * 31 + i as u64)))
                .collect(),
        )
        .unwrap();
        let marginals: Vec<Vec<f64>> = (0..product.num_factors())
            .map(|i| {
                SteadyStateSolver::new(product.factor(i))
                    .tolerance(1e-13)
                    .solve()
                    .unwrap()
            })
            .collect();
        let joint_guess = product.product_distribution(&marginals).unwrap();
        let residual = product
            .balance_residual(&joint_guess, &ExecOptions::serial())
            .unwrap();
        prop_assert!(residual < 1e-9, "residual {residual}");

        // Marginals of the outer product recover the factors exactly.
        for (i, marginal) in marginals.iter().enumerate() {
            let recovered = product.marginal(i, &joint_guess).unwrap();
            for (a, b) in recovered.iter().zip(marginal.iter()) {
                prop_assert!((a - b).abs() < 1e-10);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sorted-tuple orbit folding of interchangeable factors: for a product
    /// of `copies` identical chains (plus one odd factor), the orbit chain
    /// must carry the multiset-count state space, aggregate the joint
    /// stationary distribution exactly, and certify its uniform expansion
    /// against the matrix-free Kronecker sum — for every thread count.
    #[test]
    fn orbit_quotient_agrees_with_the_unreduced_product(
        copies in 2usize..=3,
        size in 2usize..=4,
        seed in 1u64..10_000,
    ) {
        let mut factors: Vec<(String, Ctmc)> = (0..copies)
            .map(|i| (format!("twin{i}"), ring_chain(size, seed)))
            .collect();
        factors.push(("odd".to_string(), ring_chain(size + 1, seed * 7 + 1)));
        let product = QuotientProduct::from_chains(factors).unwrap();

        let classes = product.factor_classes();
        prop_assert!(classes[..copies].iter().all(|&c| c == 0));
        prop_assert_eq!(classes[copies], 1);

        let orbit = product.orbit().expect("identical twins fold");
        // Multisets of `copies` over `size` local states, times the odd factor.
        let mut expected = size + 1;
        let mut binom = 1usize;
        for i in 0..copies {
            binom = binom * (size + i) / (i + 1);
        }
        expected *= binom;
        prop_assert_eq!(orbit.num_orbits(), expected);
        let covered: usize = (0..orbit.num_orbits()).map(|o| orbit.orbit_size(o)).sum();
        prop_assert_eq!(covered, product.num_states());

        let serial = ExecOptions::serial();
        let reference = orbit.materialize(&product, &serial).unwrap();
        for &threads in THREAD_COUNTS.iter() {
            let sharded = orbit
                .materialize(&product, &ExecOptions::with_threads(threads))
                .unwrap();
            prop_assert!(sharded == reference, "{threads} threads differ");
        }

        // The aggregated joint stationary distribution solves the orbit
        // chain, and its uniform expansion solves the joint chain.
        let joint = product.materialize(&serial).unwrap();
        let joint_pi = SteadyStateSolver::new(&joint)
            .tolerance(1e-13)
            .solve()
            .unwrap();
        let orbit_pi = SteadyStateSolver::new(&reference)
            .tolerance(1e-13)
            .solve()
            .unwrap();
        let aggregated = orbit.aggregate_distribution(&product, &joint_pi);
        for (a, b) in aggregated.iter().zip(orbit_pi.iter()) {
            prop_assert!((a - b).abs() <= 1e-9, "{a} vs {b}");
        }
        let expanded = orbit.expand_distribution(&product, &orbit_pi);
        let residual = product.balance_residual(&expanded, &serial).unwrap();
        prop_assert!(residual < 1e-9, "residual {residual}");
    }
}
