//! Workspace facade crate.
//!
//! Re-exports the Arcade reproduction crates under one roof so the
//! repository-level integration tests (`tests/`) and examples (`examples/`)
//! have a single dependency target. Library users should depend on the
//! individual crates instead.

pub use arcade_core;
pub use arcade_lumping;
pub use arcade_sim;
pub use arcade_xml;
pub use csl;
pub use ctmc;
pub use fault_tree;
pub use prism_export;
pub use watertreatment;
